// Profiling pipeline demo: record bandwidth usage traces from a (synthetic)
// running application, derive the SVC request, and compare what each
// abstraction would reserve (paper Section III-A's "given the bandwidth
// usage profile ... one can derive the probability distributions").
//
//   build/examples/profiling_to_svc
#include <cstdio>

#include "profile/estimator.h"
#include "profile/synthesize.h"
#include "svc/hetero_heuristic.h"
#include "svc/manager.h"
#include "topology/builders.h"
#include "util/table.h"

int main() {
  using namespace svc;
  stats::Rng rng(2014);

  // "Profiling run" of a 6-task analytics app: two steady ingest tasks,
  // two bursty shuffle tasks, two ramping writers.
  std::vector<profile::UsageTrace> traces;
  traces.push_back(profile::SynthesizeNoisy(rng, 3600, 180, 40));
  traces.push_back(profile::SynthesizeNoisy(rng, 3600, 180, 40));
  traces.push_back(profile::SynthesizeOnOff(rng, 3600, 400, 30, 60));
  traces.push_back(profile::SynthesizeOnOff(rng, 3600, 400, 30, 60));
  traces.push_back(profile::SynthesizeRamp(rng, 3600, 20, 200, 25));
  traces.push_back(profile::SynthesizeRamp(rng, 3600, 20, 200, 25));

  util::Table table({"task", "shape", "mu (Mbps)", "sigma", "p95",
                     "normal fit?"});
  const char* shapes[] = {"steady", "steady", "burst", "burst",
                          "ramp", "ramp"};
  for (size_t i = 0; i < traces.size(); ++i) {
    const auto estimate = profile::EstimateDemand(traces[i]);
    if (!estimate) continue;
    table.AddRow({std::to_string(i), shapes[i],
                  util::Table::Num(estimate->demand.mean, 1),
                  util::Table::Num(estimate->demand.stddev(), 1),
                  util::Table::Num(estimate->p95, 1),
                  estimate->NormalFitReasonable() ? "yes" : "no (heavy tail)"});
  }
  std::printf("profiled demand estimates (1 h @ 1 s samples):\n%s\n",
              table.ToText().c_str());

  // What each abstraction reserves per VM, summed over the cluster.
  double sum_mean = 0, sum_p95 = 0;
  for (const auto& trace : traces) {
    const auto estimate = profile::EstimateDemand(trace);
    sum_mean += estimate->mean;
    sum_p95 += estimate->p95;
  }
  std::printf("aggregate mean-VC reservation:       %.0f Mbps\n", sum_mean);
  std::printf("aggregate percentile-VC reservation: %.0f Mbps\n", sum_p95);
  std::printf(
      "SVC reserves no fixed rate: it admits the (mu_i, sigma_i) pairs and\n"
      "shares links statistically under the epsilon guarantee.\n\n");

  // Derive the heterogeneous SVC request and place it.
  auto request = profile::RequestFromTraces(1, traces);
  if (!request) {
    std::printf("request derivation failed: %s\n",
                request.status().ToText().c_str());
    return 1;
  }
  const topology::Topology topo =
      topology::BuildTwoTier(3, 3, 3, 1000, 2.0);
  core::NetworkManager manager(topo, /*epsilon=*/0.05);
  const core::HeteroHeuristicAllocator allocator;
  auto placement = manager.Admit(*request, allocator);
  if (!placement) {
    std::printf("allocation failed: %s\n",
                placement.status().ToText().c_str());
    return 1;
  }
  std::printf("profiled request placed: %s\n", placement->Describe().c_str());
  std::printf("worst link occupancy: %.3f\n", manager.MaxOccupancy());
  return 0;
}
