// Batch scheduling demo: a queue of MapReduce-style jobs with volatile
// bandwidth demands, run under all three abstractions (paper Section VI-B1
// in miniature).
//
//   build/examples/batch_scheduling [--jobs N] [--rho R]
//
// Prints, per abstraction: makespan, mean running time per job, and the
// concurrency/running-time trade-off the paper's Figs. 5-6 quantify.
#include <cstdio>

#include "sim/engine.h"
#include "svc/homogeneous_search.h"
#include "topology/builders.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("batch_scheduling: the job-queue trade-off demo");
  int64_t& num_jobs = flags.Int("jobs", 80, "jobs in the batch");
  double& rho = flags.Double("rho", 0.8, "demand deviation coefficient");
  int64_t& seed = flags.Int("seed", 7, "random seed");
  flags.Parse(argc, argv);

  // A 10-rack datacenter (200 VM slots).
  topology::ThreeTierConfig tconfig;
  tconfig.racks = 10;
  tconfig.machines_per_rack = 5;
  tconfig.racks_per_agg = 5;
  const topology::Topology topo = topology::BuildThreeTier(tconfig);
  std::printf("datacenter: %s\n", topo.Describe().c_str());

  // Data-crunching jobs: ~12 VMs, volatile demand (sigma = rho * mu).
  workload::WorkloadConfig wconfig;
  wconfig.num_jobs = static_cast<int>(num_jobs);
  wconfig.mean_job_size = 12;
  wconfig.max_job_size = 40;
  wconfig.rate_means = {50, 100, 150, 200, 250};
  wconfig.fixed_deviation = rho;
  workload::WorkloadGenerator gen(wconfig, static_cast<uint64_t>(seed));
  const auto jobs = gen.GenerateBatch();
  std::printf("workload: %lld jobs, rho = %.1f\n\n",
              static_cast<long long>(num_jobs), rho);

  const core::HomogeneousDpAllocator svc_alloc;
  const core::OktopusAllocator vc_alloc;

  util::Table table(
      {"abstraction", "makespan (s)", "mean running time (s)", "skipped"});
  for (auto abstraction :
       {workload::Abstraction::kMeanVc, workload::Abstraction::kPercentileVc,
        workload::Abstraction::kSvc}) {
    sim::SimConfig config;
    config.abstraction = abstraction;
    config.allocator = abstraction == workload::Abstraction::kSvc
                           ? static_cast<const core::Allocator*>(&svc_alloc)
                           : &vc_alloc;
    config.epsilon = 0.05;
    config.seed = static_cast<uint64_t>(seed) + 1;
    sim::Engine engine(topo, config);
    const auto result = engine.RunBatch(jobs);
    table.AddRow({workload::ToString(abstraction),
                  util::Table::Num(result.total_completion_time, 0),
                  util::Table::Num(result.MeanRunningTime(), 1),
                  std::to_string(result.unallocatable_jobs)});
  }
  std::printf("%s", table.ToText().c_str());
  std::printf(
      "\nReading the table: mean-VC packs the most jobs concurrently (low\n"
      "makespan) but starves volatile jobs (high running time);\n"
      "percentile-VC is the opposite; SVC achieves the trade-off.\n");
  return 0;
}
