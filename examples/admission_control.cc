// Online admission-control demo: tenants arrive over time and are accepted
// only if the probabilistic bandwidth guarantee can still be met (paper
// Section VI-B2 in miniature).
//
//   build/examples/admission_control [--load L] [--epsilon E]
//
// Shows how the risk factor epsilon tunes the guarantee-vs-acceptance
// trade-off on the same arrival sequence.
#include <cstdio>

#include "sim/engine.h"
#include "svc/homogeneous_search.h"
#include "topology/builders.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("admission_control: epsilon vs acceptance demo");
  double& load = flags.Double("load", 0.7, "offered datacenter load");
  int64_t& num_jobs = flags.Int("jobs", 150, "arriving tenant requests");
  int64_t& seed = flags.Int("seed", 11, "random seed");
  flags.Parse(argc, argv);

  topology::ThreeTierConfig tconfig;
  tconfig.racks = 10;
  tconfig.machines_per_rack = 10;
  tconfig.racks_per_agg = 5;
  const topology::Topology topo = topology::BuildThreeTier(tconfig);
  std::printf("datacenter: %s, offered load %.0f%%\n\n",
              topo.Describe().c_str(), 100 * load);

  workload::WorkloadConfig wconfig;
  wconfig.num_jobs = static_cast<int>(num_jobs);
  wconfig.mean_job_size = 15;
  wconfig.max_job_size = 60;
  wconfig.rate_means = {50, 100, 150, 200, 250};

  const core::HomogeneousDpAllocator allocator;
  util::Table table({"epsilon", "accepted", "rejected", "rejection %",
                     "mean concurrency", "worst sampled occupancy"});
  for (double epsilon : {0.2, 0.1, 0.05, 0.02, 0.01}) {
    workload::WorkloadGenerator gen(wconfig, static_cast<uint64_t>(seed));
    auto jobs = gen.GenerateOnline(load, topo.total_slots());
    sim::SimConfig config;
    config.abstraction = workload::Abstraction::kSvc;
    config.allocator = &allocator;
    config.epsilon = epsilon;
    config.seed = static_cast<uint64_t>(seed) + 1;
    sim::Engine engine(topo, config);
    const auto result = engine.RunOnline(std::move(jobs));
    double worst = 0;
    for (double s : result.max_occupancy_samples) worst = std::max(worst, s);
    table.AddRow({util::Table::Num(epsilon, 2),
                  std::to_string(result.accepted),
                  std::to_string(result.rejected),
                  util::Table::Num(100 * result.RejectionRate(), 1),
                  util::Table::Num(result.MeanConcurrency(), 1),
                  util::Table::Num(worst, 3)});
  }
  std::printf("%s", table.ToText().c_str());
  std::printf(
      "\nSmaller epsilon = stronger bandwidth guarantee = more reserved\n"
      "headroom per link = fewer tenants admitted.  The provider picks the\n"
      "point on this curve that matches its SLA.\n");
  return 0;
}
