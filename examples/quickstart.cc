// Quickstart: reserve a Stochastic Virtual Cluster on a small datacenter.
//
//   build/examples/quickstart
//
// Walks through the core API end to end:
//   1. build a tree topology,
//   2. create a NetworkManager with a risk factor epsilon,
//   3. submit an SVC request <N, mu, sigma> and a deterministic VC <N, B>,
//   4. inspect the placements and per-link bandwidth occupancy,
//   5. release a tenant and watch the state roll back.
#include <cstdio>

#include "svc/homogeneous_search.h"
#include "svc/manager.h"
#include "topology/builders.h"

int main() {
  using namespace svc;

  // A two-rack datacenter: 2 racks x 4 machines x 4 VM slots, 1 Gbps
  // machine links, 2:1 oversubscribed rack uplinks.
  const topology::Topology topo =
      topology::BuildTwoTier(/*racks=*/2, /*machines_per_rack=*/4,
                             /*slots_per_machine=*/4, /*link_mbps=*/1000,
                             /*oversubscription=*/2.0);
  std::printf("datacenter: %s\n\n", topo.Describe().c_str());

  // The network manager guarantees, for every link, that tenant demands are
  // met with probability >= 1 - epsilon (paper condition (1)).
  core::NetworkManager manager(topo, /*epsilon=*/0.05);
  const core::HomogeneousDpAllocator allocator;  // the paper's Algorithm 1

  // Tenant 1: a stochastic virtual cluster of 10 VMs whose per-VM bandwidth
  // demand is N(200 Mbps, (120 Mbps)^2) — "I need around 200, sometimes a
  // lot more".
  const core::Request svc_request =
      core::Request::Homogeneous(/*id=*/1, /*n=*/10, /*mean=*/200,
                                 /*stddev=*/120);
  auto placement = manager.Admit(svc_request, allocator);
  if (!placement) {
    std::printf("allocation failed: %s\n", placement.status().ToText().c_str());
    return 1;
  }
  std::printf("tenant 1 (SVC <10, 200, 120>) placed: %s\n",
              placement->Describe().c_str());
  std::printf("  worst link occupancy after placement: %.3f\n\n",
              manager.MaxOccupancy());

  // Tenant 2: a classic Oktopus virtual cluster <6, 150 Mbps> — the
  // deterministic special case (sigma = 0), enforced by rate limiting and
  // reserved in the D_L share of each link.
  const core::Request vc_request =
      core::Request::Deterministic(/*id=*/2, /*n=*/6, /*bandwidth=*/150);
  auto vc_placement = manager.Admit(vc_request, allocator);
  if (!vc_placement) {
    std::printf("allocation failed: %s\n",
                vc_placement.status().ToText().c_str());
    return 1;
  }
  std::printf("tenant 2 (VC <6, 150>) placed: %s\n",
              vc_placement->Describe().c_str());
  std::printf("  worst link occupancy with both tenants: %.3f\n",
              manager.MaxOccupancy());
  std::printf("  state satisfies condition (4) everywhere: %s\n\n",
              manager.StateValid() ? "yes" : "NO (bug!)");

  // Tenant 1 finishes: its slots and every per-link demand record vanish.
  manager.Release(1);
  std::printf("after releasing tenant 1: worst occupancy %.3f, %zu tenants\n",
              manager.MaxOccupancy(), manager.live_count());
  return 0;
}
