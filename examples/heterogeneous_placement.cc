// Heterogeneous SVC demo (paper Section V): a tenant whose VMs have very
// different bandwidth profiles — e.g. an ingest tier, a shuffle tier and a
// mostly-idle coordinator — placed by the exact DP, the substring
// heuristic, and plain first-fit.
//
//   build/examples/heterogeneous_placement
#include <cstdio>

#include "svc/first_fit.h"
#include "svc/hetero_exact.h"
#include "svc/hetero_heuristic.h"
#include "svc/manager.h"
#include "topology/builders.h"
#include "util/table.h"

int main() {
  using namespace svc;

  const topology::Topology topo =
      topology::BuildTwoTier(/*racks=*/3, /*machines_per_rack=*/3,
                             /*slots_per_machine=*/3, /*link_mbps=*/800,
                             /*oversubscription=*/2.0);
  std::printf("datacenter: %s\n\n", topo.Describe().c_str());

  core::NetworkManager manager(topo, /*epsilon=*/0.05);

  // A 9-VM analytics cluster:
  //   3 ingest VMs     ~ N(300, 150^2)  — heavy, bursty
  //   4 shuffle VMs    ~ N(150,  60^2)  — moderate
  //   2 coordinators   ~ N( 20,  10^2)  — light
  std::vector<stats::Normal> demands;
  for (int i = 0; i < 3; ++i) demands.push_back({300, 150.0 * 150.0});
  for (int i = 0; i < 4; ++i) demands.push_back({150, 60.0 * 60.0});
  for (int i = 0; i < 2; ++i) demands.push_back({20, 10.0 * 10.0});
  const core::Request request = core::Request::Heterogeneous(1, demands);
  std::printf("request: %s\n\n", request.Describe().c_str());

  const core::HeteroExactAllocator exact;
  const core::HeteroHeuristicAllocator heuristic;
  const core::FirstFitAllocator first_fit;

  util::Table table({"allocator", "placement", "max occupancy"});
  for (const core::Allocator* alloc :
       std::initializer_list<const core::Allocator*>{&exact, &heuristic,
                                                     &first_fit}) {
    const auto result = alloc->Allocate(request, manager.ledger(),
                                        manager.slots());
    if (result) {
      table.AddRow({std::string(alloc->name()), result->Describe(),
                    util::Table::Num(result->max_occupancy, 4)});
    } else {
      table.AddRow({std::string(alloc->name()),
                    result.status().ToText(), "-"});
    }
  }
  std::printf("%s", table.ToText().c_str());
  std::printf(
      "\nThe exact DP searches all 2^N subsets per subtree; the heuristic\n"
      "only substrings of the demand-sorted VM order (O(N^2) candidates)\n"
      "yet typically matches it; first-fit ignores the occupancy objective\n"
      "and concentrates load on the first links it finds.\n");
  return 0;
}
