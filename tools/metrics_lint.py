#!/usr/bin/env python3
"""Lint the metric namespace: every metric name registered in src/ must
follow the ``<component>/<what>[_<unit>]`` convention and be documented in
docs/OBSERVABILITY.md.

Extracts every string literal passed to the ``SVC_METRIC_*`` macros and to
direct ``Registry::Get{Counter,Gauge,Histogram}("...")`` calls.  Dynamic
names (printf patterns like ``alloc/%.*s/%s``, or prefixes composed at
runtime) are skipped — the *pattern families* they expand to are expected
to be documented by hand (``alloc/<allocator-name>/attempt`` etc.), which
this lint cannot check mechanically.

The documentation check expands brace groups, so a doc line like
``admission/{proposed,committed}`` documents both names.

Exit status: 0 when every name is well-formed and documented, 1 otherwise
(CI runs this next to the build).

    tools/metrics_lint.py            # lint
    tools/metrics_lint.py --list     # print the extracted inventory
"""

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOC = REPO / "docs" / "OBSERVABILITY.md"

MACRO_RE = re.compile(
    r'SVC_METRIC_(?:INC|ADD|HIST|GAUGE_SET)\s*\(\s*"([^"]+)"'
)
DIRECT_RE = re.compile(r'Get(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]+)"')
# <component>/<what>[/<more>]: lower-case, digits, underscores; at least
# one slash (the area prefix is mandatory).
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:/[a-z][a-z0-9_]*)+$")
# Doc shorthand: prefix/{a,b,c} documents prefix/a, prefix/b, prefix/c.
BRACE_RE = re.compile(r"([A-Za-z0-9_/]+)/\{([^}]+)\}")


def extract(path):
    """Yields (name, line_number) for every metric literal in the file."""
    text = path.read_text()
    for regex in (MACRO_RE, DIRECT_RE):
        for match in regex.finditer(text):
            yield match.group(1), text.count("\n", 0, match.start()) + 1


def documented_names(doc_text):
    names = set()
    for match in BRACE_RE.finditer(doc_text):
        prefix = match.group(1)
        for member in match.group(2).split(","):
            names.add(f"{prefix}/{member.strip()}")
    return names


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true", help="print the inventory and exit"
    )
    args = parser.parse_args()

    inventory = {}  # name -> first "file:line" seen
    for path in sorted(SRC.rglob("*.cc")) + sorted(SRC.rglob("*.h")):
        for name, line in extract(path):
            site = f"{path.relative_to(REPO)}:{line}"
            if "%" in name:
                continue  # printf pattern: a dynamic-name family
            inventory.setdefault(name, site)

    if args.list:
        for name in sorted(inventory):
            print(f"{name:<32} {inventory[name]}")
        return 0

    doc_text = DOC.read_text()
    documented = documented_names(doc_text)
    errors = []
    for name, site in sorted(inventory.items()):
        if not NAME_RE.match(name):
            errors.append(
                f"{site}: metric '{name}' violates the "
                "<component>/<what>[_<unit>] naming convention"
            )
        if name not in doc_text and name not in documented:
            errors.append(
                f"{site}: metric '{name}' is not documented in "
                f"{DOC.relative_to(REPO)}"
            )

    if errors:
        print(f"metrics_lint: {len(errors)} problem(s)", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"metrics_lint: {len(inventory)} metric names OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
