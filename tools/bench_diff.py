#!/usr/bin/env python3
"""Diff two BENCH_PERF.json snapshots produced by bench/perf_suite.

Compares the benchmark throughput rates (``*_per_sec``) and the metrics
counters of a *before* and an *after* snapshot, prints a delta table, and
exits non-zero when any benchmark regressed by more than the allowed
threshold — which is what lets CI run it as a perf-smoke gate:

    build/bench/perf_suite BEFORE.json
    ... apply change, rebuild ...
    build/bench/perf_suite AFTER.json
    tools/bench_diff.py BEFORE.json AFTER.json --max-regression 20

``--require-speedup NAME:FACTOR`` additionally fails unless the named
benchmark got at least FACTOR times faster — used to assert headline
improvements (e.g. ``--require-speedup allocate_steady:2.0``).

``--require-zero NAME:METRIC`` fails unless benchmark NAME in the *after*
snapshot carries METRIC with the exact value 0 — used to gate hard
correctness properties that a bench reports as a counter, e.g.
``--require-zero fault_drill_switchover:steady_outage_rate`` (survivable
placements must ride out a backup-covered single failure with zero
steady-epoch outage).

The allocs_per_call field, when present on both sides, is a hard gate:
any increase fails regardless of the threshold (the zero-allocation
steady state is a correctness property, not a throughput number).

Latency histograms (every ``metrics.histograms`` entry whose name ends in
``_latency_us``) are diffed at p50/p99 for the eye — informational only,
never a failure condition: tail latency at bench scale is too noisy to
gate on, and adding a gate here would change the tool's exit-code
contract.

``--list`` prints the benchmark and latency-histogram names a snapshot
carries (useful for picking --require-speedup targets) and exits 0.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def rate_of(bench):
    """The benchmark's throughput field (whatever key ends in _per_sec)."""
    for key, value in bench.items():
        if key.endswith("_per_sec"):
            return key, value
    return None, None


def fmt_rate(value):
    return f"{value:,.0f}" if value is not None else "-"


def latency_histograms(snapshot):
    """name -> histogram dict for the *_latency_us metrics histograms."""
    histograms = snapshot.get("metrics", {}).get("histograms", {})
    return {
        name: h
        for name, h in histograms.items()
        if name.endswith("_latency_us")
    }


def list_snapshot(path, snapshot):
    print(f"{path}:")
    benches = snapshot.get("benchmarks", [])
    for bench in benches:
        key, rate = rate_of(bench)
        rate_note = f"  {key}={fmt_rate(rate)}" if key else ""
        print(f"  bench      {bench['name']}{rate_note}")
    for name, h in sorted(latency_histograms(snapshot).items()):
        print(
            f"  histogram  {name}  count={h.get('count', 0)}  "
            f"p50={h.get('p50', 0):.1f}us  p99={h.get('p99', 0):.1f}us"
        )
    if not benches:
        print("  (no benchmarks)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline BENCH_PERF.json")
    parser.add_argument(
        "after",
        nargs="?",
        help="candidate BENCH_PERF.json (optional with --list)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail if any benchmark slows down by more than PCT%% "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--require-speedup",
        action="append",
        default=[],
        metavar="NAME:FACTOR",
        help="fail unless benchmark NAME is at least FACTOR times faster",
    )
    parser.add_argument(
        "--require-zero",
        action="append",
        default=[],
        metavar="NAME:METRIC",
        help="fail unless benchmark NAME's METRIC is exactly 0 in the "
        "after snapshot",
    )
    parser.add_argument(
        "--show-metrics",
        action="store_true",
        help="also print the counter diff (always checked for allocs)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the benchmarks and latency histograms in the snapshot(s) "
        "and exit",
    )
    args = parser.parse_args()

    if args.list:
        list_snapshot(args.before, load(args.before))
        if args.after:
            list_snapshot(args.after, load(args.after))
        return 0
    if args.after is None:
        parser.error("after snapshot is required unless --list is given")

    before = load(args.before)
    after = load(args.after)
    before_benches = {b["name"]: b for b in before.get("benchmarks", [])}
    after_benches = {b["name"]: b for b in after.get("benchmarks", [])}

    # Placement-sensitive numbers (admission_sharded under --placement) are
    # only comparable between machines with the same package/node/core
    # shape.  A shape mismatch is a warning, not a failure: diffing across
    # hosts is sometimes exactly what the user wants to do.
    # Snapshots are only apples-to-apples when they measured the same
    # scenario configuration (fabric, workload, seed, epsilon).  A config
    # hash mismatch is a warning, not a failure, for the same reason as
    # the host-topology mismatch below.
    b_scn = before.get("scenario")
    a_scn = after.get("scenario")
    if (
        b_scn
        and a_scn
        and b_scn.get("config_hash") != a_scn.get("config_hash")
    ):
        print(
            "WARNING: scenario config differs between snapshots "
            f"(before: {b_scn.get('name', '?')}"
            f"@{b_scn.get('config_hash', '?')}, "
            f"after: {a_scn.get('name', '?')}"
            f"@{a_scn.get('config_hash', '?')}); "
            "deltas may reflect the workload, not the change",
            file=sys.stderr,
        )

    b_topo = before.get("topology")
    a_topo = after.get("topology")
    if b_topo and a_topo and b_topo != a_topo:
        print(
            "WARNING: topology differs between snapshots "
            f"(before: {b_topo.get('summary', '?')}, "
            f"after: {a_topo.get('summary', '?')}); "
            "placement-sensitive deltas may reflect the hardware, "
            "not the change",
            file=sys.stderr,
        )

    required = {}
    for spec in args.require_speedup:
        name, _, factor = spec.partition(":")
        if not factor:
            parser.error(f"--require-speedup needs NAME:FACTOR, got {spec!r}")
        required[name] = float(factor)

    failures = []
    rows = []
    for name in before_benches.keys() | after_benches.keys():
        b = before_benches.get(name)
        a = after_benches.get(name)
        if b is None or a is None:
            rows.append((name, rate_of(b or {})[1], rate_of(a or {})[1], None))
            continue
        _, b_rate = rate_of(b)
        _, a_rate = rate_of(a)
        if not b_rate or a_rate is None:
            continue
        speedup = a_rate / b_rate
        rows.append((name, b_rate, a_rate, speedup))
        if speedup < 1.0 - args.max_regression / 100.0:
            failures.append(
                f"{name}: {(1.0 - speedup) * 100.0:.1f}% slower "
                f"(allowed {args.max_regression:.1f}%)"
            )
        if name in required and speedup < required[name]:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below required "
                f"{required[name]:.2f}x"
            )
        b_allocs = b.get("allocs_per_call")
        a_allocs = a.get("allocs_per_call")
        if b_allocs is not None and a_allocs is not None and a_allocs > b_allocs:
            failures.append(
                f"{name}: allocs_per_call grew {b_allocs} -> {a_allocs}"
            )
    for name in required:
        if name not in before_benches or name not in after_benches:
            failures.append(f"{name}: required benchmark missing from snapshot")

    for spec in args.require_zero:
        name, _, metric = spec.partition(":")
        if not metric:
            parser.error(f"--require-zero needs NAME:METRIC, got {spec!r}")
        bench = after_benches.get(name)
        if bench is None:
            failures.append(
                f"{name}: required benchmark missing from after snapshot"
            )
        elif metric not in bench:
            failures.append(f"{name}: metric {metric!r} missing")
        elif bench[metric] != 0:
            failures.append(f"{name}.{metric} = {bench[metric]} (required 0)")

    width = max((len(r[0]) for r in rows), default=4)
    print(f"{'benchmark':<{width}}  {'before/s':>14}  {'after/s':>14}  delta")
    for name, b_rate, a_rate, speedup in sorted(rows):
        if speedup:
            delta = f"{(speedup - 1.0) * 100.0:+.1f}%"
        elif name not in before_benches:
            delta = "(added)"
        elif name not in after_benches:
            delta = "(removed)"
        else:
            delta = "(missing)"
        print(
            f"{name:<{width}}  {fmt_rate(b_rate):>14}  {fmt_rate(a_rate):>14}  "
            f"{delta}"
        )

    b_hists = latency_histograms(before)
    a_hists = latency_histograms(after)
    shared_hists = sorted(b_hists.keys() & a_hists.keys())
    if shared_hists:
        hwidth = max(len(n) for n in shared_hists)
        print(
            f"\n{'latency histogram':<{hwidth}}  "
            f"{'p50 before':>10}  {'p50 after':>10}  "
            f"{'p99 before':>10}  {'p99 after':>10}"
        )
        for name in shared_hists:
            b_h, a_h = b_hists[name], a_hists[name]
            print(
                f"{name:<{hwidth}}  "
                f"{b_h.get('p50', 0):>9.1f}u  {a_h.get('p50', 0):>9.1f}u  "
                f"{b_h.get('p99', 0):>9.1f}u  {a_h.get('p99', 0):>9.1f}u"
            )

    if args.show_metrics:
        # Keys present on only one side (e.g. a counter family introduced by
        # the candidate build, like fault/*) are reported, never a KeyError:
        # a new metric must not break the CI perf gate on its first run.
        b_counters = before.get("metrics", {}).get("counters", {})
        a_counters = after.get("metrics", {}).get("counters", {})
        names = sorted(b_counters.keys() | a_counters.keys())
        if names:
            cwidth = max(len(n) for n in names)
            print(f"\n{'counter':<{cwidth}}  {'before':>14}  {'after':>14}")
            for name in names:
                if name not in b_counters:
                    note = "  (added)"
                elif name not in a_counters:
                    note = "  (removed)"
                else:
                    note = ""
                print(
                    f"{name:<{cwidth}}  {b_counters.get(name, '-'):>14}  "
                    f"{a_counters.get(name, '-'):>14}{note}"
                )

    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
