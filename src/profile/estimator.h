// Demand-distribution estimation from usage traces.
//
// Produces the (mu, sigma) pair an SVC request carries, together with the
// statistics a tenant would use for the deterministic alternatives
// (mean-VC / percentile-VC) and a crude normality diagnostic: the SVC
// framework only consumes the first two moments (aggregation across VMs and
// tenants is CLT-normal anyway — paper Section IV-B), but a heavy-tailed
// per-VM trace is worth flagging to the operator.
#pragma once

#include <span>

#include "profile/usage_trace.h"
#include "stats/normal.h"
#include "svc/request.h"

namespace svc::profile {

struct DemandEstimate {
  stats::Normal demand;     // N(mu, sigma^2) for the SVC request
  double mean = 0;          // == demand.mean; the mean-VC reservation
  double p95 = 0;           // empirical 95th pct; the percentile-VC reservation
  double skewness = 0;      // standardized third moment
  double excess_kurtosis = 0;
  size_t samples = 0;

  // Heuristic: |skew| < 1 and |excess kurtosis| < 3 — within the range
  // where a two-moment summary is a faithful risk model.
  bool NormalFitReasonable() const;
};

// Estimates from one trace.  Requires at least 2 samples
// (kInvalidArgument otherwise).
util::Result<DemandEstimate> EstimateDemand(const UsageTrace& trace);

// Builds a heterogeneous SVC request with one demand per trace (VM i's
// distribution estimated from traces[i]).
util::Result<core::Request> RequestFromTraces(
    core::RequestId id, std::span<const UsageTrace> traces);

// Builds a homogeneous SVC request <N, mu, sigma> by pooling all traces'
// samples — appropriate when the tasks are statistically interchangeable
// (e.g. the mappers of one MapReduce stage).
util::Result<core::Request> HomogeneousRequestFromTraces(
    core::RequestId id, int n, std::span<const UsageTrace> traces);

}  // namespace svc::profile
