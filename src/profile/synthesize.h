// Synthetic trace generators.
//
// The paper evaluates against synthetic workloads because production traces
// are proprietary (its future work is profiling real ones).  These
// generators produce the trace shapes the measurement studies it cites
// report: steady noisy senders, on/off burst patterns (shuffle phases), and
// diurnal ramps.  They feed the estimator tests and the profiling example.
#pragma once

#include "profile/usage_trace.h"
#include "stats/rng.h"

namespace svc::profile {

// Gaussian rate around `mean_mbps` with `stddev_mbps`, rectified at 0.
UsageTrace SynthesizeNoisy(stats::Rng& rng, int seconds, double mean_mbps,
                           double stddev_mbps);

// On/off bursts: `on_seconds` at on_mbps (with 10% jitter), `off_seconds`
// near zero — the paper's "highly volatile" shuffle-like profile.  Produces
// a strongly bimodal (non-normal) trace that stresses the two-moment model.
UsageTrace SynthesizeOnOff(stats::Rng& rng, int seconds, double on_mbps,
                           int on_seconds, int off_seconds);

// Linear ramp from `start_mbps` to `end_mbps` with Gaussian noise.
UsageTrace SynthesizeRamp(stats::Rng& rng, int seconds, double start_mbps,
                          double end_mbps, double noise_mbps);

}  // namespace svc::profile
