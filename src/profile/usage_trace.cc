#include "profile/usage_trace.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

namespace svc::profile {

namespace {
constexpr char kMagic[] = "svc-trace v1";
}

UsageTrace::UsageTrace(double interval_seconds)
    : interval_seconds_(interval_seconds) {
  assert(interval_seconds > 0);
}

void UsageTrace::Record(double rate_mbps) {
  samples_.push_back(std::max(0.0, rate_mbps));
}

void UsageTrace::SaveTo(std::ostream& out) const {
  out << kMagic << "\n";
  out << "interval " << interval_seconds_ << "\n";
  out << "samples " << samples_.size() << "\n";
  out.precision(17);
  for (double s : samples_) out << s << "\n";
}

util::Result<UsageTrace> UsageTrace::LoadFrom(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return {util::ErrorCode::kInvalidArgument,
            "not a trace file (bad magic line)"};
  }
  std::string keyword;
  double interval = 0;
  size_t count = 0;
  if (!(in >> keyword >> interval) || keyword != "interval" ||
      interval <= 0) {
    return {util::ErrorCode::kInvalidArgument, "bad interval line"};
  }
  if (!(in >> keyword >> count) || keyword != "samples") {
    return {util::ErrorCode::kInvalidArgument, "bad samples line"};
  }
  UsageTrace trace(interval);
  trace.samples_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double value = 0;
    if (!(in >> value) || value < 0) {
      return {util::ErrorCode::kInvalidArgument,
              "bad sample at index " + std::to_string(i)};
    }
    trace.samples_.push_back(value);
  }
  return trace;
}

util::Status UsageTrace::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return {util::ErrorCode::kInvalidArgument, "cannot open " + path};
  }
  SaveTo(out);
  out.flush();
  if (!out) {
    return {util::ErrorCode::kInvalidArgument, "write failed: " + path};
  }
  return util::Status::Ok();
}

util::Result<UsageTrace> UsageTrace::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status{util::ErrorCode::kNotFound, "cannot open " + path};
  }
  return LoadFrom(in);
}

}  // namespace svc::profile
