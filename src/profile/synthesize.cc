#include "profile/synthesize.h"

#include <cassert>

namespace svc::profile {

UsageTrace SynthesizeNoisy(stats::Rng& rng, int seconds, double mean_mbps,
                           double stddev_mbps) {
  assert(seconds > 0);
  UsageTrace trace(1.0);
  for (int t = 0; t < seconds; ++t) {
    trace.Record(rng.Normal(mean_mbps, stddev_mbps));
  }
  return trace;
}

UsageTrace SynthesizeOnOff(stats::Rng& rng, int seconds, double on_mbps,
                           int on_seconds, int off_seconds) {
  assert(seconds > 0 && on_seconds > 0 && off_seconds >= 0);
  UsageTrace trace(1.0);
  int phase_left = on_seconds;
  bool on = true;
  for (int t = 0; t < seconds; ++t) {
    if (on) {
      trace.Record(rng.Normal(on_mbps, 0.1 * on_mbps));
    } else {
      trace.Record(rng.Normal(0.02 * on_mbps, 0.01 * on_mbps));
    }
    if (--phase_left == 0) {
      on = !on;
      phase_left = on ? on_seconds : off_seconds;
      if (phase_left == 0) {  // off_seconds == 0: always on
        on = true;
        phase_left = on_seconds;
      }
    }
  }
  return trace;
}

UsageTrace SynthesizeRamp(stats::Rng& rng, int seconds, double start_mbps,
                          double end_mbps, double noise_mbps) {
  assert(seconds > 0);
  UsageTrace trace(1.0);
  for (int t = 0; t < seconds; ++t) {
    const double base =
        start_mbps + (end_mbps - start_mbps) * t / std::max(1, seconds - 1);
    trace.Record(rng.Normal(base, noise_mbps));
  }
  return trace;
}

}  // namespace svc::profile
