// Bandwidth usage traces.
//
// "Given the bandwidth usage profile of an application, one can derive the
// probability distributions of bandwidth demands of VMs and include them in
// the virtual cluster requests" (paper Section III-A).  This module is that
// pipeline: record (or synthesize) per-task rate samples, estimate the
// demand distribution, and build SVC requests from it.
//
// Traces persist in a line-oriented text format:
//
//   svc-trace v1
//   interval <seconds>
//   samples <count>
//   <rate_mbps>            (one per line)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.h"

namespace svc::profile {

class UsageTrace {
 public:
  explicit UsageTrace(double interval_seconds = 1.0);

  // Appends one observed rate sample (Mbps, >= 0; negative readings are
  // clamped to 0 — counters can glitch).
  void Record(double rate_mbps);

  double interval_seconds() const { return interval_seconds_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }
  double duration_seconds() const {
    return interval_seconds_ * static_cast<double>(samples_.size());
  }

  // Serialization (format above).  Load validates the header and every
  // sample; malformed input yields kInvalidArgument.
  void SaveTo(std::ostream& out) const;
  static util::Result<UsageTrace> LoadFrom(std::istream& in);

  // Convenience file wrappers.
  util::Status SaveToFile(const std::string& path) const;
  static util::Result<UsageTrace> LoadFromFile(const std::string& path);

 private:
  double interval_seconds_;
  std::vector<double> samples_;
};

}  // namespace svc::profile
