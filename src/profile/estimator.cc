#include "profile/estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/ecdf.h"

namespace svc::profile {

bool DemandEstimate::NormalFitReasonable() const {
  return std::abs(skewness) < 1.0 && std::abs(excess_kurtosis) < 3.0;
}

namespace {

util::Result<DemandEstimate> EstimateFromSamples(
    const std::vector<double>& samples) {
  if (samples.size() < 2) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "need at least 2 samples to estimate a distribution"};
  }
  const double n = static_cast<double>(samples.size());
  double mean = 0;
  for (double s : samples) mean += s;
  mean /= n;
  double m2 = 0, m3 = 0, m4 = 0;
  for (double s : samples) {
    const double d = s - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;

  DemandEstimate estimate;
  estimate.samples = samples.size();
  estimate.mean = mean;
  // Sample (unbiased) variance for the request.
  estimate.demand = stats::Normal{mean, m2 * n / (n - 1)};
  if (m2 > 0) {
    estimate.skewness = m3 / std::pow(m2, 1.5);
    estimate.excess_kurtosis = m4 / (m2 * m2) - 3.0;
  }
  stats::EmpiricalCdf cdf(samples);
  estimate.p95 = cdf.Percentile(0.95);
  return estimate;
}

}  // namespace

util::Result<DemandEstimate> EstimateDemand(const UsageTrace& trace) {
  return EstimateFromSamples(trace.samples());
}

util::Result<core::Request> RequestFromTraces(
    core::RequestId id, std::span<const UsageTrace> traces) {
  if (traces.empty()) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "need at least one trace"};
  }
  std::vector<stats::Normal> demands;
  demands.reserve(traces.size());
  for (const UsageTrace& trace : traces) {
    auto estimate = EstimateDemand(trace);
    if (!estimate) return estimate.status();
    demands.push_back(estimate->demand);
  }
  return core::Request::Heterogeneous(id, std::move(demands));
}

util::Result<core::Request> HomogeneousRequestFromTraces(
    core::RequestId id, int n, std::span<const UsageTrace> traces) {
  if (n < 1) {
    return util::Status{util::ErrorCode::kInvalidArgument, "n must be >= 1"};
  }
  std::vector<double> pooled;
  for (const UsageTrace& trace : traces) {
    pooled.insert(pooled.end(), trace.samples().begin(),
                  trace.samples().end());
  }
  auto estimate = EstimateFromSamples(pooled);
  if (!estimate) return estimate.status();
  return core::Request::Homogeneous(id, n, estimate->demand.mean,
                                    estimate->demand.stddev());
}

}  // namespace svc::profile
