// Tenant request types: the Stochastic Virtual Cluster abstraction.
//
// An SVC request is <N, (mu_1, sigma_1), ..., (mu_N, sigma_N)>: N VMs hang
// off a virtual switch, VM i's bandwidth demand is N(mu_i, sigma_i^2).  The
// deterministic virtual cluster of Oktopus <N, B> is the special case
// sigma_i = 0 for all i, and (paper Section III-A) both kinds coexist in the
// same datacenter: deterministic requests are enforced by rate limiting and
// occupy the D_L share of every link, stochastic requests share the residual
// S_L statistically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link_ledger.h"
#include "stats/normal.h"
#include "util/result.h"

namespace svc::core {

using net::RequestId;

class Request {
 public:
  // Homogeneous SVC <N, mu, sigma>: all VMs i.i.d. N(mu, sigma^2).
  static Request Homogeneous(RequestId id, int n, double mean, double stddev);

  // Deterministic VC <N, B> (Oktopus): rate-limited to B per VM.
  static Request Deterministic(RequestId id, int n, double bandwidth);

  // Heterogeneous SVC with per-VM distributions (size defines N).
  static Request Heterogeneous(RequestId id,
                               std::vector<stats::Normal> demands);

  RequestId id() const { return id_; }
  int n() const { return n_; }

  // True if all VMs share one distribution (demand(i) identical).
  bool homogeneous() const { return demands_.size() == 1; }

  // True if every VM's demand has zero variance; such requests are enforced
  // by rate limiting and reserve deterministic bandwidth.
  bool deterministic() const { return deterministic_; }

  // Distribution of VM i's bandwidth demand.
  const stats::Normal& demand(int i) const {
    return homogeneous() ? demands_[0] : demands_[i];
  }

  // Sum of all VMs' means / variances (used for split aggregates).
  double total_mean() const { return total_mean_; }
  double total_variance() const { return total_variance_; }

  // Validation for externally supplied requests (examples / workload files):
  // rejects non-positive N, negative moments.
  util::Status Validate() const;

  std::string Describe() const;

 private:
  Request(RequestId id, int n, std::vector<stats::Normal> demands);

  RequestId id_;
  int n_;
  std::vector<stats::Normal> demands_;  // size 1 (homogeneous) or n_
  double total_mean_ = 0;
  double total_variance_ = 0;
  bool deterministic_ = false;
};

}  // namespace svc::core
