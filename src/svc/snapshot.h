// Network-manager state snapshots.
//
// The paper's network manager maintains "the up-to-date status of the
// datacenter network"; a production deployment must survive restarts of
// that (logically centralized) component.  A snapshot is the minimal
// ground truth — the live tenants' requests and placements — from which
// every derived structure (slot map, per-link demand records, running
// sums) is rebuilt by replaying AdmitPlacement.  Restore therefore
// re-validates everything: a snapshot that does not fit the target
// topology, or that violates condition (4) under the target epsilon, is
// rejected.
//
// Text format:
//
//   svc-snapshot v1
//   epsilon 0.05
//   tenants 2
//   tenant 7 homogeneous 10 200 14400     # id, N, mu, variance
//   place 3 3 4 4 5 5 6 6 7 7             # machine of VM 0..N-1
//   tenant 9 heterogeneous 2 300:22500 20:25
//   place 3 4
#pragma once

#include <iosfwd>
#include <string>

#include "svc/manager.h"
#include "util/result.h"

namespace svc::core {

// Writes the manager's live tenants.  Deterministic output order (by id).
// Refuses with kFailedPrecondition while admission proposals are in flight
// (NetworkManager::InFlightProposals): a snapshot taken mid-pipeline could
// miss commits the speculating batch is about to make — drain the
// AdmissionPipeline first (AdmitBatch is synchronous, so between batches
// the count is zero).  Nothing is written on refusal.
util::Status SaveSnapshot(const NetworkManager& manager, std::ostream& out);

// Replays a snapshot into `manager`, which must have no live tenants.
// On any malformed line or failed admission, restores nothing (the manager
// is rolled back to empty) and returns the error.  Like SaveSnapshot,
// refuses with kFailedPrecondition while proposals are in flight.
util::Status RestoreSnapshot(std::istream& in, NetworkManager& manager);

// File convenience wrappers.
util::Status SaveSnapshotToFile(const NetworkManager& manager,
                                const std::string& path);
util::Status RestoreSnapshotFromFile(const std::string& path,
                                     NetworkManager& manager);

}  // namespace svc::core
