// Three-stage concurrent admission pipeline with sharded commits
// (docs/CONCURRENCY.md).
//
//   1. snapshot  — the commit thread captures an epoch-stamped
//                  AdmissionSnapshot (ledger aggregates + slot map) and
//                  publishes it to the workers; on a sharded manager the
//                  re-capture copies only the stale buckets (CaptureStale);
//   2. speculate — N thread-pool workers run the allocator against the
//                  snapshot (NetworkManager::Propose — zero writes to
//                  shared state);
//   3. commit    — the calling thread alone SEQUENCES proposals in request
//                  order, but the write half of a single-shard commit
//                  (capacity re-check + row writes) runs on that shard's
//                  commit worker (NetworkManager::ApplyShardCommit), so
//                  commits into different top-level subtrees overlap.
//
// Sharded commit discipline (PipelineConfig::shards > 0, deterministic
// mode): the constructor partitions the fabric at the aggregation level
// (net::ShardMap) and starts one commit worker per shard.  The sequencer
// classifies each proposal by its touched-bucket mask:
//
//   * single-shard, strictly fresh — PrepareShardCommit on the sequencer
//     (duplicate/shape check, live registration, epoch bump: the commit's
//     place in request order), then the apply half is queued to the shard's
//     worker and the sequencer moves on;
//   * single-shard, shard-fresh    — epoch moved, but every bucket the
//     decision read (touched + core stripe) is unchanged and the allocator
//     declares monotone_placements(): candidates elsewhere only got worse,
//     so the speculated choice IS the serial decision — queued like the
//     fresh case;
//   * cross-shard / core-touching  — only taken strictly fresh (which
//     implies every shard queue is idle); committed inline on the
//     sequencer, counted under admission/cross_shard_commits;
//   * anything stale               — the touched shards' queues are
//     drained and the request re-runs serially on the authoritative books
//     (admission/shard_conflicts) — the serial decision by definition.
//
// Rejections are absorbed as before (fresh, or stale from a
// monotone_rejections() allocator).  Every decision therefore equals the
// serial decision, so fixed-seed runs are bit-identical to the serial path
// for ANY (worker count, shard count) — the determinism tests pin this.
//
// Cross-window pipelining: AdmitBatch(window = W) inserts a quiesce
// barrier every W requests — all shard queues drain and the snapshot is
// force-refreshed — so speculation for window N+1 proceeds against
// window N's final books while N's apply tail is still draining.  The
// batch end is always a full barrier: on return no proposal is in flight
// and every shard queue is empty (snapshots and faults are safe again).
//
// Obs: admission/{proposed,committed,conflicts,retries,fallbacks,
// shard_conflicts,cross_shard_commits} counters, the pipeline/depth and
// per-shard pipeline/shard_depth/<s> gauges, and the
// admission/commit_latency_us histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/manager.h"
#include "util/affinity.h"
#include "util/bounded_queue.h"
#include "util/cpu_topology.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace svc::core {

struct PipelineConfig {
  int workers = 0;         // speculation threads; 0 = hardware concurrency
  int queue_capacity = 0;  // pending-queue bound; 0 = 4 * workers
  int max_retries = 3;     // optimistic re-speculations before serial fallback
  bool deterministic = true;
  // Aggregation-level commit shards: 0 leaves the manager unsharded (the
  // PR-5 single-committer pipeline); >= 1 installs a net::ShardMap on the
  // manager (clamped to the root's child count) and, under the
  // deterministic discipline with workers > 1, starts one commit worker
  // per shard.  1 is a valid degenerate point — one shard plus the core
  // stripe — and is the baseline the shard-scaling bench compares against.
  int shards = 0;
  // Borrowed pool to speculate on; the pipeline owns a private one if null.
  util::ThreadPool* pool = nullptr;
  // Topology-aware placement (docs/PERFORMANCE.md §7).  kShardNode pins
  // shard commit worker s to a core on node (s % nodes), first-touch
  // re-homes the ledger so that node owns bucket s's rows, and spreads the
  // speculation workers over the remaining cores; kCompact/kScatter apply
  // the same general policy to commit and speculation workers alike.
  // Placement never changes decisions — plans are deterministic and the
  // commit discipline is placement-oblivious — and degrades to kNone
  // behavior (no pinning, no re-homing effect) on single-cpu or
  // single-node hosts.  A borrowed `pool` is never re-pinned; only the
  // pipeline's own workers participate.
  util::PlacementPolicy placement = util::PlacementPolicy::kNone;
  // Borrowed; must outlive the constructor.  nullptr + a non-kNone
  // placement detects the host topology.
  const util::CpuTopology* topology = nullptr;
};

// Cumulative across AdmitBatch calls; owned by the commit thread (read it
// only between batches).
struct PipelineStats {
  int64_t proposed = 0;    // speculation runs (includes retries)
  int64_t committed = 0;   // admissions committed to the books
  int64_t rejected = 0;    // final negative decisions
  int64_t conflicts = 0;   // proposals invalidated by a concurrent commit
  int64_t retries = 0;     // optimistic re-speculations after a conflict
  int64_t fallbacks = 0;   // serial re-runs on the commit thread
  int64_t shard_commits = 0;       // applies dispatched to shard workers
  int64_t shard_conflicts = 0;     // admits that failed the shard-fresh check
  int64_t cross_shard_commits = 0; // fresh multi-bucket inline commits
};

class AdmissionPipeline {
 public:
  explicit AdmissionPipeline(NetworkManager& manager,
                             PipelineConfig config = {});
  ~AdmissionPipeline();

  AdmissionPipeline(const AdmissionPipeline&) = delete;
  AdmissionPipeline& operator=(const AdmissionPipeline&) = delete;

  int workers() const { return config_.workers; }
  bool deterministic() const { return config_.deterministic; }
  // Shard commit workers actually running (0 = unsharded single committer).
  int shard_workers() const { return static_cast<int>(committers_.size()); }

  // One resolved worker pin, for logs and bench snapshots (so
  // placement-dependent latency outliers can be explained post hoc).
  struct WorkerPlacement {
    const char* role;  // "shard_commit" | "speculate"
    int index;         // shard id, or pool worker id
    int cpu;           // -1 = unpinned
    int node;          // -1 when unpinned
  };
  // The resolved placement map: shard commit workers first, then the
  // speculation pool's workers.  Stable for the pipeline's lifetime; empty
  // under the serial degenerate config.
  const std::vector<WorkerPlacement>& placement_map() const {
    return placement_map_;
  }
  util::PlacementPolicy placement() const { return config_.placement; }
  // The topology the plan was computed from (nullptr under kNone).
  const util::CpuTopology* topology() const { return topo_; }

  // Decision observer: runs on the calling thread with a mutable reference
  // to the request's decision (the engine moves the placement out to
  // register flows).  Under the deterministic discipline invocations are in
  // request order — delivery may lag the sequencer while a shard worker's
  // apply is in flight, but never reorders.
  using DecisionFn = std::function<void(size_t, util::Result<Placement>&)>;

  // Runs the batch through the pipeline; returns one decision per request,
  // in request order.  Synchronous: on return the pipeline is drained (no
  // in-flight proposals, all shard queues empty — snapshots and faults are
  // safe again).
  //
  // `stop_on_failure` models strict-FIFO admission (deterministic
  // discipline only): after the first failed request no later request is
  // committed; their slots report kFailedPrecondition "not attempted" and
  // `on_decision` is not called for them.  (A shard-worker apply failure —
  // an allocator bug, never a scheduling artifact — aborts at delivery
  // time, so a few already-sequenced successors may still have committed.)
  //
  // `window` > 0 inserts a cross-window barrier every `window` requests:
  // shard queues drain, pending decisions deliver, and the snapshot is
  // force-refreshed.  0 = no interior barriers (one window).
  std::vector<util::Result<Placement>> AdmitBatch(
      const std::vector<Request>& requests, const Allocator& allocator,
      bool stop_on_failure = false, const DecisionFn& on_decision = {},
      int window = 0);

  const PipelineStats& stats() const { return stats_; }

  // Histogram of how many shards each admit proposal touched (index =
  // touched-shard count, 0..num_shards; empty when unsharded).  Cumulative;
  // owned by the commit thread like stats().
  const std::vector<int64_t>& touched_shard_histogram() const {
    return touched_shards_;
  }

 private:
  struct BatchCtx;

  // One apply-half work item for a shard commit worker.  `request` points
  // into the AdmitBatch caller's vector and `ctx` into its stack frame;
  // both outlive the task because the batch end drains every queue.
  // The decision-provenance fields (path, epoch_delta, stages) are filled
  // by the sequencer when decision logging is on; the worker completes the
  // record with the apply latency and the post-apply binding-link slack —
  // a single-shard task's demand links all live in the worker's own
  // bucket, so those reads race with nothing.
  struct CommitTask {
    size_t index = 0;
    const Request* request = nullptr;
    AdmissionProposal proposal;
    BatchCtx* ctx = nullptr;
    obs::CommitPath path = obs::CommitPath::kShardDispatch;
    uint32_t epoch_delta = 0;
    obs::DecisionRecord::StageLatencies stages;
    // Control task: when set, the worker runs `fn` instead of an apply and
    // retires it through the same dispatched/applied accounting, so the
    // drain protocol needs no special case.  Used for the first-touch
    // re-homing inits, which must execute on the owning worker's thread.
    std::function<void()> fn;
  };

  // Per-shard commit worker: a FIFO queue (so per-shard apply order equals
  // request order) plus drain bookkeeping.  `dispatched` is sequencer-only;
  // `applied` is the worker's release-published progress counter — the
  // sequencer spins on it to drain (kMaxShards workers make that cheap).
  struct ShardCommitter {
    explicit ShardCommitter(size_t capacity) : queue(capacity) {}
    util::BoundedQueue<CommitTask> queue;
    std::thread thread;
    std::string depth_gauge;  // cached "pipeline/shard_depth/<s>"
    std::string node_gauge;   // cached "pipeline/worker_node/<s>"
    util::CpuSlot cpu;        // planned pin (cpu -1: run unpinned)
    util::Latch* started = nullptr;  // ctor-stack latch; signaled once after
                                     // pin + ring prefault, before first Pop
    int64_t dispatched = 0;
    // False-sharing constraint: the sequencer spins on `applied` while the
    // worker bumps it after every apply, and `dispatched` above is written
    // by the sequencer on every dispatch.  alignas puts the atomic on its
    // own cache line (it is the final member, so the struct's rounded size
    // pads the rest of the line) — without it each worker increment would
    // also invalidate the sequencer's dispatched/cursor line.
    alignas(util::kCacheLineSize) std::atomic<int64_t> applied{0};
  };

  // Worker body: pops request indices, speculates against the latest
  // published snapshot, parks the proposal in its slot, reports done.
  void SpeculateLoop(BatchCtx& ctx);
  // Shard commit worker body: applies queued single-shard commits in FIFO
  // order, parks each result in its slot, publishes the ready flag.
  void CommitterLoop(ShardCommitter& committer);

  // The snapshot workers currently speculate against (mutex-guarded clone).
  std::shared_ptr<const AdmissionSnapshot> CurrentSnapshot();
  // Commit thread: republishes a fresh snapshot if the books moved.  On a
  // sharded manager the re-capture is partial (stale buckets only); it
  // drains those buckets' apply queues first — a FIFO apply is microseconds
  // of row writes, far cheaper than the serial re-runs that speculating
  // against a stale snapshot would cause.
  void RefreshSnapshot();

  // True iff any committer named in `mask` has queued-but-unapplied work.
  bool PendingApplies(uint64_t mask) const;
  // Blocks until every committer named in `mask` has drained its queue.
  void DrainShards(uint64_t mask);

  // Serial degenerate path (workers <= 1): plain Admit calls — this IS the
  // baseline the pipeline's speedup is measured over.
  std::vector<util::Result<Placement>> AdmitSerial(
      const std::vector<Request>& requests, const Allocator& allocator,
      bool stop_on_failure, const DecisionFn& on_decision);

  // Serial re-run on the authoritative books (all shards drained by the
  // caller): the fallback that anchors every stale path to the serial
  // decision.
  util::Result<Placement> SerialRerun(const Request& request,
                                      const Allocator& allocator);

  // Finalizes one proposal under the deterministic discipline.  Returns
  // the decision, or nullopt when the apply half was dispatched to a shard
  // worker (the decision is delivered later, in request order).
  std::optional<util::Result<Placement>> FinalizeDeterministic(
      const Request& request, const Allocator& allocator,
      AdmissionProposal&& proposal, BatchCtx* ctx, size_t index);

  // The shard committer index for a single-shard touched mask, else -1.
  int SingleShardOf(uint64_t touched_mask) const;

  NetworkManager& manager_;
  PipelineConfig config_;
  // The topology driving the placement plan: config_.topology, or a
  // detection owned here.  nullptr under kNone (no plan, no pinning).
  util::CpuTopology owned_topology_;
  const util::CpuTopology* topo_ = nullptr;
  std::vector<WorkerPlacement> placement_map_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;

  // Shard commit workers (empty = unsharded / serial-commit pipeline).
  std::vector<std::unique_ptr<ShardCommitter>> committers_;

  // Snapshot publication: workers clone the shared_ptr under the mutex;
  // the commit thread swaps in a fresh capture after every epoch change.
  // Retired snapshots are recycled once no worker holds them.
  std::mutex snapshot_mu_;
  std::shared_ptr<const AdmissionSnapshot> snapshot_;
  std::vector<std::shared_ptr<AdmissionSnapshot>> snapshot_pool_;

  PipelineStats stats_;
  std::vector<int64_t> touched_shards_;
};

}  // namespace svc::core
