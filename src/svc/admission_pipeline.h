// Three-stage concurrent admission pipeline (docs/CONCURRENCY.md).
//
//   1. snapshot  — the commit thread captures an epoch-stamped
//                  AdmissionSnapshot (ledger aggregates + slot map) and
//                  publishes it to the workers;
//   2. speculate — N thread-pool workers run the allocator against the
//                  snapshot (NetworkManager::Propose — zero writes to
//                  shared state);
//   3. commit    — the calling thread alone validates each proposal
//                  against the authoritative books and commits it
//                  (NetworkManager::CommitProposal), re-checking condition
//                  (4) only on the links the placement touches.
//
// Two commit disciplines:
//
//   deterministic (default) — proposals are committed in request order.  A
//   proposal whose epoch still matches the books is exactly what a serial
//   Admit would have produced (allocators are deterministic functions of
//   (request, books)); a stale admit is re-run serially inline, and a
//   stale REJECTION from a monotone allocator (see
//   Allocator::monotone_rejections) is absorbed as-is — the books only
//   gained tenants since the snapshot, so the rejection still holds.
//   Either way every decision equals the serial decision, so fixed-seed
//   simulations are bit-identical to the serial path for ANY worker count.
//   Rejections do not bump the epoch, so a run of rejections keeps every
//   later proposal fresh — the pipeline shines exactly where admission
//   control works hardest.
//
//   optimistic — proposals are committed in completion order.  A stale
//   proposal is first re-validated against the authoritative books and
//   committed if it still fits (most do: different tenants rarely collide
//   on the same bottleneck); a conflicting one is re-speculated with the
//   new epoch up to max_retries times, then falls back to a serial Admit
//   on the commit thread — so results are never worse than the serial
//   path.  Decisions can differ from request order, but every committed
//   placement satisfies condition (4).  This is the throughput mode for a
//   live control plane.
//
// Obs: admission/{proposed,committed,conflicts,retries,fallbacks} counters,
// the pipeline/depth gauge, and the admission/commit_latency_us histogram.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "svc/manager.h"
#include "util/bounded_queue.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace svc::core {

struct PipelineConfig {
  int workers = 0;         // speculation threads; 0 = hardware concurrency
  int queue_capacity = 0;  // pending-queue bound; 0 = 4 * workers
  int max_retries = 3;     // optimistic re-speculations before serial fallback
  bool deterministic = true;
  // Borrowed pool to speculate on; the pipeline owns a private one if null.
  util::ThreadPool* pool = nullptr;
};

// Cumulative across AdmitBatch calls; owned by the commit thread (read it
// only between batches).
struct PipelineStats {
  int64_t proposed = 0;    // speculation runs (includes retries)
  int64_t committed = 0;   // admissions committed to the books
  int64_t rejected = 0;    // final negative decisions
  int64_t conflicts = 0;   // proposals invalidated by a concurrent commit
  int64_t retries = 0;     // optimistic re-speculations after a conflict
  int64_t fallbacks = 0;   // serial re-runs on the commit thread
};

class AdmissionPipeline {
 public:
  explicit AdmissionPipeline(NetworkManager& manager,
                             PipelineConfig config = {});
  ~AdmissionPipeline();

  AdmissionPipeline(const AdmissionPipeline&) = delete;
  AdmissionPipeline& operator=(const AdmissionPipeline&) = delete;

  int workers() const { return config_.workers; }
  bool deterministic() const { return config_.deterministic; }

  // Decision observer: runs on the calling thread immediately after request
  // `index` is finalized, with a mutable reference to its decision (the
  // engine moves the placement out to register flows).  Under the
  // deterministic discipline invocations are in request order.
  using DecisionFn = std::function<void(size_t, util::Result<Placement>&)>;

  // Runs the batch through the pipeline; returns one decision per request,
  // in request order.  Synchronous: on return the pipeline is drained (no
  // in-flight proposals — snapshots and faults are safe again).
  //
  // `stop_on_failure` models strict-FIFO admission (deterministic
  // discipline only): after the first failed request no later request is
  // committed; their slots report kFailedPrecondition "not attempted" and
  // `on_decision` is not called for them.
  std::vector<util::Result<Placement>> AdmitBatch(
      const std::vector<Request>& requests, const Allocator& allocator,
      bool stop_on_failure = false, const DecisionFn& on_decision = {});

  const PipelineStats& stats() const { return stats_; }

 private:
  struct BatchCtx;

  // Worker body: pops request indices, speculates against the latest
  // published snapshot, parks the proposal in its slot, reports done.
  void SpeculateLoop(BatchCtx& ctx);

  // The snapshot workers currently speculate against (mutex-guarded clone).
  std::shared_ptr<const AdmissionSnapshot> CurrentSnapshot();
  // Commit thread: republishes a fresh snapshot if the books moved.
  void RefreshSnapshot();

  // Serial degenerate path (workers <= 1): plain Admit calls — this IS the
  // baseline the pipeline's speedup is measured over.
  std::vector<util::Result<Placement>> AdmitSerial(
      const std::vector<Request>& requests, const Allocator& allocator,
      bool stop_on_failure, const DecisionFn& on_decision);

  // Finalizes one proposal under the deterministic discipline: commit via
  // CommitProposal when the epoch still matches, serial re-run otherwise.
  util::Result<Placement> FinalizeDeterministic(const Request& request,
                                                const Allocator& allocator,
                                                AdmissionProposal&& proposal);

  NetworkManager& manager_;
  PipelineConfig config_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;

  // Snapshot publication: workers clone the shared_ptr under the mutex;
  // the commit thread swaps in a fresh capture after every epoch change.
  // Retired snapshots are recycled once no worker holds them.
  std::mutex snapshot_mu_;
  std::shared_ptr<const AdmissionSnapshot> snapshot_;
  std::vector<std::shared_ptr<AdmissionSnapshot>> snapshot_pool_;

  PipelineStats stats_;
};

}  // namespace svc::core
