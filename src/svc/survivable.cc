#include "svc/survivable.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "stats/normal.h"
#include "svc/demand_profile.h"

namespace svc::core {

namespace {

// The per-link below-side aggregates of the PRIMARY placement plus its
// primary demand rows — candidate-independent, so PlanBackup builds it once
// and reuses it across every backup-machine candidate.
struct PrimaryDemands {
  std::unordered_map<topology::VertexId, stats::Normal> below;
  std::vector<LinkDemand> rows;
};

PrimaryDemands BuildPrimaryDemands(const topology::Topology& topo,
                                   const Request& request,
                                   const Placement& placement) {
  assert(placement.total_vms() == request.n());
  PrimaryDemands out;
  // Aggregate the per-VM moments below every link the placement touches by
  // walking each VM's machine up to the root (the legacy ComputeLinkDemands
  // body verbatim, so primary rows come out in the identical order).
  for (int vm = 0; vm < request.n(); ++vm) {
    const stats::Normal& d = request.demand(vm);
    for (topology::VertexId link = placement.vm_machine[vm];
         link != topo.root(); link = topo.parent(link)) {
      stats::Normal& agg = out.below[link];
      agg.mean += d.mean;
      agg.variance += d.variance;
    }
  }
  const bool det = request.deterministic();
  out.rows.reserve(out.below.size());
  for (const auto& [link, agg] : out.below) {
    const stats::Normal demand =
        SplitDemandFromBelow(request, agg.mean, agg.variance);
    if (demand.mean == 0 && demand.variance == 0) continue;  // all on one side
    if (det) {
      out.rows.push_back({link, 0, 0, demand.mean});
    } else {
      out.rows.push_back({link, demand.mean, demand.variance, 0});
    }
  }
  return out;
}

// Lowest common ancestor of two vertices (walks `a` up until `b` is in its
// subtree; O(depth) in a tree).
topology::VertexId Lca(const topology::Topology& topo, topology::VertexId a,
                       topology::VertexId b) {
  topology::VertexId lca = a;
  while (!topo.IsInSubtree(b, lca)) lca = topo.parent(lca);
  return lca;
}

// Appends the domain-tagged backup rows of `placement` (which must be
// survivable): for each failure domain f, the post-failure placement moves
// f's VMs onto the backup machine, which changes the below-side aggregate
// only along the f→lca and backup→lca paths; each moment's demand increase
// over the primary reservation (clamped at 0) becomes a backup row.
void AppendBackupRows(const topology::Topology& topo, const Request& request,
                      const Placement& placement, const PrimaryDemands& primary,
                      std::vector<LinkDemand>* rows) {
  assert(placement.survivable());
  const bool det = request.deterministic();
  const topology::VertexId backup = placement.backup_machine;

  // Per-domain aggregates of the primary placement, ascending machine id so
  // the emitted row order (and thus every downstream float reduction) is
  // deterministic.
  std::map<topology::VertexId, stats::Normal> domains;
  for (int vm = 0; vm < request.n(); ++vm) {
    stats::Normal& agg = domains[placement.vm_machine[vm]];
    const stats::Normal& d = request.demand(vm);
    agg.mean += d.mean;
    agg.variance += d.variance;
  }

  auto emit = [&](topology::VertexId link, topology::VertexId domain,
                  double below_mean, double below_var) {
    auto it = primary.below.find(link);
    const stats::Normal base =
        it == primary.below.end()
            ? stats::Normal{0, 0}
            : SplitDemandFromBelow(request, it->second.mean,
                                   it->second.variance);
    const stats::Normal patched =
        SplitDemandFromBelow(request, std::max(0.0, below_mean),
                             std::max(0.0, below_var));
    const double dm = std::max(0.0, patched.mean - base.mean);
    const double dv = std::max(0.0, patched.variance - base.variance);
    if (dm == 0 && dv == 0) return;
    if (det) {
      rows->push_back({link, 0, 0, dm, domain});
    } else {
      rows->push_back({link, dm, dv, 0, domain});
    }
  };

  for (const auto& [f, moved] : domains) {
    const topology::VertexId lca = Lca(topo, f, backup);
    // f-side path: the domain's VMs leave, so the below aggregate drops by
    // `moved` — yet the hose-model demand min(m, N-m) can INCREASE when the
    // below side held more than half of the request.
    for (topology::VertexId link = f; link != lca; link = topo.parent(link)) {
      auto it = primary.below.find(link);
      assert(it != primary.below.end());
      emit(link, f, it->second.mean - moved.mean,
           it->second.variance - moved.variance);
    }
    // backup-side path: the domain's VMs arrive.
    for (topology::VertexId link = backup; link != lca;
         link = topo.parent(link)) {
      auto it = primary.below.find(link);
      const stats::Normal base =
          it == primary.below.end() ? stats::Normal{0, 0} : it->second;
      emit(link, f, base.mean + moved.mean, base.variance + moved.variance);
    }
  }
}

}  // namespace

std::vector<LinkDemand> ComputeSurvivableLinkDemands(
    const topology::Topology& topo, const Request& request,
    const Placement& placement) {
  PrimaryDemands primary = BuildPrimaryDemands(topo, request, placement);
  std::vector<LinkDemand> rows = std::move(primary.rows);
  if (placement.survivable()) {
    AppendBackupRows(topo, request, placement, primary, &rows);
  }
  return rows;
}

util::Status CheckSurvivableCapacity(const net::LinkLedger& ledger,
                                     const std::vector<LinkDemand>& demands) {
  // Primary rows: condition (4) in every state of the link (the ledger's
  // worst-case kernel covers existing tenants' post-failure states).
  for (const LinkDemand& d : demands) {
    if (d.domain != topology::kNoVertex) continue;
    if (!ledger.ValidWith(d.link, d.mean, d.variance, d.deterministic)) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement violates condition (4) on link " +
                  std::to_string(d.link)};
    }
  }
  // Backup rows: condition (4) in the row's own domain state, combined with
  // the primary addition on the same link (demand sets are small — O(depth
  // x domains) rows — so the quadratic pairing is cheap).
  for (const LinkDemand& d : demands) {
    if (d.domain == topology::kNoVertex) continue;
    double pm = 0, pv = 0, pd = 0;
    for (const LinkDemand& p : demands) {
      if (p.domain == topology::kNoVertex && p.link == d.link) {
        pm = p.mean;
        pv = p.variance;
        pd = p.deterministic;
        break;
      }
    }
    if (!ledger.ValidWithDomain(d.link, d.domain, pm + d.mean,
                                pv + d.variance, pd + d.deterministic)) {
      return {util::ErrorCode::kFailedPrecondition,
              "backup for domain " + std::to_string(d.domain) +
                  " violates post-failure condition (4) on link " +
                  std::to_string(d.link)};
    }
  }
  return util::Status::Ok();
}

util::Result<Placement> PlanBackup(const topology::Topology& topo,
                                   const Request& request, Placement placement,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots) {
  placement.backup_machine = topology::kNoVertex;
  placement.backup_slots = 0;
  if (placement.total_vms() == 0) {
    return {util::ErrorCode::kInvalidArgument,
            "cannot protect an empty placement"};
  }

  // The backup group must absorb the largest per-machine VM group.
  std::map<topology::VertexId, int> counts;
  for (topology::VertexId m : placement.vm_machine) ++counts[m];
  int needed = 0;
  for (const auto& [m, c] : counts) needed = std::max(needed, c);

  const PrimaryDemands primary = BuildPrimaryDemands(topo, request, placement);

  // Primary rows score the same against every candidate (the worst-case
  // kernel already folds in existing tenants' backups).
  double primary_score = 0;
  for (const LinkDemand& d : primary.rows) {
    primary_score = std::max(primary_score, ledger.OccupancyWith(
                                                d.link, d.mean, d.variance,
                                                d.deterministic));
  }
  if (primary_score == std::numeric_limits<double>::infinity()) {
    return {util::ErrorCode::kInfeasible,
            "primary placement no longer satisfies condition (4)"};
  }
  std::unordered_map<topology::VertexId, stats::Normal> primary_by_link;
  std::unordered_map<topology::VertexId, double> primary_det_by_link;
  for (const LinkDemand& d : primary.rows) {
    primary_by_link.emplace(d.link, stats::Normal{d.mean, d.variance});
    primary_det_by_link.emplace(d.link, d.deterministic);
  }

  topology::VertexId best = topology::kNoVertex;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<LinkDemand> scratch;
  Placement candidate = placement;
  candidate.backup_slots = needed;
  for (topology::VertexId m : topo.machines()) {
    if (counts.count(m)) continue;  // backup must be off every domain
    if (!slots.machine_up(m) || slots.free_slots(m) < needed) continue;
    candidate.backup_machine = m;
    scratch.clear();
    AppendBackupRows(topo, request, candidate, primary, &scratch);
    double score = primary_score;
    bool ok = true;
    for (const LinkDemand& d : scratch) {
      auto it = primary_by_link.find(d.link);
      const double pm = it == primary_by_link.end() ? 0 : it->second.mean;
      const double pv = it == primary_by_link.end() ? 0 : it->second.variance;
      auto dit = primary_det_by_link.find(d.link);
      const double pd = dit == primary_det_by_link.end() ? 0 : dit->second;
      const double occ = ledger.OccupancyWithDomain(
          d.link, d.domain, pm + d.mean, pv + d.variance,
          pd + d.deterministic);
      if (occ == std::numeric_limits<double>::infinity()) {
        ok = false;
        break;
      }
      score = std::max(score, occ);
    }
    if (!ok) continue;
    if (score < best_score || (score == best_score && m < best)) {
      best = m;
      best_score = score;
    }
  }
  if (best == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no machine can host a backup group of " +
                std::to_string(needed) + " slots under condition (4)"};
  }
  placement.backup_machine = best;
  placement.backup_slots = needed;
  return placement;
}

}  // namespace svc::core
