// Survivable admission (docs/ROBUSTNESS.md "Survivability"): backup slot
// groups with shared backup bandwidth, after "Survivable and
// Bandwidth-Guaranteed Embedding of Virtual Clusters" (arxiv 1612.06507).
//
// A survivable placement reserves, besides its primary slots, a backup
// group of `backup_slots` slots on `backup_machine` sized to absorb the
// largest per-machine VM group.  For every primary machine f (a failure
// domain) the post-failure placement is "f's VMs moved onto the backup
// machine"; the bandwidth that placement needs BEYOND the primary
// reservation is recorded per link as a domain-tagged backup demand.  The
// ledger holds those per-domain and enforces condition (4) on the worst
// post-failure state of each link, so backups protecting disjoint domains
// share headroom instead of summing.
#pragma once

#include <vector>

#include "net/link_ledger.h"
#include "svc/manager.h"
#include "svc/placement.h"
#include "svc/request.h"
#include "svc/slot_map.h"
#include "topology/topology.h"
#include "util/result.h"

namespace svc::core {

// Per-link demands of `placement`: the primary rows (domain == kNoVertex,
// exactly what the non-survivable computation produces, in the same order)
// followed by, when the placement is survivable, one row per (link, domain)
// whose post-failure demand exceeds the primary reservation there.  Deltas
// are clamped at zero per moment — where a failure *reduces* a link's load
// the reservation simply stays at the primary level (conservative).
// Depends only on (topology, request, placement), never on ledger state.
std::vector<LinkDemand> ComputeSurvivableLinkDemands(
    const topology::Topology& topo, const Request& request,
    const Placement& placement);

// Condition (4) over a survivable demand set: each primary row must hold in
// every state of its link (the ledger's worst-case kernel), and each backup
// row must hold in its own domain's post-failure state combined with the
// primary row landing on the same link.
util::Status CheckSurvivableCapacity(const net::LinkLedger& ledger,
                                     const std::vector<LinkDemand>& demands);

// Chooses the backup group for an already-placed request: the non-primary
// up machine with enough free slots for the largest primary VM group that
// minimizes the worst post-failure occupancy over the induced demand links
// (lowest machine id breaks ties, so the choice is deterministic).  Returns
// the placement with backup_machine/backup_slots set, or kInfeasible when
// no machine can host a valid backup.  Reads only the given books — safe
// against snapshots from any thread.
util::Result<Placement> PlanBackup(const topology::Topology& topo,
                                   const Request& request, Placement placement,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots);

}  // namespace svc::core
