#include "svc/admission_pipeline.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <optional>
#include <utility>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace svc::core {

namespace {

util::Result<Placement> NotAttempted() {
  return {util::ErrorCode::kFailedPrecondition,
          "not attempted: earlier FIFO admission failed"};
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

float MicrosBetween(int64_t from_ns, int64_t to_ns) {
  return from_ns == 0 ? 0.0f : static_cast<float>(to_ns - from_ns) * 1e-3f;
}

// Short reason code for decision records (mirrors manager.cc).
const char* ReasonCode(util::ErrorCode code) {
  switch (code) {
    case util::ErrorCode::kOk: return "ok";
    case util::ErrorCode::kInvalidArgument: return "invalid-argument";
    case util::ErrorCode::kInfeasible: return "infeasible";
    case util::ErrorCode::kCapacity: return "capacity";
    case util::ErrorCode::kNotFound: return "not-found";
    case util::ErrorCode::kFailedPrecondition: return "precondition";
  }
  return "unknown";
}

}  // namespace

// Per-batch shared state.  Workers write only proposals[i] for indices they
// popped from `pending` (handed back through `done`, whose mutex orders the
// write before the commit thread's read), so no slot is ever touched by two
// threads at once.  Shard commit workers write only decided[i] +
// apply_ready[i] for indices dispatched to them (distinct vector elements;
// the release store on apply_ready[i] orders the result before the
// sequencer's acquire read).
struct AdmissionPipeline::BatchCtx {
  BatchCtx(size_t n, size_t pending_capacity)
      : pending(pending_capacity),
        done(n),
        proposals(n),
        attempts(n, 0),
        decided(n),
        apply_ready(n) {}

  const std::vector<Request>* requests = nullptr;
  const Allocator* allocator = nullptr;
  util::BoundedQueue<size_t> pending;  // indices awaiting speculation
  util::BoundedQueue<size_t> done;     // indices with a parked proposal
  std::vector<AdmissionProposal> proposals;
  std::vector<int> attempts;  // optimistic re-speculation count per index
  // One publication flag per request, cache-line padded: the sequencer's
  // delivery loop spins on slot i while shard workers release-store
  // neighboring slots — unpadded, every store would invalidate the line
  // the spin is reading and the sequencer would stall on apply traffic for
  // *other* requests (false sharing on the hot delivery path).
  struct alignas(util::kCacheLineSize) ReadyFlag {
    std::atomic<uint8_t> flag{0};
  };

  // Final decisions, one slot per request: the sequencer fills inline
  // decisions, shard workers fill dispatched ones (then set apply_ready).
  std::vector<std::optional<util::Result<Placement>>> decided;
  std::vector<ReadyFlag> apply_ready;
  // Decision-provenance stage clocks (empty unless decision logging is on
  // at batch start; sized at batch setup, so the speculation hot loop
  // never allocates).  Same single-writer-per-index discipline as
  // `proposals`: the feeder stamps submit_ns[i], the speculating worker
  // fills stages[i]'s front half + spec_end_ns[i], the sequencer the rest.
  bool decisions = false;
  std::vector<int64_t> submit_ns;
  std::vector<int64_t> spec_end_ns;
  std::vector<obs::DecisionRecord::StageLatencies> stages;
};

AdmissionPipeline::AdmissionPipeline(NetworkManager& manager,
                                     PipelineConfig config)
    : manager_(manager), config_(config) {
  if (config_.workers <= 0) {
    config_.workers = util::ThreadPool::HardwareThreads();
  }
  if (config_.queue_capacity <= 0) {
    config_.queue_capacity = 4 * config_.workers;
  }
  if (config_.max_retries < 0) config_.max_retries = 0;

  if (config_.placement != util::PlacementPolicy::kNone) {
    if (config_.topology != nullptr) {
      topo_ = config_.topology;
    } else {
      owned_topology_ = util::CpuTopology::Detect();
      topo_ = &owned_topology_;
    }
  }

  // Shard partition first: the commit workers' pin plan is an input to the
  // speculation pool's plan (it fills the *remaining* cores).
  int num_shards = 0;
  if (config_.shards > 0) {
    auto shards =
        std::make_shared<net::ShardMap>(manager_.topo(), config_.shards);
    num_shards = shards->num_shards();
    manager_.ConfigureSharding(std::move(shards));
    touched_shards_.assign(static_cast<size_t>(num_shards) + 1, 0);
  }
  const bool sharded_committers =
      num_shards > 0 && config_.deterministic && config_.workers > 1;
  std::vector<util::CpuSlot> shard_slots(
      sharded_committers ? num_shards : 0);
  if (sharded_committers && topo_ != nullptr) {
    shard_slots = util::PlanShardCpus(*topo_, config_.placement, num_shards);
  }

  if (config_.workers > 1) {
    if (config_.pool != nullptr) {
      pool_ = config_.pool;  // borrowed: never re-pinned (see PipelineConfig)
    } else {
      util::ThreadPoolOptions opts;
      opts.num_threads = config_.workers;
      // kShardNode is a shard-worker mapping; the speculation pool packs
      // the cores the shard plan left free.
      opts.placement = config_.placement == util::PlacementPolicy::kShardNode
                           ? util::PlacementPolicy::kCompact
                           : config_.placement;
      opts.topology = topo_;
      opts.reserved = shard_slots;
      owned_pool_ = std::make_unique<util::ThreadPool>(opts);
      pool_ = owned_pool_.get();
    }
  }

  if (sharded_committers) {
    // The latch holds the constructor until every worker has pinned itself
    // and prefaulted its queue ring: the pin must precede the prefault (the
    // ring's pages land on the pinned node) and the prefault must precede
    // the first Push (a faulted-by-producer page defeats first touch).
    util::Latch started(num_shards);
    committers_.reserve(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      auto c = std::make_unique<ShardCommitter>(
          static_cast<size_t>(config_.queue_capacity));
      c->depth_gauge = "pipeline/shard_depth/" + std::to_string(s);
      c->node_gauge = "pipeline/worker_node/" + std::to_string(s);
      c->cpu = shard_slots[s];
      c->started = &started;
      c->thread = std::thread([this, committer = c.get()] {
        CommitterLoop(*committer);
      });
      committers_.push_back(std::move(c));
    }
    started.Wait();

    // First-touch re-homing: each bucket's ledger rows are move-constructed
    // into the fresh buffer ON the owning shard worker (a control task),
    // so the pages land on that worker's node.  Pure storage migration —
    // decisions cannot depend on it.  Skipped under kNone: without a pin
    // plan the "owning node" is wherever the OS happens to run things, and
    // the copy would buy nothing.
    if (config_.placement != util::PlacementPolicy::kNone) {
      manager_.RehomeLedgerRows(
          [this](int bucket, const std::function<void()>& init) {
            if (bucket < static_cast<int>(committers_.size())) {
              ShardCommitter& c = *committers_[bucket];
              util::Latch done(1);
              CommitTask task;
              task.fn = [&init, &done] {
                init();
                done.CountDown();
              };
              ++c.dispatched;
              const bool pushed = c.queue.Push(std::move(task));
              assert(pushed && "shard queue closed during re-homing");
              (void)pushed;
              done.Wait();
            } else {
              // Core-stripe bucket: sequencer-owned, touched right here.
              init();
            }
          });
    }
  }

  // Resolved placement map, commit workers first — perf_suite logs this
  // and embeds it in BENCH_PERF.json.
  for (size_t s = 0; s < committers_.size(); ++s) {
    const util::CpuSlot& slot = committers_[s]->cpu;
    placement_map_.push_back({"shard_commit", static_cast<int>(s), slot.cpu,
                              slot.cpu >= 0 ? slot.node : -1});
  }
  if (pool_ != nullptr) {
    const std::vector<util::CpuSlot>& plan = pool_->worker_cpus();
    for (size_t w = 0; w < plan.size(); ++w) {
      placement_map_.push_back({"speculate", static_cast<int>(w), plan[w].cpu,
                                plan[w].cpu >= 0 ? plan[w].node : -1});
    }
  }
}

AdmissionPipeline::~AdmissionPipeline() {
  for (std::unique_ptr<ShardCommitter>& c : committers_) {
    c->queue.Close();
  }
  for (std::unique_ptr<ShardCommitter>& c : committers_) {
    if (c->thread.joinable()) c->thread.join();
  }
}

std::shared_ptr<const AdmissionSnapshot> AdmissionPipeline::CurrentSnapshot() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool AdmissionPipeline::PendingApplies(uint64_t mask) const {
  for (size_t s = 0; s < committers_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    const ShardCommitter& c = *committers_[s];
    if (c.applied.load(std::memory_order_acquire) < c.dispatched) return true;
  }
  return false;
}

void AdmissionPipeline::DrainShards(uint64_t mask) {
  for (size_t s = 0; s < committers_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    const ShardCommitter& c = *committers_[s];
    while (c.applied.load(std::memory_order_acquire) < c.dispatched) {
      std::this_thread::yield();
    }
  }
}

void AdmissionPipeline::RefreshSnapshot() {
  if (snapshot_ != nullptr && snapshot_->epoch() == manager_.epoch()) {
    return;
  }
  // Recycle a retired buffer.  Workers obtain references only to the
  // currently published snapshot (under snapshot_mu_), so a pooled entry
  // with use_count() == 1 is unreachable from any worker — and stays that
  // way until we republish it.  Each worker holds at most one snapshot at
  // a time, so a pool of workers + 2 always has a free buffer and
  // steady-state refreshes allocate nothing.
  std::shared_ptr<AdmissionSnapshot> next;
  for (const std::shared_ptr<AdmissionSnapshot>& s : snapshot_pool_) {
    if (s.get() != snapshot_.get() && s.use_count() == 1) {
      next = s;
      break;
    }
  }
  if (next == nullptr) {
    next = std::make_shared<AdmissionSnapshot>(manager_.topo(),
                                               manager_.epsilon());
    if (snapshot_pool_.size() <
        static_cast<size_t>(config_.workers) + 2) {
      snapshot_pool_.push_back(next);
    }
  }
  // The recycled buffer re-captures relative to ITS OWN last capture: only
  // the buckets that moved since then are copied (a brand-new buffer takes
  // the full-capture path inside CaptureStale).  Those buckets' rows are
  // read, so their apply queues must be idle first.
  DrainShards(next->StaleBuckets(manager_));
  next->CaptureStale(manager_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = next;
}

void AdmissionPipeline::SpeculateLoop(BatchCtx& ctx) {
  size_t index = 0;
  while (ctx.pending.Pop(index)) {
    if (ctx.decisions) {
      const int64_t popped = NowNs();
      ctx.stages[index].queue_wait_us =
          MicrosBetween(ctx.submit_ns[index], popped);
      const std::shared_ptr<const AdmissionSnapshot> snapshot =
          CurrentSnapshot();
      const int64_t captured = NowNs();
      ctx.stages[index].snapshot_us = MicrosBetween(popped, captured);
      ctx.proposals[index] =
          manager_.Propose((*ctx.requests)[index], *ctx.allocator, *snapshot);
      ctx.spec_end_ns[index] = NowNs();
      ctx.stages[index].speculate_us =
          MicrosBetween(captured, ctx.spec_end_ns[index]);
    } else {
      const std::shared_ptr<const AdmissionSnapshot> snapshot =
          CurrentSnapshot();
      ctx.proposals[index] =
          manager_.Propose((*ctx.requests)[index], *ctx.allocator, *snapshot);
    }
    ctx.done.Push(index);
  }
}

void AdmissionPipeline::CommitterLoop(ShardCommitter& committer) {
  // Pin before prefault: the ring's pages must fault on the target node.
  // A failed pin (cgroup-restricted cpu, non-Linux) just runs unpinned.
  if (committer.cpu.cpu >= 0) util::PinCurrentThreadToCpu(committer.cpu.cpu);
  committer.queue.PrefaultStorage();
  if (obs::MetricsEnabled()) {
    obs::Registry::Global().GetGauge(committer.node_gauge)
        .Set(static_cast<double>(committer.cpu.cpu >= 0 ? committer.cpu.node
                                                        : -1));
  }
  if (committer.started != nullptr) committer.started->CountDown();
  CommitTask task;
  while (committer.queue.Pop(task)) {
    if (task.fn) {
      // Control task (first-touch init): run it on this thread and retire
      // it through the normal progress counter so drains stay uniform.
      task.fn();
      task.fn = nullptr;
      committer.applied.fetch_add(1, std::memory_order_release);
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    util::Result<Placement> r =
        manager_.ApplyShardCommit(*task.request, std::move(task.proposal));
    const double apply_us = MicrosSince(start);
    SVC_METRIC_HIST("admission/commit_latency_us", apply_us);
    if (obs::DecisionsEnabled()) {
      // Complete the sequencer-started record on the worker: a dispatched
      // task is single-shard, so its demand links (left intact by the
      // apply's placement move) are all in this worker's bucket — the
      // post-apply slack reads race with nothing.
      task.stages.apply_us = static_cast<float>(apply_us);
      const int shard = task.proposal.touched_mask == 0
                            ? -1
                            : std::countr_zero(task.proposal.touched_mask);
      manager_.RecordAdmissionDecision(
          *task.request, task.ctx->allocator->name(), r.ok(),
          r.ok() ? "ok" : ReasonCode(r.status().code()), task.path, shard,
          task.epoch_delta, manager_.ledger(), &task.proposal.demands,
          task.stages);
    }
    if (obs::FlightRecorder::Global().enabled()) {
      obs::FlightRecorder::Global().ObserveAdmission(r.ok(), apply_us);
    }
    task.ctx->decided[task.index] = std::move(r);
    task.ctx->apply_ready[task.index].flag.store(1, std::memory_order_release);
    committer.applied.fetch_add(1, std::memory_order_release);
  }
}

std::vector<util::Result<Placement>> AdmissionPipeline::AdmitSerial(
    const std::vector<Request>& requests, const Allocator& allocator,
    bool stop_on_failure, const DecisionFn& on_decision) {
  std::vector<util::Result<Placement>> results;
  results.reserve(requests.size());
  bool aborted = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (aborted) {
      results.push_back(NotAttempted());
      continue;
    }
    ++stats_.proposed;
    SVC_METRIC_INC("admission/proposed");
    util::Result<Placement> r = manager_.Admit(requests[i], allocator);
    if (r.ok()) {
      ++stats_.committed;
      SVC_METRIC_INC("admission/committed");
    } else {
      ++stats_.rejected;
    }
    if (on_decision) on_decision(i, r);
    if (stop_on_failure && !r.ok()) aborted = true;
    results.push_back(std::move(r));
  }
  return results;
}

util::Result<Placement> AdmissionPipeline::SerialRerun(
    const Request& request, const Allocator& allocator) {
  util::Result<Placement> r =
      manager_.Admit(request, allocator, obs::CommitPath::kStaleRerun);
  if (r.ok()) {
    ++stats_.committed;
    SVC_METRIC_INC("admission/committed");
    RefreshSnapshot();
  } else {
    ++stats_.rejected;
  }
  return r;
}

int AdmissionPipeline::SingleShardOf(uint64_t touched_mask) const {
  if (committers_.empty() || std::popcount(touched_mask) != 1) return -1;
  const int s = std::countr_zero(touched_mask);
  // The core stripe (bit num_shards) has no dedicated worker: core-touching
  // commits take the serialized cross-shard path.
  return s < static_cast<int>(committers_.size()) ? s : -1;
}

std::optional<util::Result<Placement>> AdmissionPipeline::FinalizeDeterministic(
    const Request& request, const Allocator& allocator,
    AdmissionProposal&& proposal, BatchCtx* ctx, size_t index) {
  const bool fresh = proposal.epoch == manager_.epoch();
  const bool decisions = ctx->decisions;
  const uint32_t epoch_delta =
      static_cast<uint32_t>(manager_.epoch() - proposal.epoch);
  if (decisions) {
    // Park-plus-sequencer-wait time; the sequencer fills it here once so
    // every downstream branch (inline, dispatch, rerun) inherits it.
    ctx->stages[index].sequence_us =
        MicrosBetween(ctx->spec_end_ns[index], NowNs());
  }
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  // Provenance for a rejection decided on the sequencer.  Binding links
  // descend the CURRENT PUBLISHED SNAPSHOT's ledger, not the authoritative
  // books: shard appliers may be writing their buckets' rows right now,
  // and the snapshot is immutable once published.
  auto record_reject = [&](obs::CommitPath path, const char* reason) {
    if (decisions) {
      const std::shared_ptr<const AdmissionSnapshot> snap = CurrentSnapshot();
      manager_.RecordAdmissionDecision(request, allocator.name(),
                                       /*admitted=*/false, reason, path,
                                       /*shard=*/-1, epoch_delta,
                                       snap->view.ledger(), nullptr,
                                       ctx->stages[index]);
    }
    if (flight.enabled()) {
      flight.ObserveAdmission(
          false, decisions ? ctx->stages[index].sequence_us : 0.0);
    }
  };
  if (!proposal.ok) {
    if (fresh || proposal.rejection_monotone) {
      // A rejection against fresh books IS the serial verdict — and a stale
      // one from a monotone allocator still is: within a batch the books
      // only gain tenants (rejections don't bump the epoch, releases and
      // faults are quiesced), so the rejection against the older, emptier
      // books holds a fortiori.  Rejection runs therefore keep every later
      // proposal fresh — heavy admission-control pressure pipelines well.
      ++stats_.rejected;
      record_reject(fresh ? obs::CommitPath::kFresh
                          : obs::CommitPath::kShardFresh,
                    ReasonCode(proposal.status.code()));
      return util::Result<Placement>(proposal.status);
    }
    // A stale rejection from a greedy allocator: the changed books may have
    // changed the verdict — serial re-run on the authoritative books.
    ++stats_.conflicts;
    SVC_METRIC_INC("admission/conflicts");
    ++stats_.fallbacks;
    SVC_METRIC_INC("admission/fallbacks");
    DrainShards(~uint64_t{0});
    return SerialRerun(request, allocator);
  }

  if (!touched_shards_.empty()) {
    const uint64_t shard_bits =
        (uint64_t{1} << (touched_shards_.size() - 1)) - 1;
    ++touched_shards_[static_cast<size_t>(
        std::popcount(proposal.touched_mask & shard_bits))];
  }

  const int shard = SingleShardOf(proposal.touched_mask);
  // Shard-freshness fast path: the epoch moved, but every bucket this
  // decision read (its touched links/machines plus the core stripe) is
  // unchanged since the speculation, and the allocator's selection is
  // monotone — candidates elsewhere only accumulated load, so the winner
  // the speculation picked is still the serial winner, evaluated against
  // bit-identical rows.  Restricted to single-shard placements: a
  // multi-subtree placement's evaluation spans buckets beyond its mask.
  const bool shard_fresh =
      shard >= 0 && allocator.monotone_placements() &&
      manager_.BucketsFresh(proposal.fresh_mask, proposal.shard_epochs);
  if (fresh || shard_fresh) {
    const obs::CommitPath commit_path =
        fresh ? (shard >= 0 ? obs::CommitPath::kShardDispatch
                            : obs::CommitPath::kFresh)
              : obs::CommitPath::kShardFresh;
    if (shard >= 0) {
      if (util::Status s = manager_.PrepareShardCommit(request, proposal);
          !s.ok()) {
        // Shape/duplicate failure on a fresh proposal: an allocator bug —
        // the same loud, attributable surface Admit gives it.
        ++stats_.rejected;
        record_reject(commit_path, ReasonCode(s.code()));
        return util::Result<Placement>(
            util::ErrorCode::kFailedPrecondition,
            std::string(allocator.name()) + ": " + s.message());
      }
      ShardCommitter& c = *committers_[shard];
      ++c.dispatched;
      ++stats_.shard_commits;
      if (obs::MetricsEnabled()) {
        obs::Registry::Global().GetGauge(c.depth_gauge).Set(
            static_cast<double>(c.dispatched -
                                c.applied.load(std::memory_order_relaxed)));
      }
      CommitTask task;
      task.index = index;
      task.request = &request;
      task.proposal = std::move(proposal);
      task.ctx = ctx;
      if (decisions) {
        task.path = commit_path;
        task.epoch_delta = epoch_delta;
        task.stages = ctx->stages[index];
      }
      const bool pushed = c.queue.Push(std::move(task));
      assert(pushed && "shard commit queue closed mid-batch");
      (void)pushed;
      RefreshSnapshot();
      return std::nullopt;  // decision delivered when the apply lands
    }
    // Fresh commit on the sequencer: the unsharded path, or a cross-shard /
    // core-touching placement.  Strict freshness implies every apply queue
    // is idle (any dispatch would have bumped the epoch), so the inline
    // commit reads and writes without racing a worker; the drain is
    // free insurance.
    DrainShards(proposal.touched_mask);
    if (!committers_.empty()) {
      ++stats_.cross_shard_commits;
      SVC_METRIC_INC("admission/cross_shard_commits");
    }
    const auto start = std::chrono::steady_clock::now();
    util::Result<Placement> committed =
        manager_.CommitProposal(request, std::move(proposal));
    const double commit_us = MicrosSince(start);
    SVC_METRIC_HIST("admission/commit_latency_us", commit_us);
    if (decisions) {
      // Strict freshness implies every apply queue is idle, so reading the
      // authoritative books for the binding-link slack is race-free here;
      // CommitProposal moved only the placement, the demands survive.
      ctx->stages[index].apply_us = static_cast<float>(commit_us);
      manager_.RecordAdmissionDecision(
          request, allocator.name(), committed.ok(),
          committed.ok() ? "ok" : ReasonCode(committed.status().code()),
          commit_path, /*shard=*/-1, epoch_delta, manager_.ledger(),
          &proposal.demands, ctx->stages[index]);
    }
    if (flight.enabled()) flight.ObserveAdmission(committed.ok(), commit_us);
    if (committed.ok()) {
      ++stats_.committed;
      SVC_METRIC_INC("admission/committed");
      RefreshSnapshot();
      return committed;
    }
    ++stats_.rejected;
    return util::Result<Placement>(
        util::ErrorCode::kFailedPrecondition,
        std::string(allocator.name()) + ": " + committed.status().message());
  }
  // Stale admit: the books moved under the buckets this decision depends
  // on.  Drain everything and re-run serially — exactly the serial path's
  // decision at this point in the commit order.
  ++stats_.conflicts;
  SVC_METRIC_INC("admission/conflicts");
  if (!committers_.empty()) {
    ++stats_.shard_conflicts;
    SVC_METRIC_INC("admission/shard_conflicts");
  }
  ++stats_.fallbacks;
  SVC_METRIC_INC("admission/fallbacks");
  DrainShards(~uint64_t{0});
  return SerialRerun(request, allocator);
}

std::vector<util::Result<Placement>> AdmissionPipeline::AdmitBatch(
    const std::vector<Request>& requests, const Allocator& allocator,
    bool stop_on_failure, const DecisionFn& on_decision, int window) {
  const size_t n = requests.size();
  if (n == 0) return {};
  assert((config_.deterministic || !stop_on_failure) &&
         "stop_on_failure requires the deterministic commit discipline");
  if (config_.workers <= 1 || n == 1) {
    return AdmitSerial(requests, allocator, stop_on_failure, on_decision);
  }
  SVC_TRACE_SPAN("pipeline/admit_batch");

  BatchCtx ctx(n, static_cast<size_t>(config_.queue_capacity));
  ctx.requests = &requests;
  ctx.allocator = &allocator;
  // Latched once per batch: all stage-clock storage is sized here, so the
  // speculation and sequencing hot loops never allocate for provenance.
  ctx.decisions = obs::DecisionsEnabled();
  if (ctx.decisions) {
    ctx.submit_ns.assign(n, 0);
    ctx.spec_end_ns.assign(n, 0);
    ctx.stages.assign(n, obs::DecisionRecord::StageLatencies{});
  }
  RefreshSnapshot();

  const int nworkers =
      static_cast<int>(std::min<size_t>(config_.workers, n));
  util::Latch latch(nworkers);
  for (int w = 0; w < nworkers; ++w) {
    pool_->Submit([this, &ctx, &latch] {
      SpeculateLoop(ctx);
      latch.CountDown();
    });
  }

  size_t next_submit = 0;
  size_t sequenced = 0;  // commit-front progress, maintained by both loops
  bool aborted = false;

  // Keeps the pending queue fed.  Run-ahead is bounded explicitly by
  // `inflight_cap`, not just the queue capacity: cheap speculations drain
  // the pending queue almost instantly and park in `done`, so without the
  // cap the workers could speculate an arbitrarily long prefix against one
  // aging snapshot and every later proposal would be stale on arrival.
  const size_t inflight_cap =
      static_cast<size_t>(config_.queue_capacity) + nworkers;
  auto feed = [&] {
    while (!aborted && next_submit < n &&
           next_submit - sequenced < inflight_cap) {
      if (ctx.decisions) ctx.submit_ns[next_submit] = NowNs();
      if (!ctx.pending.TryPush(next_submit)) break;
      manager_.BeginProposal();
      ++next_submit;
    }
    SVC_METRIC_GAUGE_SET("pipeline/depth",
                         static_cast<double>(ctx.pending.size()));
  };
  auto pop_done = [&]() -> size_t {
    size_t index = 0;
    const bool got = ctx.done.Pop(index);
    (void)got;
    assert(got && "done queue closed with work outstanding");
    ++stats_.proposed;
    SVC_METRIC_INC("admission/proposed");
    return index;
  };

  feed();
  if (config_.deterministic) {
    // How each classified index resolves (sequencer-only).
    enum : uint8_t {
      kUnclassified = 0,
      kInline = 1,     // decided[] set by the sequencer; callback due
      kDelegated = 2,  // apply in flight; shard worker parks decided[]
      kSilent = 3,     // not attempted (FIFO abort); no callback
    };
    std::vector<uint8_t> route(n, kUnclassified);
    size_t deliver_cursor = 0;

    // In-order decision delivery.  The sequencer may classify (and
    // dispatch) several requests ahead of the oldest in-flight apply;
    // callbacks still fire strictly in request order, waiting on the shard
    // worker only when `block` demands it.
    auto deliver = [&](bool block) {
      while (deliver_cursor < n && route[deliver_cursor] != kUnclassified) {
        const size_t i = deliver_cursor;
        if (route[i] == kDelegated) {
          if (!ctx.apply_ready[i].flag.load(std::memory_order_acquire)) {
            if (!block) return;
            do {
              std::this_thread::yield();
            } while (!ctx.apply_ready[i].flag.load(std::memory_order_acquire));
          }
          util::Result<Placement>& r = *ctx.decided[i];
          if (r.ok()) {
            ++stats_.committed;
            SVC_METRIC_INC("admission/committed");
          } else {
            // The apply half re-validated bit-identical rows and still
            // failed: an allocator bug.  Undo the sequencer-side
            // registration; under FIFO semantics the abort lands here, so
            // a few already-sequenced successors may have committed.
            manager_.AbandonShardCommit(requests[i].id());
            ++stats_.rejected;
            SVC_LOG(Error) << "shard apply failed for request "
                           << requests[i].id() << " via " << allocator.name()
                           << ": " << r.status().message();
            r = util::Result<Placement>(
                util::ErrorCode::kFailedPrecondition,
                std::string(allocator.name()) + ": " + r.status().message());
            if (stop_on_failure) aborted = true;
          }
          manager_.EndProposal();
        }
        if (route[i] != kSilent && on_decision) {
          on_decision(i, *ctx.decided[i]);
        }
        ++deliver_cursor;
      }
    };

    std::vector<char> ready(n, 0);
    size_t commit_cursor = 0;
    while (commit_cursor < n) {
      if (commit_cursor >= next_submit) {
        // The feed stopped on abort before this index was ever speculated
        // (never registered: no EndProposal due).
        assert(aborted);
        ctx.decided[commit_cursor] = NotAttempted();
        route[commit_cursor] = kSilent;
        sequenced = ++commit_cursor;
        deliver(/*block=*/false);
        continue;
      }
      if (!ready[commit_cursor]) {
        ready[pop_done()] = 1;
        feed();
        continue;
      }
      if (aborted) {
        ctx.decided[commit_cursor] = NotAttempted();
        route[commit_cursor] = kSilent;
        manager_.EndProposal();
      } else {
        std::optional<util::Result<Placement>> r = FinalizeDeterministic(
            requests[commit_cursor], allocator,
            std::move(ctx.proposals[commit_cursor]), &ctx, commit_cursor);
        if (r.has_value()) {
          if (stop_on_failure && !r->ok()) aborted = true;
          ctx.decided[commit_cursor] = std::move(*r);
          route[commit_cursor] = kInline;
          manager_.EndProposal();
        } else {
          route[commit_cursor] = kDelegated;  // EndProposal at delivery
        }
      }
      sequenced = ++commit_cursor;
      // Cross-window barrier: windows overlap in speculation (the feeder
      // runs ahead), but the commit plane quiesces — every shard queue
      // drains, pending decisions deliver, and window N+1's speculations
      // get window N's final books.
      if (window > 0 && commit_cursor < n &&
          commit_cursor % static_cast<size_t>(window) == 0) {
        DrainShards(~uint64_t{0});
        deliver(/*block=*/true);
        RefreshSnapshot();
      } else {
        deliver(/*block=*/false);
      }
      feed();
    }
    DrainShards(~uint64_t{0});
    deliver(/*block=*/true);
    assert(deliver_cursor == n);
  } else {
    // Optimistic: commit in completion order; validate-or-retry conflicts.
    size_t finalized = 0;
    while (finalized < n) {
      const size_t idx = pop_done();
      AdmissionProposal& proposal = ctx.proposals[idx];
      const bool fresh = proposal.epoch == manager_.epoch();
      // Optimistic mode runs no shard committers: the sequencer is the
      // only books writer, so decision-record slack reads use the
      // authoritative ledger directly.
      const obs::CommitPath opt_path = ctx.attempts[idx] > 0
                                           ? obs::CommitPath::kOptimisticRetry
                                           : obs::CommitPath::kOptimistic;
      const uint32_t epoch_delta =
          static_cast<uint32_t>(manager_.epoch() - proposal.epoch);
      if (ctx.decisions) {
        ctx.stages[idx].sequence_us =
            MicrosBetween(ctx.spec_end_ns[idx], NowNs());
      }
      std::optional<util::Result<Placement>> r;
      if (proposal.ok) {
        if (!touched_shards_.empty()) {
          const uint64_t shard_bits =
              (uint64_t{1} << (touched_shards_.size() - 1)) - 1;
          ++touched_shards_[static_cast<size_t>(
              std::popcount(proposal.touched_mask & shard_bits))];
        }
        // Validation runs against the authoritative books either way, so a
        // stale epoch alone is not a conflict until the re-check fails.
        const auto start = std::chrono::steady_clock::now();
        util::Result<Placement> committed =
            manager_.CommitProposal((*ctx.requests)[idx],
                                    std::move(proposal));
        const double commit_us = MicrosSince(start);
        SVC_METRIC_HIST("admission/commit_latency_us", commit_us);
        if (committed.ok()) {
          if (ctx.decisions) {
            ctx.stages[idx].apply_us = static_cast<float>(commit_us);
            manager_.RecordAdmissionDecision(
                (*ctx.requests)[idx], allocator.name(), /*admitted=*/true,
                "ok", opt_path, /*shard=*/-1, epoch_delta, manager_.ledger(),
                &proposal.demands, ctx.stages[idx]);
          }
          if (obs::FlightRecorder::Global().enabled()) {
            obs::FlightRecorder::Global().ObserveAdmission(true, commit_us);
          }
          ++stats_.committed;
          SVC_METRIC_INC("admission/committed");
          RefreshSnapshot();
          r = std::move(committed);
        } else if (fresh) {
          if (ctx.decisions) {
            ctx.stages[idx].apply_us = static_cast<float>(commit_us);
            manager_.RecordAdmissionDecision(
                (*ctx.requests)[idx], allocator.name(), /*admitted=*/false,
                ReasonCode(committed.status().code()), opt_path,
                /*shard=*/-1, epoch_delta, manager_.ledger(),
                &proposal.demands, ctx.stages[idx]);
          }
          if (obs::FlightRecorder::Global().enabled()) {
            obs::FlightRecorder::Global().ObserveAdmission(false, commit_us);
          }
          ++stats_.rejected;
          r = util::Result<Placement>(
              util::ErrorCode::kFailedPrecondition,
              std::string(allocator.name()) + ": " +
                  committed.status().message());
        } else {
          ++stats_.conflicts;
          SVC_METRIC_INC("admission/conflicts");
        }
      } else if (fresh || proposal.rejection_monotone) {
        // Fresh rejections are authoritative; stale ones are too for a
        // monotone allocator, because the books only gained tenants since
        // the snapshot (nothing releases mid-batch).
        if (ctx.decisions) {
          manager_.RecordAdmissionDecision(
              (*ctx.requests)[idx], allocator.name(), /*admitted=*/false,
              ReasonCode(proposal.status.code()), opt_path, /*shard=*/-1,
              epoch_delta, manager_.ledger(), nullptr, ctx.stages[idx]);
        }
        if (obs::FlightRecorder::Global().enabled()) {
          obs::FlightRecorder::Global().ObserveAdmission(
              false, ctx.decisions ? ctx.stages[idx].sequence_us : 0.0);
        }
        ++stats_.rejected;
        r = util::Result<Placement>(proposal.status);
      } else {
        // A stale rejection from a greedy allocator: the changed books may
        // have changed the verdict — treat it as a conflict and
        // re-speculate.
        ++stats_.conflicts;
        SVC_METRIC_INC("admission/conflicts");
      }
      if (!r.has_value()) {
        if (ctx.attempts[idx] < config_.max_retries &&
            ctx.pending.TryPush(idx)) {
          ++ctx.attempts[idx];
          ++stats_.retries;
          SVC_METRIC_INC("admission/retries");
          continue;  // still in flight: no EndProposal, not finalized
        }
        // Retry budget exhausted (or the queue is saturated): serial
        // fallback on the commit thread — never worse than the serial path.
        ++stats_.fallbacks;
        SVC_METRIC_INC("admission/fallbacks");
        util::Result<Placement> f = manager_.Admit(
            (*ctx.requests)[idx], allocator, obs::CommitPath::kStaleRerun);
        if (f.ok()) {
          ++stats_.committed;
          SVC_METRIC_INC("admission/committed");
          RefreshSnapshot();
        } else {
          ++stats_.rejected;
        }
        r = std::move(f);
      }
      manager_.EndProposal();
      if (on_decision) on_decision(idx, *r);
      ctx.decided[idx] = std::move(*r);
      sequenced = ++finalized;
      feed();
    }
  }

  ctx.pending.Close();
  latch.Wait();
  SVC_METRIC_GAUGE_SET("pipeline/depth", 0.0);
  if (obs::MetricsEnabled()) {
    for (const std::unique_ptr<ShardCommitter>& c : committers_) {
      obs::Registry::Global().GetGauge(c->depth_gauge).Set(0.0);
    }
  }
  assert(manager_.InFlightProposals() == 0 &&
         "batch drained with proposals still registered");

  std::vector<util::Result<Placement>> results;
  results.reserve(n);
  for (std::optional<util::Result<Placement>>& d : ctx.decided) {
    assert(d.has_value());
    results.push_back(std::move(*d));
  }
  return results;
}

}  // namespace svc::core
