#include "svc/admission_pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace svc::core {

namespace {

util::Result<Placement> NotAttempted() {
  return {util::ErrorCode::kFailedPrecondition,
          "not attempted: earlier FIFO admission failed"};
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// Per-batch shared state.  Workers write only proposals[i] for indices they
// popped from `pending` (handed back through `done`, whose mutex orders the
// write before the commit thread's read), so no slot is ever touched by two
// threads at once.
struct AdmissionPipeline::BatchCtx {
  BatchCtx(size_t n, size_t pending_capacity)
      : pending(pending_capacity), done(n), proposals(n), attempts(n, 0) {}

  const std::vector<Request>* requests = nullptr;
  const Allocator* allocator = nullptr;
  util::BoundedQueue<size_t> pending;  // indices awaiting speculation
  util::BoundedQueue<size_t> done;     // indices with a parked proposal
  std::vector<AdmissionProposal> proposals;
  std::vector<int> attempts;  // optimistic re-speculation count per index
};

AdmissionPipeline::AdmissionPipeline(NetworkManager& manager,
                                     PipelineConfig config)
    : manager_(manager), config_(config) {
  if (config_.workers <= 0) {
    config_.workers = util::ThreadPool::HardwareThreads();
  }
  if (config_.queue_capacity <= 0) {
    config_.queue_capacity = 4 * config_.workers;
  }
  if (config_.max_retries < 0) config_.max_retries = 0;
  if (config_.workers > 1) {
    if (config_.pool != nullptr) {
      pool_ = config_.pool;
    } else {
      owned_pool_ = std::make_unique<util::ThreadPool>(config_.workers);
      pool_ = owned_pool_.get();
    }
  }
}

AdmissionPipeline::~AdmissionPipeline() = default;

std::shared_ptr<const AdmissionSnapshot> AdmissionPipeline::CurrentSnapshot() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void AdmissionPipeline::RefreshSnapshot() {
  if (snapshot_ != nullptr && snapshot_->epoch() == manager_.epoch()) return;
  // Recycle a retired buffer.  Workers obtain references only to the
  // currently published snapshot (under snapshot_mu_), so a pooled entry
  // with use_count() == 1 is unreachable from any worker — and stays that
  // way until we republish it.  Each worker holds at most one snapshot at
  // a time, so a pool of workers + 2 always has a free buffer and
  // steady-state refreshes allocate nothing.
  std::shared_ptr<AdmissionSnapshot> next;
  for (const std::shared_ptr<AdmissionSnapshot>& s : snapshot_pool_) {
    if (s.get() != snapshot_.get() && s.use_count() == 1) {
      next = s;
      break;
    }
  }
  if (next == nullptr) {
    next = std::make_shared<AdmissionSnapshot>(manager_.topo(),
                                               manager_.epsilon());
    if (snapshot_pool_.size() <
        static_cast<size_t>(config_.workers) + 2) {
      snapshot_pool_.push_back(next);
    }
  }
  next->Capture(manager_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = next;
}

void AdmissionPipeline::SpeculateLoop(BatchCtx& ctx) {
  size_t index = 0;
  while (ctx.pending.Pop(index)) {
    const std::shared_ptr<const AdmissionSnapshot> snapshot =
        CurrentSnapshot();
    ctx.proposals[index] =
        manager_.Propose((*ctx.requests)[index], *ctx.allocator, *snapshot);
    ctx.done.Push(index);
  }
}

std::vector<util::Result<Placement>> AdmissionPipeline::AdmitSerial(
    const std::vector<Request>& requests, const Allocator& allocator,
    bool stop_on_failure, const DecisionFn& on_decision) {
  std::vector<util::Result<Placement>> results;
  results.reserve(requests.size());
  bool aborted = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (aborted) {
      results.push_back(NotAttempted());
      continue;
    }
    ++stats_.proposed;
    SVC_METRIC_INC("admission/proposed");
    util::Result<Placement> r = manager_.Admit(requests[i], allocator);
    if (r.ok()) {
      ++stats_.committed;
      SVC_METRIC_INC("admission/committed");
    } else {
      ++stats_.rejected;
    }
    if (on_decision) on_decision(i, r);
    if (stop_on_failure && !r.ok()) aborted = true;
    results.push_back(std::move(r));
  }
  return results;
}

util::Result<Placement> AdmissionPipeline::FinalizeDeterministic(
    const Request& request, const Allocator& allocator,
    AdmissionProposal&& proposal) {
  if (proposal.epoch == manager_.epoch()) {
    if (!proposal.ok) {
      // A rejection against fresh books IS the serial verdict.  Rejections
      // do not bump the epoch, so a run of rejections keeps every later
      // proposal fresh — heavy admission-control pressure pipelines well.
      ++stats_.rejected;
      return proposal.status;
    }
    const auto start = std::chrono::steady_clock::now();
    util::Result<Placement> committed =
        manager_.CommitProposal(request, std::move(proposal));
    SVC_METRIC_HIST("admission/commit_latency_us", MicrosSince(start));
    if (committed.ok()) {
      ++stats_.committed;
      SVC_METRIC_INC("admission/committed");
      RefreshSnapshot();
      return committed;
    }
    // Epoch matched and validation still failed: an allocator bug — the
    // same loud, attributable surface Admit gives it.
    ++stats_.rejected;
    return {util::ErrorCode::kFailedPrecondition,
            std::string(allocator.name()) + ": " +
                committed.status().message()};
  }
  // Stale: the books moved since the speculation read them.  Within a
  // batch the books only gain tenants (rejections and releases don't bump
  // the epoch, and the fault plane refuses while proposals are in flight),
  // so a monotone allocator's rejection against the older, emptier books
  // is already the verdict the serial path would reach — absorb it without
  // touching the authoritative books.  This is what lets an admission-
  // control-pressure workload pipeline: the occasional commit stales the
  // whole in-flight window, but the window's rejections stay decided.
  if (!proposal.ok && allocator.monotone_rejections()) {
    ++stats_.rejected;
    return proposal.status;
  }
  // A stale admit (or a non-monotone allocator's verdict): re-run serially
  // on the authoritative books — exactly the serial path's decision at
  // this point in the commit order.
  ++stats_.conflicts;
  SVC_METRIC_INC("admission/conflicts");
  ++stats_.fallbacks;
  SVC_METRIC_INC("admission/fallbacks");
  util::Result<Placement> r = manager_.Admit(request, allocator);
  if (r.ok()) {
    ++stats_.committed;
    SVC_METRIC_INC("admission/committed");
    RefreshSnapshot();
  } else {
    ++stats_.rejected;
  }
  return r;
}

std::vector<util::Result<Placement>> AdmissionPipeline::AdmitBatch(
    const std::vector<Request>& requests, const Allocator& allocator,
    bool stop_on_failure, const DecisionFn& on_decision) {
  const size_t n = requests.size();
  if (n == 0) return {};
  assert((config_.deterministic || !stop_on_failure) &&
         "stop_on_failure requires the deterministic commit discipline");
  if (config_.workers <= 1 || n == 1) {
    return AdmitSerial(requests, allocator, stop_on_failure, on_decision);
  }
  SVC_TRACE_SPAN("pipeline/admit_batch");

  BatchCtx ctx(n, static_cast<size_t>(config_.queue_capacity));
  ctx.requests = &requests;
  ctx.allocator = &allocator;
  RefreshSnapshot();

  const int nworkers =
      static_cast<int>(std::min<size_t>(config_.workers, n));
  util::Latch latch(nworkers);
  for (int w = 0; w < nworkers; ++w) {
    pool_->Submit([this, &ctx, &latch] {
      SpeculateLoop(ctx);
      latch.CountDown();
    });
  }

  std::vector<std::optional<util::Result<Placement>>> decided(n);
  size_t next_submit = 0;
  bool aborted = false;

  // Keeps the pending queue fed (bounded by its capacity: natural
  // backpressure when the workers fall behind the feeder).
  auto feed = [&] {
    while (!aborted && next_submit < n && ctx.pending.TryPush(next_submit)) {
      manager_.BeginProposal();
      ++next_submit;
    }
    SVC_METRIC_GAUGE_SET("pipeline/depth",
                         static_cast<double>(ctx.pending.size()));
  };
  auto pop_done = [&]() -> size_t {
    size_t index = 0;
    const bool got = ctx.done.Pop(index);
    (void)got;
    assert(got && "done queue closed with work outstanding");
    ++stats_.proposed;
    SVC_METRIC_INC("admission/proposed");
    return index;
  };

  feed();
  if (config_.deterministic) {
    std::vector<char> ready(n, 0);
    size_t commit_cursor = 0;
    while (commit_cursor < n) {
      if (commit_cursor >= next_submit) {
        // The feed stopped on abort before this index was ever speculated.
        assert(aborted);
        decided[commit_cursor] = NotAttempted();
        ++commit_cursor;
        continue;
      }
      if (!ready[commit_cursor]) {
        ready[pop_done()] = 1;
        feed();
        continue;
      }
      util::Result<Placement> r =
          aborted ? NotAttempted()
                  : FinalizeDeterministic(
                        requests[commit_cursor], allocator,
                        std::move(ctx.proposals[commit_cursor]));
      manager_.EndProposal();
      if (!aborted) {
        if (on_decision) on_decision(commit_cursor, r);
        if (stop_on_failure && !r.ok()) aborted = true;
      }
      decided[commit_cursor] = std::move(r);
      ++commit_cursor;
      feed();
    }
  } else {
    // Optimistic: commit in completion order; validate-or-retry conflicts.
    size_t finalized = 0;
    while (finalized < n) {
      const size_t idx = pop_done();
      AdmissionProposal& proposal = ctx.proposals[idx];
      const bool fresh = proposal.epoch == manager_.epoch();
      std::optional<util::Result<Placement>> r;
      if (proposal.ok) {
        // Validation runs against the authoritative books either way, so a
        // stale epoch alone is not a conflict until the re-check fails.
        const auto start = std::chrono::steady_clock::now();
        util::Result<Placement> committed =
            manager_.CommitProposal((*ctx.requests)[idx],
                                    std::move(proposal));
        SVC_METRIC_HIST("admission/commit_latency_us", MicrosSince(start));
        if (committed.ok()) {
          ++stats_.committed;
          SVC_METRIC_INC("admission/committed");
          RefreshSnapshot();
          r = std::move(committed);
        } else if (fresh) {
          ++stats_.rejected;
          r = util::Result<Placement>(
              util::ErrorCode::kFailedPrecondition,
              std::string(allocator.name()) + ": " +
                  committed.status().message());
        } else {
          ++stats_.conflicts;
          SVC_METRIC_INC("admission/conflicts");
        }
      } else if (fresh || allocator.monotone_rejections()) {
        // Fresh rejections are authoritative; stale ones are too for a
        // monotone allocator, because the books only gained tenants since
        // the snapshot (nothing releases mid-batch).
        ++stats_.rejected;
        r = util::Result<Placement>(proposal.status);
      } else {
        // A stale rejection from a greedy allocator: the changed books may
        // have changed the verdict — treat it as a conflict and
        // re-speculate.
        ++stats_.conflicts;
        SVC_METRIC_INC("admission/conflicts");
      }
      if (!r.has_value()) {
        if (ctx.attempts[idx] < config_.max_retries &&
            ctx.pending.TryPush(idx)) {
          ++ctx.attempts[idx];
          ++stats_.retries;
          SVC_METRIC_INC("admission/retries");
          continue;  // still in flight: no EndProposal, not finalized
        }
        // Retry budget exhausted (or the queue is saturated): serial
        // fallback on the commit thread — never worse than the serial path.
        ++stats_.fallbacks;
        SVC_METRIC_INC("admission/fallbacks");
        util::Result<Placement> f =
            manager_.Admit((*ctx.requests)[idx], allocator);
        if (f.ok()) {
          ++stats_.committed;
          SVC_METRIC_INC("admission/committed");
          RefreshSnapshot();
        } else {
          ++stats_.rejected;
        }
        r = std::move(f);
      }
      manager_.EndProposal();
      if (on_decision) on_decision(idx, *r);
      decided[idx] = std::move(*r);
      ++finalized;
      feed();
    }
  }

  ctx.pending.Close();
  latch.Wait();
  SVC_METRIC_GAUGE_SET("pipeline/depth", 0.0);
  assert(manager_.InFlightProposals() == 0 &&
         "batch drained with proposals still registered");

  std::vector<util::Result<Placement>> results;
  results.reserve(n);
  for (std::optional<util::Result<Placement>>& d : decided) {
    assert(d.has_value());
    results.push_back(std::move(*d));
  }
  return results;
}

}  // namespace svc::core
