#include "svc/oktopus_greedy.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "obs/trace.h"

namespace svc::core {
namespace {

// Largest a in [0, upper] with min(a, n-a) * b fitting the link's residual
// deterministic headroom, or -1 if none (a = 0 always fits).
int LargestFeasibleCount(const net::LinkLedger& ledger, topology::VertexId v,
                         int upper, int n, double bandwidth) {
  for (int a = upper; a >= 0; --a) {
    const double reserved = std::min(a, n - a) * bandwidth;
    if (ledger.ValidWith(v, 0, 0, reserved)) return a;
  }
  return -1;
}

}  // namespace

util::Result<Placement> OktopusGreedyAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  SVC_TRACE_SPAN("alloc/oktopus_greedy");
  if (!request.deterministic() || !request.homogeneous()) {
    return {util::ErrorCode::kInvalidArgument,
            "oktopus-greedy supports deterministic <N, B> requests only"};
  }
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  const double bandwidth = request.demand(0).mean;
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  std::vector<int> count(topo.num_vertices(), 0);

  topology::VertexId host = topology::kNoVertex;
  for (int level = 0; level <= topo.height() && host == topology::kNoVertex;
       ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      int available;
      if (topo.is_machine(v)) {
        available = std::min(n, slots.free_slots(v));
      } else {
        available = 0;
        for (topology::VertexId child : topo.children(v)) {
          available += count[child];
        }
        available = std::min(available, n);
      }
      if (v == topo.root()) {
        count[v] = available;
      } else {
        count[v] =
            std::max(0, LargestFeasibleCount(ledger, v, available, n,
                                             bandwidth));
      }
      if (count[v] >= n) {
        host = v;
        break;
      }
    }
  }
  if (host == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "greedy counts never reached N (note: the greedy is incomplete)"};
  }

  // Greedy packing with per-child repair: give each child as many VMs as
  // its count allows, shrunk until its uplink accepts the assignment.
  Placement placement;
  placement.subtree_root = host;
  placement.vm_machine.reserve(n);
  double worst_occupancy = 0;
  std::vector<std::pair<topology::VertexId, int>> stack{{host, n}};
  while (!stack.empty()) {
    const auto [v, x] = stack.back();
    stack.pop_back();
    if (x == 0) continue;
    if (topo.is_machine(v)) {
      for (int k = 0; k < x; ++k) placement.vm_machine.push_back(v);
      continue;
    }
    int remaining = x;
    for (topology::VertexId child : topo.children(v)) {
      if (remaining == 0) break;
      int give = std::min(count[child], remaining);
      // Repair: the count was computed for the *maximum* count; a smaller
      // assignment can violate min(a, N-a)*B (non-monotone).  Shrink until
      // the child's uplink accepts it.
      give = LargestFeasibleCount(ledger, child, give, n, bandwidth);
      if (give <= 0) continue;
      stack.emplace_back(child, give);
      worst_occupancy = std::max(
          worst_occupancy,
          ledger.OccupancyWith(child, 0, 0, std::min(give, n - give) *
                                                bandwidth));
      remaining -= give;
    }
    if (remaining != 0) {
      return {util::ErrorCode::kInfeasible,
              "greedy packing failed after repair (known Oktopus "
              "incompleteness); use the DP allocator"};
    }
  }
  assert(static_cast<int>(placement.vm_machine.size()) == n);
  placement.max_occupancy = worst_occupancy;
  return placement;
}

}  // namespace svc::core
