// Allocation for homogeneous requests: the paper's Algorithm 1 and the
// adapted-TIVC baseline.
//
// Both walk the topology bottom-up (machines first) computing, for every
// vertex v, the *allocable VM set*: the numbers of VMs that can be placed in
// the subtree T_v while satisfying condition (4) on every link of T_v and on
// v's uplink.  A vertex whose allocable set contains N hosts the request;
// the first level at which such a vertex exists gives the most-localized
// ("lowest subtree") allocation.
//
// The difference between the two modes is what they remember per count:
//
//   * optimize_occupancy = true  (Algorithm 1, "svc-dp"): for each count the
//     DP keeps the child split minimizing the maximum bandwidth-occupancy
//     ratio O_L over the subtree's links (recurrences (11)/(12)), so the
//     returned placement is the min-max-optimal one within the chosen
//     subtree.
//   * optimize_occupancy = false ("tivc-adapted"): the plain feasibility
//     union of TIVC — the first split realizing a count is kept, mirroring
//     TIVC's indifference between valid allocations (the suboptimality the
//     paper's Fig. 3 illustrates).
//
// Complexity O(|V| * Delta * N^2): each edge contributes one O(N^2) table
// combination.  Deterministic requests (sigma = 0) run through the same
// code and reproduce Oktopus-style virtual-cluster allocation.
#pragma once

#include <string>

#include "svc/allocator.h"

namespace svc::util {
class ThreadPool;
}  // namespace svc::util

namespace svc::core {

struct HomogeneousSearchOptions {
  // Algorithm 1's min-max occupancy optimization (see above).
  bool optimize_occupancy = true;
  // Stop at the lowest feasible level (paper's locality rule).  When false
  // the search continues to the root and returns the global min-max
  // placement regardless of level — the ablation DESIGN.md calls out.
  bool lowest_subtree_first = true;
  // Optional level-parallel subtree search: vertices within a topology
  // level are independent given their children's DP rows, so their
  // per-vertex work fans across this pool (per-thread scratch arenas; the
  // best-subtree reduction stays serial in level order, so placements are
  // bit-identical to the serial path).  The caller keeps ownership and the
  // pool must outlive the allocator's Allocate() calls.  Allocate() must
  // NOT itself run on this pool: it joins the level internally, and a
  // fully-busy pool would deadlock.  nullptr = serial (the default).
  util::ThreadPool* pool = nullptr;
  // Minimum vertices in a level before the pool is used; smaller levels
  // run serially (fan-out overhead would dominate).
  int min_parallel_vertices = 8;
};

class HomogeneousSearchAllocator : public Allocator {
 public:
  HomogeneousSearchAllocator(HomogeneousSearchOptions options,
                             std::string name)
      : options_(options), name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  util::Result<Placement> Allocate(const Request& request,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots) const override;

  // The bottom-up DP is a complete search: a rejection means no vertex's
  // allocable set contains N, and condition-(4) slack only tightens as
  // tenants are added, so the rejection holds against any fuller books.
  bool monotone_rejections() const override { return true; }

  // The search scans levels bottom-up and vertices in id order, keeping the
  // first strict improvement of the min-max occupancy score; occupancy only
  // rises as tenants are added, so both the lowest feasible level and the
  // within-level argmin are stable under load added outside the chosen
  // subtree's links (which the pipeline's shard-freshness check covers).
  bool monotone_placements() const override { return true; }

 private:
  HomogeneousSearchOptions options_;
  std::string name_;
};

// Algorithm 1: lowest subtree + min-max occupancy.
class HomogeneousDpAllocator : public HomogeneousSearchAllocator {
 public:
  HomogeneousDpAllocator()
      : HomogeneousSearchAllocator({.optimize_occupancy = true}, "svc-dp") {}
};

// The paper's baseline: TIVC's search with condition (4) substituted in,
// no occupancy optimization.
class TivcAdaptedAllocator : public HomogeneousSearchAllocator {
 public:
  TivcAdaptedAllocator()
      : HomogeneousSearchAllocator({.optimize_occupancy = false},
                                   "tivc-adapted") {}
};

// Deterministic virtual clusters <N, B> (Oktopus).  Behaviourally the
// feasibility search above restricted to sigma = 0 requests; kept as its own
// type so simulation configs read naturally.
class OktopusAllocator : public HomogeneousSearchAllocator {
 public:
  OktopusAllocator()
      : HomogeneousSearchAllocator({.optimize_occupancy = false}, "oktopus") {}
};

}  // namespace svc::core
