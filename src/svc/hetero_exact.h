// Exact allocation for heterogeneous SVC requests (paper Section V-B,
// "Dynamic programming based allocation algorithm").
//
// The homogeneous DP generalizes by tracking *which* VMs a subtree holds,
// not just how many: per vertex the allocable VM set becomes a set of VM
// subsets, and the recurrence enumerates submasks.  The cost is exponential
// — O(|V| * Delta * 3^N) with bitmask subsets — so the paper (and this
// implementation) restricts it to small N.  It serves three roles here:
//
//   1. the paper's exact algorithm for small requests,
//   2. a brute-force oracle for property-testing the heuristic and the
//      homogeneous DP (identical per-VM distributions must agree),
//   3. the worked examples.
//
// Requests with N > kMaxExactVms are rejected with kInvalidArgument.
#pragma once

#include "svc/allocator.h"

namespace svc::core {

inline constexpr int kMaxExactVms = 16;

class HeteroExactAllocator : public Allocator {
 public:
  // `optimize_occupancy` mirrors the homogeneous search: true = min-max
  // occupancy (the paper's extension), false = first feasible subset.
  explicit HeteroExactAllocator(bool optimize_occupancy = true)
      : optimize_(optimize_occupancy) {}

  std::string_view name() const override { return "hetero-exact"; }

  util::Result<Placement> Allocate(const Request& request,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots) const override;

  // Exact subset enumeration: a rejection proves no feasible placement
  // exists, and fuller books only shrink the feasible set.  (The N-cap
  // kInvalidArgument rejection is load-independent, so it trivially holds.)
  bool monotone_rejections() const override { return true; }

 private:
  bool optimize_;
};

}  // namespace svc::core
