#include "svc/demand_profile.h"

#include <cassert>

namespace svc::core {

stats::Normal SplitDemand(const stats::Normal& below,
                          const stats::Normal& above) {
  // A side with no VMs contributes the degenerate N(0, 0); min(0, X) for a
  // nonnegative-demand aggregate is 0 — physically, no traffic crosses a
  // link with all of the request's VMs on one side.
  if ((below.mean == 0 && below.variance == 0) ||
      (above.mean == 0 && above.variance == 0)) {
    return stats::Normal{0.0, 0.0};
  }
  stats::Normal result = stats::MinOfNormals(below, above);
  // Bandwidth demands are nonnegative; the normal model's small negative
  // tail (e.g. min against an all-zero-mean side) is truncated to 0 for
  // the ledger's books.
  if (result.mean < 0) result.mean = 0;
  return result;
}

stats::Normal SplitDemandFromBelow(const Request& request, double below_mean,
                                   double below_variance) {
  // The above-side aggregate is computed by subtraction, so when the below
  // side holds (nearly) all of the request the residues are floating-point
  // noise — potentially large in absolute terms when the totals are large
  // (variances reach ~1e8 at paper scale).  Clamp relative to the totals.
  const double mean_eps = 1e-9 * (1.0 + request.total_mean());
  const double var_eps = 1e-9 * (1.0 + request.total_variance());
  auto clamp = [](double x, double eps) { return x < eps ? 0.0 : x; };
  const stats::Normal below{clamp(below_mean, mean_eps),
                            clamp(below_variance, var_eps)};
  const stats::Normal above{
      clamp(request.total_mean() - below_mean, mean_eps),
      clamp(request.total_variance() - below_variance, var_eps)};
  return SplitDemand(below, above);
}

void HomogeneousProfile::Reset(const Request& request) {
  assert(request.homogeneous());
  n_ = request.n();
  deterministic_ = request.deterministic();
  const stats::Normal& per_vm = request.demand(0);
  table_.resize(n_ + 1);
  mean_add_.resize(n_ + 1);
  var_add_.resize(n_ + 1);
  det_add_.resize(n_ + 1);
  for (int m = 0; m <= n_; ++m) {
    const stats::Normal below{per_vm.mean * m, per_vm.variance * m};
    const stats::Normal above{per_vm.mean * (n_ - m),
                              per_vm.variance * (n_ - m)};
    table_[m] = SplitDemand(below, above);
    mean_add_[m] = MeanAdd(m);
    var_add_[m] = VarAdd(m);
    det_add_[m] = DetAdd(m);
  }
  // Verify (not assume) the unimodal min(m, N-m) shape of the moments at
  // double precision: rise_end_ is the longest jointly non-decreasing
  // prefix, fall_begin_ the longest jointly non-increasing suffix.  For a
  // well-behaved profile both sit at ~n/2; any numerical wiggle simply
  // shrinks the segments the frontier search may binary-search over.
  auto non_decreasing_at = [&](int m) {
    return mean_add_[m] >= mean_add_[m - 1] &&
           var_add_[m] >= var_add_[m - 1] && det_add_[m] >= det_add_[m - 1];
  };
  auto non_increasing_at = [&](int m) {
    return mean_add_[m] <= mean_add_[m - 1] &&
           var_add_[m] <= var_add_[m - 1] && det_add_[m] <= det_add_[m - 1];
  };
  rise_end_ = 0;
  while (rise_end_ < n_ && non_decreasing_at(rise_end_ + 1)) ++rise_end_;
  fall_begin_ = n_;
  while (fall_begin_ > 0 && non_increasing_at(fall_begin_)) --fall_begin_;
}

}  // namespace svc::core
