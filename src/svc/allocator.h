// VM-allocator interface.
//
// An allocator maps a tenant request onto empty VM slots such that every
// physical link still satisfies the probabilistic guarantee (condition 4).
// Allocators are stateless with respect to the datacenter: they read the
// LinkLedger and SlotMap and return a Placement; committing the placement
// (slots + per-link demand records) is the NetworkManager's job, which keeps
// admission atomic and lets callers evaluate placements without mutating
// shared state.
#pragma once

#include <string_view>

#include "net/link_ledger.h"
#include "svc/placement.h"
#include "svc/request.h"
#include "svc/slot_map.h"
#include "util/result.h"

namespace svc::core {

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Short stable identifier ("svc-dp", "tivc-adapted", ...), used in bench
  // output and logs.
  virtual std::string_view name() const = 0;

  // Finds a valid placement or an error:
  //   kInvalidArgument — request shape unsupported by this allocator
  //   kCapacity        — fewer free slots than requested VMs
  //   kInfeasible      — slots exist but no placement satisfies (4)
  virtual util::Result<Placement> Allocate(const Request& request,
                                           const net::LinkLedger& ledger,
                                           const SlotMap& slots) const = 0;

  // True when this allocator's rejections are monotone in datacenter load:
  // if Allocate rejects a request against some books, it also rejects it
  // against any superset of those books (same tenants plus more).  Complete
  // searches have this property for free — adding load only shrinks the
  // feasible set, so an empty feasible set stays empty.  Greedy heuristics
  // generally do NOT: a fuller fabric changes the greedy path, which can
  // (pathologically) rescue a request the emptier fabric rejected.
  //
  // The concurrent admission pipeline uses this to absorb speculative
  // rejections computed against a stale snapshot without a serial re-run:
  // within one batch the books only gain tenants, so a monotone rejection
  // against older books is already the authoritative verdict.  Declaring
  // true for a non-monotone allocator silently breaks the pipeline's
  // serial-equivalence guarantee; when in doubt leave the default.
  virtual bool monotone_rejections() const { return false; }

  // True when this allocator's CHOSEN placement is stable under added load
  // outside the links it read for that choice: the selection is first-best
  // (ties keep the earliest candidate in a fixed scan order) over scores
  // that are monotone non-improving in datacenter load, so a candidate that
  // lost at speculation time can only lose harder once more tenants commit,
  // and the winner — whose own evaluation the pipeline verifies is fresh —
  // stays the winner.  The sharded commit scheduler uses this for its
  // shard-freshness fast path (docs/CONCURRENCY.md): a proposal whose
  // touched buckets (plus the core stripe) are unchanged commits without a
  // serial re-run even though other shards moved on.  The same caveat as
  // monotone_rejections applies: declaring this for an allocator without
  // the property silently breaks serial equivalence.
  virtual bool monotone_placements() const { return false; }
};

}  // namespace svc::core
