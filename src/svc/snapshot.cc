#include "svc/snapshot.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace svc::core {
namespace {

constexpr char kMagic[] = "svc-snapshot v1";

void WriteTenant(std::ostream& out, const Request& request,
                 const Placement& placement) {
  out << "tenant " << request.id() << " ";
  if (request.homogeneous()) {
    out << "homogeneous " << request.n() << " " << request.demand(0).mean
        << " " << request.demand(0).variance << "\n";
  } else {
    out << "heterogeneous " << request.n();
    for (int i = 0; i < request.n(); ++i) {
      out << " " << request.demand(i).mean << ":"
          << request.demand(i).variance;
    }
    out << "\n";
  }
  out << "place";
  for (topology::VertexId machine : placement.vm_machine) {
    out << " " << machine;
  }
  out << "\n";
}

}  // namespace

util::Status SaveSnapshot(const NetworkManager& manager, std::ostream& out) {
  if (manager.InFlightProposals() != 0) {
    return {util::ErrorCode::kFailedPrecondition,
            "snapshot save requires a quiesced admission pipeline (" +
                std::to_string(manager.InFlightProposals()) +
                " proposals in flight)"};
  }
  out.precision(17);
  out << kMagic << "\n";
  out << "epsilon " << manager.epsilon() << "\n";
  // Deterministic order for reproducible snapshots.
  std::map<RequestId, std::pair<const Request*, const Placement*>> ordered;
  manager.ForEachLive([&](const Request& request, const Placement& placement) {
    ordered.emplace(request.id(), std::make_pair(&request, &placement));
  });
  out << "tenants " << ordered.size() << "\n";
  for (const auto& [id, pair] : ordered) {
    WriteTenant(out, *pair.first, *pair.second);
  }
  return util::Status::Ok();
}

util::Status RestoreSnapshot(std::istream& in, NetworkManager& manager) {
  if (manager.InFlightProposals() != 0) {
    return {util::ErrorCode::kFailedPrecondition,
            "snapshot restore requires a quiesced admission pipeline (" +
                std::to_string(manager.InFlightProposals()) +
                " proposals in flight)"};
  }
  if (manager.live_count() != 0) {
    return {util::ErrorCode::kFailedPrecondition,
            "restore target must have no live tenants"};
  }
  auto fail = [&](const std::string& message) {
    // Roll back everything restored so far.
    std::vector<RequestId> admitted;
    manager.ForEachLive([&](const Request& request, const Placement&) {
      admitted.push_back(request.id());
    });
    for (RequestId id : admitted) manager.Release(id);
    return util::Status{util::ErrorCode::kInvalidArgument, message};
  };

  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return fail("not a snapshot (bad magic line)");
  }
  std::string keyword;
  double epsilon = 0;
  size_t tenants = 0;
  if (!(in >> keyword >> epsilon) || keyword != "epsilon") {
    return fail("bad epsilon line");
  }
  if (!(in >> keyword >> tenants) || keyword != "tenants") {
    return fail("bad tenants line");
  }

  for (size_t t = 0; t < tenants; ++t) {
    int64_t id = 0;
    std::string kind;
    int n = 0;
    if (!(in >> keyword >> id >> kind >> n) || keyword != "tenant" || n < 1) {
      return fail("bad tenant header at index " + std::to_string(t));
    }
    // Bound n before it sizes any container: a corrupt header must not be
    // able to drive a multi-gigabyte resize (no datacenter can host more
    // VMs than it has slots anyway).
    if (n > manager.topo().total_slots()) {
      return fail("tenant " + std::to_string(id) + " claims " +
                  std::to_string(n) + " VMs but the datacenter has " +
                  std::to_string(manager.topo().total_slots()) + " slots");
    }
    std::unique_ptr<Request> request;
    if (kind == "homogeneous") {
      double mean = 0, variance = 0;
      if (!(in >> mean >> variance) || !std::isfinite(mean) ||
          !std::isfinite(variance) || mean < 0 || variance < 0) {
        return fail("bad homogeneous moments for tenant " +
                    std::to_string(id));
      }
      request = std::make_unique<Request>(
          Request::Homogeneous(id, n, mean, std::sqrt(variance)));
    } else if (kind == "heterogeneous") {
      std::vector<stats::Normal> demands;
      for (int i = 0; i < n; ++i) {
        std::string pair_text;
        if (!(in >> pair_text)) {
          return fail("missing demand for tenant " + std::to_string(id));
        }
        const auto parts = util::Split(pair_text, ':');
        if (parts.size() != 2) {
          return fail("bad demand '" + pair_text + "'");
        }
        try {
          const double mean = std::stod(parts[0]);
          const double variance = std::stod(parts[1]);
          // std::stod accepts "nan"/"inf", and NaN slips through ordering
          // checks — require finite non-negative moments explicitly.
          if (!std::isfinite(mean) || !std::isfinite(variance) || mean < 0 ||
              variance < 0) {
            return fail("non-finite or negative demand '" + pair_text + "'");
          }
          demands.push_back({mean, variance});
        } catch (const std::exception&) {
          return fail("unparsable demand '" + pair_text + "'");
        }
      }
      request = std::make_unique<Request>(
          Request::Heterogeneous(id, std::move(demands)));
    } else {
      return fail("unknown tenant kind '" + kind + "'");
    }

    if (!(in >> keyword) || keyword != "place") {
      return fail("missing placement for tenant " + std::to_string(id));
    }
    Placement placement;
    placement.vm_machine.resize(n);
    for (int i = 0; i < n; ++i) {
      if (!(in >> placement.vm_machine[i])) {
        return fail("short placement for tenant " + std::to_string(id));
      }
    }
    // Recompute the locality witness.
    const topology::Topology& topo = manager.topo();
    topology::VertexId root_of_all = placement.vm_machine[0];
    for (topology::VertexId machine : placement.vm_machine) {
      if (machine < 0 || machine >= topo.num_vertices() ||
          !topo.is_machine(machine)) {
        return fail("placement of tenant " + std::to_string(id) +
                    " names a non-machine vertex (topology mismatch?)");
      }
      // Restoring onto a failed element would re-strand the tenant the
      // moment the datacenter resumes; refuse up front with a clear
      // message (AdmitPlacement would reject it too, via the 0 free
      // slots, but with a generic capacity error).
      if (!manager.slots().machine_up(machine)) {
        return fail("placement of tenant " + std::to_string(id) +
                    " lands on currently-failed machine " +
                    std::to_string(machine));
      }
      while (!topo.IsInSubtree(machine, root_of_all)) {
        root_of_all = topo.parent(root_of_all);
      }
    }
    placement.subtree_root = root_of_all;

    auto admitted = manager.AdmitPlacement(*request, std::move(placement));
    if (!admitted) {
      return fail("tenant " + std::to_string(id) +
                  " does not fit the target datacenter: " +
                  admitted.status().ToText());
    }
  }
  return util::Status::Ok();
}

util::Status SaveSnapshotToFile(const NetworkManager& manager,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return {util::ErrorCode::kInvalidArgument, "cannot open " + path};
  }
  if (util::Status saved = SaveSnapshot(manager, out); !saved.ok()) {
    return saved;
  }
  out.flush();
  if (!out) {
    return {util::ErrorCode::kInvalidArgument, "write failed: " + path};
  }
  return util::Status::Ok();
}

util::Status RestoreSnapshotFromFile(const std::string& path,
                                     NetworkManager& manager) {
  std::ifstream in(path);
  if (!in) {
    return {util::ErrorCode::kNotFound, "cannot open " + path};
  }
  return RestoreSnapshot(in, manager);
}

}  // namespace svc::core
