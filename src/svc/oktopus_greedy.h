// Faithful reimplementation of Oktopus's virtual-cluster allocation
// heuristic (Ballani et al., SIGCOMM 2011, Section 4.1), as the literature
// baseline the paper compares abstractions against.
//
// For a deterministic request <N, B> the algorithm computes, bottom-up, the
// *maximum* number of VMs each subtree can host:
//
//   machine m:  count = max { a <= free slots : min(a, N-a)*B <= residual }
//   switch v:   count = max { a <= sum(children counts) :
//                             min(a, N-a)*B <= residual(uplink) }
//
// and allocates into the first (lowest) subtree whose count reaches N,
// greedily packing children left to right.
//
// Two well-known consequences of tracking only the maximum count (instead
// of the full allocable set, as TIVC and this repo's DP do):
//   * incompleteness — min(a, N-a) is not monotone in a, so a subtree may
//     be able to host N VMs even though the greedy count says otherwise,
//     and a greedy child assignment may need repair (we shrink the
//     assignment until the child's uplink constraint holds, the standard
//     fix);
//   * no occupancy objective — like TIVC it is indifferent among valid
//     placements.
//
// Only deterministic requests are supported (Oktopus predates stochastic
// demands); stochastic requests get kInvalidArgument.  The DP-based
// `OktopusAllocator` (complete feasibility search) remains the default VC
// baseline in the benches; this class exists for fidelity comparisons.
#pragma once

#include "svc/allocator.h"

namespace svc::core {

class OktopusGreedyAllocator : public Allocator {
 public:
  std::string_view name() const override { return "oktopus-greedy"; }

  util::Result<Placement> Allocate(const Request& request,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots) const override;
};

}  // namespace svc::core
