#include "svc/request.h"

#include <cassert>
#include <sstream>

namespace svc::core {

Request::Request(RequestId id, int n, std::vector<stats::Normal> demands)
    : id_(id), n_(n), demands_(std::move(demands)) {
  assert(n_ >= 1);
  assert(demands_.size() == 1 || static_cast<int>(demands_.size()) == n_);
  deterministic_ = true;
  for (const auto& d : demands_) {
    if (d.variance > 0) deterministic_ = false;
  }
  if (demands_.size() == 1) {
    total_mean_ = demands_[0].mean * n_;
    total_variance_ = demands_[0].variance * n_;
  } else {
    for (const auto& d : demands_) {
      total_mean_ += d.mean;
      total_variance_ += d.variance;
    }
  }
}

Request Request::Homogeneous(RequestId id, int n, double mean,
                             double stddev) {
  return Request(id, n, {stats::Normal{mean, stddev * stddev}});
}

Request Request::Deterministic(RequestId id, int n, double bandwidth) {
  return Request(id, n, {stats::Normal{bandwidth, 0.0}});
}

Request Request::Heterogeneous(RequestId id,
                               std::vector<stats::Normal> demands) {
  const int n = static_cast<int>(demands.size());
  return Request(id, n, std::move(demands));
}

util::Status Request::Validate() const {
  if (n_ < 1) {
    return {util::ErrorCode::kInvalidArgument, "request needs at least 1 VM"};
  }
  for (const auto& d : demands_) {
    if (d.mean < 0 || d.variance < 0) {
      return {util::ErrorCode::kInvalidArgument,
              "bandwidth moments must be non-negative"};
    }
  }
  return util::Status::Ok();
}

std::string Request::Describe() const {
  std::ostringstream out;
  out << "request " << id_ << " <N=" << n_;
  if (homogeneous()) {
    out << ", mu=" << demands_[0].mean
        << ", sigma=" << demands_[0].stddev() << ">";
  } else {
    out << ", heterogeneous>";
  }
  if (deterministic_) out << " (deterministic)";
  return out.str();
}

}  // namespace svc::core
