// Allocator construction by name — the one mapping from config/CLI strings
// to allocator instances, shared by the interpreter, the scenario layer,
// and the daemon so a name means the same algorithm everywhere.
//
// Known names:
//   svc-dp            the paper's Algorithm 1 (lowest subtree + min-max)
//   tivc-adapted      lowest subtree, no occupancy optimization
//   oktopus           deterministic Oktopus-style VC allocator
//   global-minmax     min-max over the whole tree, locality rule disabled
//   hetero-exact      exact heterogeneous placement (exponential, tiny jobs)
//   hetero-heuristic  substring heterogeneous heuristic
//   first-fit         plain first-fit baseline
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "svc/allocator.h"

namespace svc::core {

// Builds the named allocator; nullptr for unknown names.
std::unique_ptr<Allocator> MakeAllocatorByName(const std::string& name);

// Every name MakeAllocatorByName accepts, in display order.
const std::vector<std::string>& KnownAllocatorNames();

// "name | name | ..." for usage strings and error messages.
std::string KnownAllocatorNamesText();

}  // namespace svc::core
