#include "svc/first_fit.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "svc/demand_profile.h"

namespace svc::core {
namespace {

// Tentative per-link below-the-link aggregate for the request being placed.
struct BelowAggregate {
  double mean = 0;
  double variance = 0;
};

}  // namespace

util::Result<Placement> FirstFitAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  SVC_TRACE_SPAN("alloc/first_fit");
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  const bool det = request.deterministic();

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    return request.demand(lhs).Quantile(0.95) <
           request.demand(rhs).Quantile(0.95);
  });

  // Link id -> aggregate of this request's VMs placed below the link.
  std::unordered_map<topology::VertexId, BelowAggregate> below;
  std::vector<int> used_slots(topo.num_vertices(), 0);
  Placement placement;
  placement.vm_machine.assign(n, topology::kNoVertex);

  // Validity of link `v` treating the currently-below set against all
  // remaining VMs (placed elsewhere or not yet placed) as the other side.
  auto link_ok = [&](topology::VertexId v, const BelowAggregate& agg) {
    const stats::Normal demand =
        SplitDemandFromBelow(request, agg.mean, agg.variance);
    if (det) return ledger.ValidWith(v, 0, 0, demand.mean);
    return ledger.ValidWith(v, demand.mean, demand.variance, 0);
  };

  const auto& machines = topo.machines();
  size_t cursor = 0;
  for (int pos = 0; pos < n; ++pos) {
    const int vm = order[pos];
    const stats::Normal& d = request.demand(vm);
    bool placed = false;
    for (; cursor < machines.size(); ++cursor) {
      const topology::VertexId machine = machines[cursor];
      if (used_slots[machine] >= slots.free_slots(machine)) continue;
      // Tentatively add this VM below every link on machine -> root and
      // check each; commit only if all pass.
      bool ok = true;
      for (topology::VertexId link = machine; link != topo.root();
           link = topo.parent(link)) {
        BelowAggregate candidate = below[link];
        candidate.mean += d.mean;
        candidate.variance += d.variance;
        if (!link_ok(link, candidate)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;  // first-fit: move to the next machine
      for (topology::VertexId link = machine; link != topo.root();
           link = topo.parent(link)) {
        below[link].mean += d.mean;
        below[link].variance += d.variance;
      }
      ++used_slots[machine];
      placement.vm_machine[vm] = machine;
      placed = true;
      break;
    }
    if (!placed) {
      return {util::ErrorCode::kInfeasible,
              "first-fit exhausted all machines at VM " +
                  std::to_string(pos + 1) + "/" + std::to_string(n)};
    }
  }

  // Whole-placement re-validation: the incremental checks assumed the
  // not-yet-placed VMs were on the far side of every link, which is not
  // the final geometry.  OccupancyWith fuses the validity check (+inf on a
  // condition-(4) violation), so one call covers both.
  double max_occupancy = 0;
  for (const auto& [link, agg] : below) {
    const stats::Normal demand =
        SplitDemandFromBelow(request, agg.mean, agg.variance);
    const double mean = det ? 0.0 : demand.mean;
    const double var = det ? 0.0 : demand.variance;
    const double damount = det ? demand.mean : 0.0;
    const double occupancy = ledger.OccupancyWith(link, mean, var, damount);
    if (occupancy == std::numeric_limits<double>::infinity()) {
      return {util::ErrorCode::kInfeasible,
              "first-fit placement failed final validation"};
    }
    max_occupancy = std::max(max_occupancy, occupancy);
  }

  // Locality witness: lowest common ancestor of the used machines.
  topology::VertexId root_of_all = placement.vm_machine[0];
  for (topology::VertexId machine : placement.vm_machine) {
    while (!topo.IsInSubtree(machine, root_of_all)) {
      root_of_all = topo.parent(root_of_all);
    }
  }
  placement.subtree_root = root_of_all;
  placement.max_occupancy = max_occupancy;
  return placement;
}

}  // namespace svc::core
