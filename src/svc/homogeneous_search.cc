#include "svc/homogeneous_search.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "svc/demand_profile.h"
#include "util/logging.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Per-vertex DP state.
//
// opt[x] is the paper's combination of Opt(T_v, x) and the uplink ratio
// O_{L_v}(N, x): the minimum achievable value of the maximum occupancy over
// all links of T_v *plus v's uplink* when x VMs are placed in T_v, or
// +inf when no valid placement of x VMs exists.  Folding the uplink in here
// is equivalent to the paper's recurrence (11), which maxes O_{L_vi} in at
// the parent.
//
// choice[i][x] is the paper's D_v[i, x]: how many of the x VMs assigned to
// T_v^[i] (v plus its first i child subtrees) go to the i-th child.
struct VertexState {
  std::vector<double> opt;
  std::vector<std::vector<int>> choice;
};

}  // namespace

util::Result<Placement> HomogeneousSearchAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  if (!request.homogeneous()) {
    return {util::ErrorCode::kInvalidArgument,
            std::string(name()) + " handles homogeneous requests only"};
  }
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity,
            "request needs " + std::to_string(n) + " VMs, only " +
                std::to_string(slots.total_free()) + " slots free"};
  }

  const topology::Topology& topo = ledger.topo();
  const HomogeneousProfile profile(request);

  std::vector<VertexState> state(topo.num_vertices());

  // Occupancy of v's uplink if x of the n VMs end up below it; +inf when
  // condition (4) would be violated.
  auto uplink_cost = [&](topology::VertexId v, int x) -> double {
    const double mean = profile.MeanAdd(x);
    const double var = profile.VarAdd(x);
    const double det = profile.DetAdd(x);
    if (!ledger.ValidWith(v, mean, var, det)) return kInfeasible;
    return ledger.OccupancyWith(v, mean, var, det);
  };

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;

  for (int level = 0; level <= topo.height(); ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      VertexState& vs = state[v];
      if (topo.is_machine(v)) {
        // Leaf: S_v = {0..free slots}; no links inside a machine, so the
        // subtree cost is just the uplink's.
        const int cap = std::min(n, slots.free_slots(v));
        vs.opt.assign(cap + 1, kInfeasible);
        for (int x = 0; x <= cap; ++x) vs.opt[x] = uplink_cost(v, x);
      } else {
        // Internal vertex: fold children in one at a time (T_v^[i]).
        const auto& children = topo.children(v);
        std::vector<double> current{0.0};  // T_v^[0] = {v}: zero VMs, no links
        vs.choice.resize(children.size());
        for (size_t i = 0; i < children.size(); ++i) {
          const std::vector<double>& child_opt = state[children[i]].opt;
          const int prev_max = static_cast<int>(current.size()) - 1;
          const int child_max = static_cast<int>(child_opt.size()) - 1;
          const int next_max = std::min(n, prev_max + child_max);
          std::vector<double> next(next_max + 1, kInfeasible);
          std::vector<int>& choice = vs.choice[i];
          choice.assign(next_max + 1, -1);
          for (int h = 0; h <= prev_max; ++h) {
            if (current[h] == kInfeasible) continue;
            const int e_limit = std::min(child_max, n - h);
            for (int e = 0; e <= e_limit; ++e) {
              if (child_opt[e] == kInfeasible) continue;
              const double value = std::max(current[h], child_opt[e]);
              const int total = h + e;
              const bool better = options_.optimize_occupancy
                                      ? value < next[total]
                                      : next[total] == kInfeasible;
              if (better) {
                next[total] = value;
                choice[total] = e;
              }
            }
          }
          current = std::move(next);
        }
        // Apply v's own uplink (root has none).
        vs.opt.assign(current.size(), kInfeasible);
        for (int x = 0; x < static_cast<int>(current.size()); ++x) {
          if (current[x] == kInfeasible) continue;
          if (v == topo.root()) {
            vs.opt[x] = current[x];
          } else {
            const double up = uplink_cost(v, x);
            if (up != kInfeasible) vs.opt[x] = std::max(current[x], up);
          }
        }
      }

      // Can this subtree host the whole request?
      if (static_cast<int>(vs.opt.size()) > n && vs.opt[n] != kInfeasible) {
        const bool better = options_.optimize_occupancy
                                ? vs.opt[n] < best_value
                                : best_vertex == topology::kNoVertex;
        if (better) {
          best_vertex = v;
          best_value = vs.opt[n];
        }
      }
    }
    if (options_.lowest_subtree_first && best_vertex != topology::kNoVertex) {
      break;  // lowest feasible level found; stop for locality
    }
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree satisfies the probabilistic guarantee for " +
                request.Describe()};
  }

  // Reconstruct the chosen split top-down via the recorded choices.
  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine.reserve(n);
  // Explicit stack to avoid recursion on deep topologies.
  std::vector<std::pair<topology::VertexId, int>> stack{{best_vertex, n}};
  while (!stack.empty()) {
    const auto [v, x] = stack.back();
    stack.pop_back();
    if (x == 0) continue;
    if (topo.is_machine(v)) {
      for (int k = 0; k < x; ++k) placement.vm_machine.push_back(v);
      continue;
    }
    const auto& children = topo.children(v);
    int remaining = x;
    for (size_t i = children.size(); i-- > 0;) {
      assert(remaining < static_cast<int>(state[v].choice[i].size()));
      const int e = state[v].choice[i][remaining];
      assert(e >= 0 && "reconstruction hit an unreachable table entry");
      if (e > 0) stack.emplace_back(children[i], e);
      remaining -= e;
    }
    assert(remaining == 0 && "vertex itself holds no VMs");
  }
  assert(static_cast<int>(placement.vm_machine.size()) == n);
  return placement;
}

}  // namespace svc::core
