#include "svc/homogeneous_search.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "svc/demand_profile.h"
#include "svc/scratch_arena.h"
#include "util/logging.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Flattened per-call DP tables, reused across calls.
//
// opt[v*(n+1) + x] is the paper's combination of Opt(T_v, x) and the uplink
// ratio O_{L_v}(N, x): the minimum achievable value of the maximum occupancy
// over all links of T_v *plus v's uplink* when x VMs are placed in T_v, or
// +inf when no valid placement of x VMs exists.  Folding the uplink in here
// is equivalent to the paper's recurrence (11), which maxes O_{L_vi} in at
// the parent.  opt_len[v] is the number of valid entries in v's row (the
// original per-vertex table size); 0 marks a row not computed this call.
//
// The choice table is the paper's D_v[i, x] — how many of the x VMs
// assigned to T_v^[i] (v plus its first i child subtrees) go to the i-th
// child — flattened with rows keyed by the *child* vertex: every non-root
// vertex is exactly one child edge of its parent, so the parent's stage-i
// row can live at row children[i] without collisions.
//
// The arena is thread-local so one allocator instance can serve concurrent
// sweep-runner replicas without sharing mutable state.  After the first
// call on a topology/request-size combination no Allocate() call touches
// the heap (see bench/alloc_microbench's allocation-counter benchmark).
struct DpArena {
  std::vector<double> opt;
  std::vector<int> opt_len;
  std::vector<int> choice;
  std::vector<double> current;
  std::vector<double> next;
  std::vector<std::pair<topology::VertexId, int>> stack;
  HomogeneousProfile profile;  // table capacity reused across requests
  int stride = 0;

  void Prepare(int num_vertices, int n) {
    stride = n + 1;
    const size_t cells = static_cast<size_t>(num_vertices) * stride;
    if (opt.size() < cells) opt.resize(cells);
    if (choice.size() < cells) choice.resize(cells);
    if (opt_len.size() < static_cast<size_t>(num_vertices)) {
      opt_len.resize(num_vertices);
    }
    std::fill(opt_len.begin(), opt_len.begin() + num_vertices, 0);
    if (current.size() < static_cast<size_t>(stride)) {
      current.resize(stride);
      next.resize(stride);
    }
    stack.clear();
  }

  double* opt_row(topology::VertexId v) {
    return opt.data() + static_cast<size_t>(v) * stride;
  }
  int* choice_row(topology::VertexId v) {
    return choice.data() + static_cast<size_t>(v) * stride;
  }
};

DpArena& LocalArena() {
  thread_local DpArena arena;
  return arena;
}

}  // namespace

util::Result<Placement> HomogeneousSearchAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  SVC_TRACE_SPAN("alloc/homogeneous_search");
  if (!request.homogeneous()) {
    return {util::ErrorCode::kInvalidArgument,
            std::string(name()) + " handles homogeneous requests only"};
  }
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity,
            "request needs " + std::to_string(n) + " VMs, only " +
                std::to_string(slots.total_free()) + " slots free"};
  }

  const topology::Topology& topo = ledger.topo();

  DpArena& arena = LocalArena();
  arena.profile.Reset(request);
  const HomogeneousProfile& profile = arena.profile;
  arena.Prepare(topo.num_vertices(), n);

  // Occupancy of v's uplink if x of the n VMs end up below it; +inf when
  // condition (4) would be violated.
  auto uplink_cost = [&](topology::VertexId v, int x) -> double {
    const double mean = profile.MeanAdd(x);
    const double var = profile.VarAdd(x);
    const double det = profile.DetAdd(x);
    if (!ledger.ValidWith(v, mean, var, det)) return kInfeasible;
    return ledger.OccupancyWith(v, mean, var, det);
  };

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;

  for (int level = 0; level <= topo.height(); ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      double* vopt = arena.opt_row(v);
      if (topo.is_machine(v)) {
        // Leaf: S_v = {0..free slots}; no links inside a machine, so the
        // subtree cost is just the uplink's.
        const int cap = std::min(n, slots.free_slots(v));
        arena.opt_len[v] = cap + 1;
        for (int x = 0; x <= cap; ++x) vopt[x] = uplink_cost(v, x);
      } else {
        // Internal vertex: fold children in one at a time (T_v^[i]).
        const auto& children = topo.children(v);
        double* current = arena.current.data();
        current[0] = 0.0;  // T_v^[0] = {v}: zero VMs, no links
        int cur_len = 1;
        for (topology::VertexId child : children) {
          const double* child_opt = arena.opt_row(child);
          const int prev_max = cur_len - 1;
          const int child_max = arena.opt_len[child] - 1;
          const int next_max = std::min(n, prev_max + child_max);
          double* next = arena.next.data();
          std::fill(next, next + next_max + 1, kInfeasible);
          int* choice = arena.choice_row(child);
          std::fill(choice, choice + next_max + 1, -1);
          for (int h = 0; h <= prev_max; ++h) {
            if (current[h] == kInfeasible) continue;
            const int e_limit = std::min(child_max, n - h);
            for (int e = 0; e <= e_limit; ++e) {
              if (child_opt[e] == kInfeasible) continue;
              const double value = std::max(current[h], child_opt[e]);
              const int total = h + e;
              const bool better = options_.optimize_occupancy
                                      ? value < next[total]
                                      : next[total] == kInfeasible;
              if (better) {
                next[total] = value;
                choice[total] = e;
              }
            }
          }
          std::swap(arena.current, arena.next);
          current = arena.current.data();
          cur_len = next_max + 1;
        }
        // Apply v's own uplink (root has none).
        arena.opt_len[v] = cur_len;
        for (int x = 0; x < cur_len; ++x) {
          if (current[x] == kInfeasible) {
            vopt[x] = kInfeasible;
          } else if (v == topo.root()) {
            vopt[x] = current[x];
          } else {
            const double up = uplink_cost(v, x);
            vopt[x] = up == kInfeasible ? kInfeasible
                                        : std::max(current[x], up);
          }
        }
      }

      // Can this subtree host the whole request?
      if (arena.opt_len[v] > n && vopt[n] != kInfeasible) {
        const bool better = options_.optimize_occupancy
                                ? vopt[n] < best_value
                                : best_vertex == topology::kNoVertex;
        if (better) {
          best_vertex = v;
          best_value = vopt[n];
        }
      }
    }
    if (options_.lowest_subtree_first && best_vertex != topology::kNoVertex) {
      break;  // lowest feasible level found; stop for locality
    }
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree satisfies the probabilistic guarantee for " +
                request.Describe()};
  }

  // Reconstruct the chosen split top-down via the recorded choices.
  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine = TakeVmBuffer();
  placement.vm_machine.reserve(n);
  // Explicit stack (arena-owned) to avoid recursion on deep topologies.
  auto& stack = arena.stack;
  stack.emplace_back(best_vertex, n);
  while (!stack.empty()) {
    const auto [v, x] = stack.back();
    stack.pop_back();
    if (x == 0) continue;
    if (topo.is_machine(v)) {
      for (int k = 0; k < x; ++k) placement.vm_machine.push_back(v);
      continue;
    }
    const auto& children = topo.children(v);
    int remaining = x;
    for (size_t i = children.size(); i-- > 0;) {
      assert(remaining <= n);
      const int e = arena.choice_row(children[i])[remaining];
      assert(e >= 0 && "reconstruction hit an unreachable table entry");
      if (e > 0) stack.emplace_back(children[i], e);
      remaining -= e;
    }
    assert(remaining == 0 && "vertex itself holds no VMs");
  }
  assert(static_cast<int>(placement.vm_machine.size()) == n);
  return placement;
}

}  // namespace svc::core
