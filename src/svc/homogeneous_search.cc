#include "svc/homogeneous_search.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/demand_profile.h"
#include "svc/scratch_arena.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Flattened per-call DP tables, reused across calls.
//
// opt[v*(n+1) + x] is the paper's combination of Opt(T_v, x) and the uplink
// ratio O_{L_v}(N, x): the minimum achievable value of the maximum occupancy
// over all links of T_v *plus v's uplink* when x VMs are placed in T_v, or
// +inf when no valid placement of x VMs exists.  Folding the uplink in here
// is equivalent to the paper's recurrence (11), which maxes O_{L_vi} in at
// the parent.  opt_len[v] is the number of valid entries in v's row (the
// original per-vertex table size); 0 marks a row not computed this call.
// opt_lo/opt_hi[v] bound the feasible (finite) window of the row, so the
// child-fold skips infeasible prefixes and suffixes without probing them.
//
// The choice table is the paper's D_v[i, x] — how many of the x VMs
// assigned to T_v^[i] (v plus its first i child subtrees) go to the i-th
// child — flattened with rows keyed by the *child* vertex: every non-root
// vertex is exactly one child edge of its parent, so the parent's stage-i
// row can live at row children[i] without collisions.
//
// Choice rows are written only during reconstruction (the winning subtree
// is refolded with the reference recurrence); the DP pass itself runs the
// branchless fold kernel and records no per-cell winners.
//
// The arena is thread-local so one allocator instance can serve concurrent
// sweep-runner replicas without sharing mutable state.  In level-parallel
// mode the shared tables (opt / opt_len / opt_lo / opt_hi) live in the
// calling thread's arena — workers write disjoint rows — while each
// worker folds in its own thread-local scratch (current / next / row).
// After the first call on a topology/request-size combination no Allocate()
// call touches the heap (see bench/alloc_microbench's allocation-counter
// benchmark).
struct DpArena {
  std::vector<double> opt;
  std::vector<int> opt_len;
  std::vector<int> opt_lo;
  std::vector<int> opt_hi;
  std::vector<int> choice;
  std::vector<double> current;
  std::vector<double> next;
  std::vector<double> row;  // uplink occupancy row scratch
  std::vector<std::pair<topology::VertexId, int>> stack;
  HomogeneousProfile profile;  // table capacity reused across requests
  int stride = 0;

  void Prepare(int num_vertices, int n) {
    PrepareScratch(n);
    const size_t cells = static_cast<size_t>(num_vertices) * stride;
    if (opt.size() < cells) opt.resize(cells);
    if (choice.size() < cells) choice.resize(cells);
    if (opt_len.size() < static_cast<size_t>(num_vertices)) {
      opt_len.resize(num_vertices);
      opt_lo.resize(num_vertices);
      opt_hi.resize(num_vertices);
    }
    std::fill(opt_len.begin(), opt_len.begin() + num_vertices, 0);
    stack.clear();
  }

  // Sizes only the per-thread fold scratch; what level-parallel workers
  // need (their shared rows live in the caller's arena).
  void PrepareScratch(int n) {
    stride = n + 1;
    if (current.size() < static_cast<size_t>(stride)) {
      current.resize(stride);
      next.resize(stride);
      row.resize(stride);
    }
  }

  double* opt_row(topology::VertexId v) {
    return opt.data() + static_cast<size_t>(v) * stride;
  }
  int* choice_row(topology::VertexId v) {
    return choice.data() + static_cast<size_t>(v) * stride;
  }
};

DpArena& LocalArena() {
  thread_local DpArena arena;
  return arena;
}

// Kernel/pruning tallies, accumulated locally per vertex and flushed to the
// metrics registry once per Allocate() (keeps the DP loops free of even the
// disabled-metrics branch).
struct KernelStats {
  int64_t kernel_cells = 0;  // fused occupancy evaluations
  int64_t pruned_cells = 0;  // cells resolved without a quantile evaluation
};

// Everything a per-vertex DP task needs; points into the calling thread's
// arena.  Immutable during a level's fan-out except for the disjoint rows
// each vertex writes.
struct DpShared {
  const topology::Topology* topo;
  const net::LinkLedger* ledger;
  const SlotMap* slots;
  const HomogeneousProfile* profile;
  double* opt;
  int* opt_len;
  int* opt_lo;
  int* opt_hi;
  int* choice;
  int stride;
  int n;
  bool optimize;
  bool monotone;  // quantile >= 0: occupancy monotone in the moment adds

  double* opt_row(topology::VertexId v) const {
    return opt + static_cast<size_t>(v) * stride;
  }
  int* choice_row(topology::VertexId v) const {
    return choice + static_cast<size_t>(v) * stride;
  }
};

// Fills row[x] for x in [x_lo, x_hi] with the fused occupancy of v's uplink
// when x of the n VMs land below it (+inf on a condition-(4) violation).
// On the profile's verified monotone segments the feasibility frontier is
// binary-searched, so infeasible spans cost O(log) probes instead of one
// sqrt per cell; segments too short to amortize the search (or profiles
// with a negative quantile, where occupancy is not monotone in the
// variance) are evaluated densely by the batch kernel.
void UplinkRow(const DpShared& s, topology::VertexId v, int x_lo, int x_hi,
               double* row, KernelStats& stats) {
  const double* mean = s.profile->mean_adds();
  const double* var = s.profile->var_adds();
  const double* det = s.profile->det_adds();
  auto batch = [&](int a, int b) {
    if (b < a) return;
    s.ledger->OccupancyWithBatch(v, mean + a, var + a, det + a, b - a + 1,
                                 row + a);
    stats.kernel_cells += b - a + 1;
  };
  auto fill_infeasible = [&](int a, int b) {
    if (b < a) return;
    std::fill(row + a, row + b + 1, kInfeasible);
    stats.pruned_cells += b - a + 1;
  };
  constexpr int kMinSearchLen = 8;  // below this, dense batch is cheaper
  if (!s.monotone || x_hi - x_lo + 1 < kMinSearchLen) {
    batch(x_lo, x_hi);
    return;
  }
  // Rising segment: moments non-decreasing, so feasible cells are a prefix.
  const int rise_end = std::min(x_hi, s.profile->rise_end());
  if (x_lo <= rise_end) {
    const int frontier =
        s.ledger->FeasibleFrontier(v, mean, var, det, x_lo, rise_end);
    batch(x_lo, frontier - 1);
    fill_infeasible(frontier, rise_end);
  }
  // Middle cells between the verified segments: probe densely.
  const int fall_begin =
      std::max(x_lo, std::max(s.profile->fall_begin(), rise_end + 1));
  batch(std::max(x_lo, rise_end + 1), std::min(x_hi, fall_begin - 1));
  // Falling segment: moments non-increasing, so feasible cells are a suffix.
  if (fall_begin <= x_hi) {
    const int first_feasible = s.ledger->FeasibleFrontierDescending(
        v, mean, var, det, fall_begin, x_hi);
    fill_infeasible(fall_begin, first_feasible - 1);
    batch(first_feasible, x_hi);
  }
}

// Folds v's children into scratch.current one at a time (T_v^[i]) and
// reports the resulting row's length and feasible window.
//
// kRecordChoices selects between the two callers:
//   * the DP pass (<false>) needs only the folded values, so the inner
//     loop is the branchless min/max kernel — +inf cells are absorbed by
//     the max and never improve the min, and ties keep the incumbent
//     exactly as the reference's strict `<` does, so the produced row is
//     bit-identical to the reference recurrence;
//   * reconstruction (<true>) refolds just the winning subtree with the
//     reference loop to recover the children's choice rows (first strict
//     improvement in (h, e) order).  Same inputs, same order — the same
//     choices the reference DP would have recorded, at a cost bounded by
//     one subtree instead of every fold in the fabric.
template <bool kRecordChoices>
void FoldChildren(const DpShared& s, topology::VertexId v, DpArena& scratch,
                  KernelStats& stats, int* out_len, int* out_lo,
                  int* out_hi) {
  const topology::Topology& topo = *s.topo;
  const int n = s.n;
  double* current = scratch.current.data();
  current[0] = 0.0;  // T_v^[0] = {v}: zero VMs, no links
  int cur_len = 1;
  int cur_lo = 0;  // feasible window of `current`
  int cur_hi = 0;
  for (topology::VertexId child : topo.children(v)) {
    const double* child_opt = s.opt_row(child);
    const int prev_max = cur_len - 1;
    const int child_max = s.opt_len[child] - 1;
    const int child_lo = s.opt_lo[child];
    const int child_hi = s.opt_hi[child];
    const int next_max = std::min(n, prev_max + child_max);
    double* next = scratch.next.data();
    std::fill(next, next + next_max + 1, kInfeasible);
    int* choice = s.choice_row(child);
    if (kRecordChoices) std::fill(choice, choice + next_max + 1, -1);
    if (cur_lo <= cur_hi && child_lo <= child_hi) {
      const int h_hi = std::min(cur_hi, prev_max);
      const bool fused = !kRecordChoices && s.optimize;
      // In the fused (min,max) fold the final next[k] is the min of
      // max(current[h], child_opt[e]) over the same {h + e = k} pair set
      // whichever loop runs inside, and min over a set of doubles is
      // order-independent, so the kernel sweeps whichever window is
      // longer: a rack folding 4-slot machine rows wants the vectorized
      // inner loop over its ~n-wide accumulated row, not the 5-cell
      // child row.
      if (fused && h_hi - cur_lo > child_hi - child_lo) {
        for (int h = cur_lo; h <= h_hi; ++h) {
          if (current[h] == kInfeasible) continue;
          const int e_limit = std::min(child_hi, n - h);
          stats.pruned_cells +=
              std::min(child_max, n - h) - e_limit + child_lo;
        }
        for (int e = child_lo; e <= child_hi; ++e) {
          const double ce = child_opt[e];
          if (ce == kInfeasible) continue;
          const int h_limit = std::min(h_hi, n - e);
          const double* __restrict cur = current;
          double* __restrict out = next + e;
          for (int h = cur_lo; h <= h_limit; ++h) {
            out[h] = std::min(out[h], std::max(ce, cur[h]));
          }
        }
      } else {
        for (int h = cur_lo; h <= h_hi; ++h) {
          if (current[h] == kInfeasible) continue;
          // Skip the child's infeasible prefix/suffix outright; cells
          // inside the window are still checked (windows are bounds, not
          // dense guarantees).
          const int e_limit = std::min(child_hi, n - h);
          stats.pruned_cells +=
              std::min(child_max, n - h) - e_limit + child_lo;
          if (fused) {
            // Branchless kernel: contiguous loads, one max + one min per
            // cell, no data-dependent branches — auto-vectorizable.
            // +inf child cells are absorbed by the max and never improve
            // the min; ties keep the incumbent, as the reference's
            // strict `<` does.
            const double c = current[h];
            const double* __restrict ch = child_opt;
            double* __restrict out = next + h;
            for (int e = child_lo; e <= e_limit; ++e) {
              out[e] = std::min(out[e], std::max(c, ch[e]));
            }
            continue;
          }
          for (int e = child_lo; e <= e_limit; ++e) {
            if (child_opt[e] == kInfeasible) continue;
            const double value = std::max(current[h], child_opt[e]);
            const int total = h + e;
            const bool better = s.optimize ? value < next[total]
                                           : next[total] == kInfeasible;
            if (better) {
              next[total] = value;
              if (kRecordChoices) choice[total] = e;
            }
          }
        }
      }
    }
    std::swap(scratch.current, scratch.next);
    current = scratch.current.data();
    cur_len = next_max + 1;
    // Rescan the window (cheap: one pass over the row the fold just
    // wrote; dwarfed by the fold's O(window^2) work).
    cur_lo = 0;
    while (cur_lo < cur_len && current[cur_lo] == kInfeasible) ++cur_lo;
    cur_hi = cur_len - 1;
    while (cur_hi > cur_lo && current[cur_hi] == kInfeasible) --cur_hi;
    if (cur_lo >= cur_len) {  // empty row: nothing feasible any more
      cur_lo = 1;
      cur_hi = 0;
    }
  }
  *out_len = cur_len;
  *out_lo = cur_lo;
  *out_hi = cur_hi;
}

// Computes vertex v's opt row from the children's already-computed rows.
// Pure with respect to the shared tables except for v's own rows, so
// vertices within a level can run concurrently in any order.  Choice rows
// are NOT produced here — reconstruction refolds the winning subtree.
void ComputeVertexRow(const DpShared& s, topology::VertexId v,
                      DpArena& scratch, KernelStats& stats) {
  const topology::Topology& topo = *s.topo;
  const int n = s.n;
  double* vopt = s.opt_row(v);

  if (topo.is_machine(v)) {
    // Leaf: S_v = {0..free slots}; no links inside a machine, so the
    // subtree cost is just the uplink's.
    const int cap = std::min(n, s.slots->free_slots(v));
    s.opt_len[v] = cap + 1;
    UplinkRow(s, v, 0, cap, vopt, stats);
  } else {
    int cur_len = 0;
    int cur_lo = 0;
    int cur_hi = 0;
    FoldChildren<false>(s, v, scratch, stats, &cur_len, &cur_lo, &cur_hi);
    const double* current = scratch.current.data();
    // Apply v's own uplink (root has none), only across the fold's
    // feasible window — everything outside is already infeasible.
    s.opt_len[v] = cur_len;
    std::fill(vopt, vopt + cur_len, kInfeasible);
    if (cur_lo <= cur_hi) {
      if (v == topo.root()) {
        std::copy(current + cur_lo, current + cur_hi + 1, vopt + cur_lo);
      } else {
        double* up = scratch.row.data();
        UplinkRow(s, v, cur_lo, cur_hi, up, stats);
        for (int x = cur_lo; x <= cur_hi; ++x) {
          if (current[x] == kInfeasible || up[x] == kInfeasible) continue;
          vopt[x] = std::max(current[x], up[x]);
        }
      }
    }
  }

  // Record the row's feasible window for the parent's fold.
  const int len = s.opt_len[v];
  int lo = 0;
  while (lo < len && vopt[lo] == kInfeasible) ++lo;
  int hi = len - 1;
  while (hi > lo && vopt[hi] == kInfeasible) --hi;
  if (lo >= len) {
    lo = 1;
    hi = 0;
  }
  s.opt_lo[v] = lo;
  s.opt_hi[v] = hi;
}

// Shared state of one level's parallel fan-out.  Workers claim vertices
// through the atomic cursor; the submitting thread participates too, so a
// one-worker pool still makes progress while the caller waits.
struct LevelJob {
  const DpShared* shared;
  const topology::VertexId* vertices;
  int count;
  std::atomic<int> cursor{0};
  std::atomic<int64_t> kernel_cells{0};
  std::atomic<int64_t> pruned_cells{0};
  util::Latch* latch;

  void Drain() {
    DpArena& scratch = LocalArena();
    scratch.PrepareScratch(shared->n);
    KernelStats stats;
    for (int i = cursor.fetch_add(1, std::memory_order_relaxed); i < count;
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      ComputeVertexRow(*shared, vertices[i], scratch, stats);
    }
    kernel_cells.fetch_add(stats.kernel_cells, std::memory_order_relaxed);
    pruned_cells.fetch_add(stats.pruned_cells, std::memory_order_relaxed);
  }
};

}  // namespace

util::Result<Placement> HomogeneousSearchAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  SVC_TRACE_SPAN("alloc/homogeneous_search");
  if (!request.homogeneous()) {
    return {util::ErrorCode::kInvalidArgument,
            std::string(name()) + " handles homogeneous requests only"};
  }
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity,
            "request needs " + std::to_string(n) + " VMs, only " +
                std::to_string(slots.total_free()) + " slots free"};
  }

  const topology::Topology& topo = ledger.topo();

  DpArena& arena = LocalArena();
  arena.profile.Reset(request);
  const HomogeneousProfile& profile = arena.profile;
  arena.Prepare(topo.num_vertices(), n);

  const DpShared shared{&topo,
                        &ledger,
                        &slots,
                        &profile,
                        arena.opt.data(),
                        arena.opt_len.data(),
                        arena.opt_lo.data(),
                        arena.opt_hi.data(),
                        arena.choice.data(),
                        arena.stride,
                        n,
                        options_.optimize_occupancy,
                        ledger.quantile() >= 0};

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;
  KernelStats stats;
  int64_t parallel_tasks = 0;

  for (int level = 0; level <= topo.height(); ++level) {
    const auto& vertices = topo.vertices_at_level(level);
    const bool parallel =
        options_.pool != nullptr &&
        static_cast<int>(vertices.size()) >= options_.min_parallel_vertices;
    if (parallel) {
      // Fan the per-vertex DP across the pool.  Row values are pure
      // functions of the ledger and the children's rows, so computation
      // order does not matter; the best-subtree reduction below stays in
      // serial level order, keeping placements bit-identical to serial.
      const int fanout = options_.pool->num_threads();
      util::Latch latch(fanout);
      LevelJob job{.shared = &shared,
                   .vertices = vertices.data(),
                   .count = static_cast<int>(vertices.size()),
                   .latch = &latch};
      for (int t = 0; t < fanout; ++t) {
        // The lambda captures one pointer, so std::function's small-buffer
        // path applies and submission stays heap-free.
        options_.pool->Submit([&job] {
          job.Drain();
          job.latch->CountDown();
        });
      }
      job.Drain();  // the caller participates until the cursor drains
      latch.Wait();
      stats.kernel_cells += job.kernel_cells.load(std::memory_order_relaxed);
      stats.pruned_cells += job.pruned_cells.load(std::memory_order_relaxed);
      parallel_tasks += fanout;
    }
    for (topology::VertexId v : vertices) {
      if (!parallel) {
        // Early level termination: once this level holds a best subtree
        // (and the search will stop at this level), a vertex can only win
        // by strictly beating best_value.  Every link's occupancy is
        // monotone in the added moments, so max over the children's
        // base-occupancy cells (their x = 0 entries) lower-bounds the
        // vertex's eventual vopt[n]; if the bound can't beat best_value
        // the whole subtree fold is skipped.  Skipped rows are never read:
        // the level break below runs before any parent could fold them.
        if (options_.lowest_subtree_first &&
            best_vertex != topology::kNoVertex) {
          if (!options_.optimize_occupancy) {
            stats.pruned_cells += n + 1;
            continue;  // first feasible vertex already found
          }
          if (shared.monotone) {
            double bound = 0;
            if (topo.is_machine(v)) {
              if (n > slots.free_slots(v)) bound = kInfeasible;
            } else {
              for (topology::VertexId child : topo.children(v)) {
                bound = std::max(bound, shared.opt_row(child)[0]);
              }
            }
            if (!(bound < best_value)) {
              stats.pruned_cells += n + 1;
              continue;
            }
          }
        }
        ComputeVertexRow(shared, v, arena, stats);
      }

      // Can this subtree host the whole request?
      if (arena.opt_len[v] > n) {
        const double whole = shared.opt_row(v)[n];
        if (whole != kInfeasible) {
          const bool better = options_.optimize_occupancy
                                  ? whole < best_value
                                  : best_vertex == topology::kNoVertex;
          if (better) {
            best_vertex = v;
            best_value = whole;
          }
        }
      }
    }
    if (options_.lowest_subtree_first && best_vertex != topology::kNoVertex) {
      break;  // lowest feasible level found; stop for locality
    }
  }

  SVC_METRIC_ADD("alloc/kernel_cells", stats.kernel_cells);
  SVC_METRIC_ADD("alloc/pruned_cells", stats.pruned_cells);
  if (parallel_tasks > 0) {
    SVC_METRIC_ADD("alloc/level_parallel_tasks", parallel_tasks);
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree satisfies the probabilistic guarantee for " +
                request.Describe()};
  }

  // Reconstruct the chosen split top-down.  The DP pass does not record
  // choice rows (the branchless fold kernel has no per-cell winner store),
  // so each visited internal vertex refolds its children once with the
  // reference recurrence — same child rows, same order, same tie-breaks,
  // so the recovered choices match what the reference DP records.  Cost is
  // bounded by the winning subtree, not the whole fabric; the stats sink
  // is a local discard (the per-call metrics were flushed above).
  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine = TakeVmBuffer();
  placement.vm_machine.reserve(n);
  KernelStats refold_stats;
  // Explicit stack (arena-owned) to avoid recursion on deep topologies.
  auto& stack = arena.stack;
  stack.emplace_back(best_vertex, n);
  while (!stack.empty()) {
    const auto [v, x] = stack.back();
    stack.pop_back();
    if (x == 0) continue;
    if (topo.is_machine(v)) {
      for (int k = 0; k < x; ++k) placement.vm_machine.push_back(v);
      continue;
    }
    int refold_len = 0, refold_lo = 0, refold_hi = 0;
    FoldChildren<true>(shared, v, arena, refold_stats, &refold_len,
                       &refold_lo, &refold_hi);
    const auto& children = topo.children(v);
    int remaining = x;
    for (size_t i = children.size(); i-- > 0;) {
      assert(remaining <= n);
      const int e = arena.choice_row(children[i])[remaining];
      assert(e >= 0 && "reconstruction hit an unreachable table entry");
      if (e > 0) stack.emplace_back(children[i], e);
      remaining -= e;
    }
    assert(remaining == 0 && "vertex itself holds no VMs");
  }
  assert(static_cast<int>(placement.vm_machine.size()) == n);
  return placement;
}

}  // namespace svc::core
