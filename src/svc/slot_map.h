// Empty-VM-slot bookkeeping per machine.
#pragma once

#include <cassert>
#include <vector>

#include "topology/topology.h"

namespace svc::core {

class SlotMap {
 public:
  explicit SlotMap(const topology::Topology& topo);

  int free_slots(topology::VertexId machine) const {
    return free_[machine];
  }
  int total_free() const { return total_free_; }

  // Occupies `count` slots on `machine`; asserts availability.
  void Occupy(topology::VertexId machine, int count);

  // Releases `count` slots; asserts against over-release.
  void Release(topology::VertexId machine, int count);

 private:
  const topology::Topology* topo_;
  std::vector<int> free_;  // indexed by vertex id; 0 for switches
  int total_free_ = 0;
};

}  // namespace svc::core
