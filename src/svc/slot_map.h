// Empty-VM-slot bookkeeping per machine.
//
// Per-machine state is independent, so mutations on disjoint machine sets
// (the sharded commit workers') are safe to run concurrently: the only
// cross-machine aggregate, total_free_, is a relaxed atomic whose final
// value is order-independent.
#pragma once

#include <atomic>
#include <cassert>
#include <utility>
#include <vector>

#include "topology/topology.h"

namespace svc::core {

class SlotMap {
 public:
  explicit SlotMap(const topology::Topology& topo);

  SlotMap(const SlotMap& other)
      : topo_(other.topo_),
        free_(other.free_),
        failed_(other.failed_),
        total_free_(other.total_free_.load(std::memory_order_relaxed)) {}
  SlotMap& operator=(const SlotMap& other) {
    topo_ = other.topo_;
    free_ = other.free_;
    failed_ = other.failed_;
    total_free_.store(other.total_free_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }
  SlotMap(SlotMap&& other) noexcept
      : topo_(other.topo_),
        free_(std::move(other.free_)),
        failed_(std::move(other.failed_)),
        total_free_(other.total_free_.load(std::memory_order_relaxed)) {}
  SlotMap& operator=(SlotMap&& other) noexcept {
    topo_ = other.topo_;
    free_ = std::move(other.free_);
    failed_ = std::move(other.failed_);
    total_free_.store(other.total_free_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  // Free slots visible to placement: 0 while the machine is failed, so the
  // allocators (which only consult free_slots) avoid down machines with no
  // special-casing of their own.
  int free_slots(topology::VertexId machine) const {
    return failed_[machine] ? 0 : free_[machine];
  }
  int total_free() const {
    return total_free_.load(std::memory_order_relaxed);
  }

  bool machine_up(topology::VertexId machine) const {
    return !failed_[machine];
  }

  // Fault-plane state change.  A failed machine contributes 0 to both
  // free_slots and total_free; recovery restores whatever is genuinely
  // unoccupied (tenants released while the machine was down are accounted
  // for).  Idempotent.
  void SetMachineState(topology::VertexId machine, bool up);

  // Occupies `count` slots on `machine`; asserts availability (and that
  // the machine is up — a failed machine advertises 0 free slots).
  void Occupy(topology::VertexId machine, int count);

  // Releases `count` slots; asserts against over-release.  Legal on a
  // failed machine (a tenant stranded by the fault still releases its
  // slots); the freed slots become visible only after recovery.
  void Release(topology::VertexId machine, int count);

  // Overwrites the per-machine state (free count + fault flag) of exactly
  // the listed machines with `other`'s, keeping total_free_ consistent.
  // Both maps must be over the same topology.  Reads only the listed
  // machines' entries of `other`, so it is safe while other machines'
  // entries are mutating (the sharded partial snapshot refresh).
  void AssignMachinesFrom(const SlotMap& other,
                          const std::vector<topology::VertexId>& machines);

 private:
  const topology::Topology* topo_;
  std::vector<int> free_;      // unoccupied slots, ignoring fault state
  std::vector<char> failed_;   // fault-plane state; indexed by vertex id
  std::atomic<int> total_free_{0};  // excludes failed machines
};

}  // namespace svc::core
