// Empty-VM-slot bookkeeping per machine.
#pragma once

#include <cassert>
#include <vector>

#include "topology/topology.h"

namespace svc::core {

class SlotMap {
 public:
  explicit SlotMap(const topology::Topology& topo);

  // Free slots visible to placement: 0 while the machine is failed, so the
  // allocators (which only consult free_slots) avoid down machines with no
  // special-casing of their own.
  int free_slots(topology::VertexId machine) const {
    return failed_[machine] ? 0 : free_[machine];
  }
  int total_free() const { return total_free_; }

  bool machine_up(topology::VertexId machine) const {
    return !failed_[machine];
  }

  // Fault-plane state change.  A failed machine contributes 0 to both
  // free_slots and total_free; recovery restores whatever is genuinely
  // unoccupied (tenants released while the machine was down are accounted
  // for).  Idempotent.
  void SetMachineState(topology::VertexId machine, bool up);

  // Occupies `count` slots on `machine`; asserts availability (and that
  // the machine is up — a failed machine advertises 0 free slots).
  void Occupy(topology::VertexId machine, int count);

  // Releases `count` slots; asserts against over-release.  Legal on a
  // failed machine (a tenant stranded by the fault still releases its
  // slots); the freed slots become visible only after recovery.
  void Release(topology::VertexId machine, int count);

 private:
  const topology::Topology* topo_;
  std::vector<int> free_;      // unoccupied slots, ignoring fault state
  std::vector<char> failed_;   // fault-plane state; indexed by vertex id
  int total_free_ = 0;         // excludes failed machines
};

}  // namespace svc::core
