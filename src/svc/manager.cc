#include "svc/manager.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/demand_profile.h"
#include "svc/survivable.h"
#include "util/logging.h"

namespace svc::core {

const char* ToString(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kReallocate: return "reallocate";
    case RecoveryPolicy::kPatch: return "patch";
    case RecoveryPolicy::kEvict: return "evict";
    case RecoveryPolicy::kSwitchover: return "switchover";
  }
  return "?";
}

const char* ToString(EvictReason reason) {
  switch (reason) {
    case EvictReason::kNone: return "none";
    case EvictReason::kPolicy: return "policy";
    case EvictReason::kReallocationFailed: return "reallocation-failed";
    case EvictReason::kPatchFailed: return "patch-failed";
  }
  return "?";
}

bool ParseRecoveryPolicy(std::string_view name, RecoveryPolicy* out) {
  if (name == "reallocate") {
    *out = RecoveryPolicy::kReallocate;
  } else if (name == "patch") {
    *out = RecoveryPolicy::kPatch;
  } else if (name == "evict") {
    *out = RecoveryPolicy::kEvict;
  } else if (name == "switchover") {
    *out = RecoveryPolicy::kSwitchover;
  } else {
    return false;
  }
  return true;
}

int FaultOutcome::recovered() const {
  int n = 0;
  for (const TenantOutcome& t : tenants) n += t.recovered;
  return n;
}

int FaultOutcome::evicted() const {
  // Counted by reason, not by complement: a drain can leave a tenant in
  // place (unrecovered yet not evicted, EvictReason::kNone).  For faults
  // every unrecovered tenant carries a reason, so this matches the old
  // size() - recovered() there.
  int n = 0;
  for (const TenantOutcome& t : tenants) n += t.evict_reason != EvictReason::kNone;
  return n;
}

int FaultOutcome::switched() const {
  int n = 0;
  for (const TenantOutcome& t : tenants) n += t.switched_over;
  return n;
}

namespace {

// Per-algorithm admission counter, e.g. "alloc/svc-dp/success".  The name
// is composed on the stack and interned by the registry; lookups after the
// first take a shared lock and never allocate (the Allocate hot path is
// covered by the zero-allocation regression benches).
void BumpAllocatorCounter(std::string_view allocator, const char* outcome) {
  char name[96];
  std::snprintf(name, sizeof name, "alloc/%.*s/%s",
                static_cast<int>(allocator.size()), allocator.data(), outcome);
  obs::Registry::Global().GetCounter(name).Increment();
}

// Short reason code for decision records (fits DecisionRecord::reason).
const char* ReasonCode(util::ErrorCode code) {
  switch (code) {
    case util::ErrorCode::kOk: return "ok";
    case util::ErrorCode::kInvalidArgument: return "invalid-argument";
    case util::ErrorCode::kInfeasible: return "infeasible";
    case util::ErrorCode::kCapacity: return "capacity";
    case util::ErrorCode::kNotFound: return "not-found";
    case util::ErrorCode::kFailedPrecondition: return "precondition";
  }
  return "unknown";
}

}  // namespace

NetworkManager::NetworkManager(const topology::Topology& topo, double epsilon)
    : topo_(&topo), ledger_(topo, epsilon), slots_(topo) {}

void NetworkManager::ConfigureSharding(
    std::shared_ptr<const net::ShardMap> shards) {
  assert(InFlightProposals() == 0 &&
         "sharding reconfiguration requires a quiesced pipeline");
  assert(shards == nullptr || &shards->topo() == topo_);
  shards_ = std::move(shards);
  ledger_.SetShardMap(shards_.get());
  // Every bucket epoch records "global epoch at last mutation"; seeding
  // with the current global value after the bump makes every pre-existing
  // snapshot stale under the new layout.
  const uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  shard_epochs_.assign(shards_ == nullptr ? 1 : shards_->bucket_count(), e);
}

uint64_t NetworkManager::TouchedBuckets(
    const Placement& placement, const std::vector<LinkDemand>& demands) const {
  if (shards_ == nullptr) return 1;
  uint64_t mask = 0;
  for (const LinkDemand& d : demands) {
    mask |= uint64_t{1} << shards_->bucket_of_link(d.link);
  }
  for (topology::VertexId machine : placement.vm_machine) {
    mask |= uint64_t{1} << shards_->shard_of_vertex(machine);
  }
  if (placement.survivable()) {
    mask |= uint64_t{1} << shards_->shard_of_vertex(placement.backup_machine);
  }
  return mask;
}

bool NetworkManager::BucketsFresh(uint64_t mask,
                                  const std::vector<uint64_t>& epochs) const {
  if (epochs.size() != shard_epochs_.size()) return false;
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    const size_t b = static_cast<size_t>(std::countr_zero(m));
    if (b >= epochs.size() || epochs[b] != shard_epochs_[b]) return false;
  }
  return true;
}

void NetworkManager::BumpBuckets(uint64_t mask) {
  const uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const uint64_t all = (uint64_t{1} << shard_epochs_.size()) - 1;
  for (uint64_t m = mask & all; m != 0; m &= m - 1) {
    shard_epochs_[static_cast<size_t>(std::countr_zero(m))] = e;
  }
}

util::Status NetworkManager::PrepareShardCommit(
    const Request& request, const AdmissionProposal& proposal) {
  assert(proposal.ok && "only successful proposals can be committed");
  if (util::Status s = CheckPlacementShape(request, proposal.placement);
      !s.ok()) {
    return s;
  }
  live_.emplace(request.id(), LiveRequest{request, proposal.placement});
  // Bumping before the apply half lands is conservative: a later
  // speculation against these buckets goes stale and re-runs serially,
  // which is the serial decision by definition.
  BumpBuckets(proposal.touched_mask);
  return util::Status::Ok();
}

util::Result<Placement> NetworkManager::ApplyShardCommit(
    const Request& request, AdmissionProposal&& proposal) {
  if (util::Status s = CheckCapacity(proposal.placement, proposal.demands);
      !s.ok()) {
    return s;
  }
  for (const auto& [machine, count] : proposal.placement.MachineCounts()) {
    slots_.Occupy(machine, count);
  }
  for (const LinkDemand& d : proposal.demands) {
    if (d.domain != topology::kNoVertex) {
      ledger_.AddBackup(d.link, request.id(), d.domain, d.mean, d.variance,
                        d.deterministic);
    } else if (d.deterministic > 0) {
      ledger_.AddDeterministic(d.link, request.id(), d.deterministic);
    } else {
      ledger_.AddStochastic(d.link, request.id(), d.mean, d.variance);
    }
  }
  return std::move(proposal.placement);
}

void NetworkManager::AbandonShardCommit(RequestId id) { live_.erase(id); }

AdmissionSnapshot::AdmissionSnapshot(const topology::Topology& topo,
                                     double epsilon)
    : view(topo, epsilon), slots(topo) {}

void AdmissionSnapshot::Capture(const NetworkManager& manager) {
  view.Capture(manager.ledger(), manager.epoch());
  slots = manager.slots();
  shard_epochs = manager.shard_epochs();
}

uint64_t AdmissionSnapshot::StaleBuckets(const NetworkManager& manager) const {
  const std::vector<uint64_t>& current = manager.shard_epochs();
  if (shard_epochs.size() != current.size()) {
    return (uint64_t{1} << current.size()) - 1;
  }
  uint64_t stale = 0;
  for (size_t b = 0; b < current.size(); ++b) {
    if (shard_epochs[b] != current[b]) stale |= uint64_t{1} << b;
  }
  return stale;
}

void AdmissionSnapshot::CaptureStale(const NetworkManager& manager) {
  const net::ShardMap* shards = manager.shard_map();
  if (shards == nullptr ||
      shard_epochs.size() != manager.shard_epochs().size()) {
    Capture(manager);
    return;
  }
  const uint64_t stale = StaleBuckets(manager);
  for (uint64_t m = stale; m != 0; m &= m - 1) {
    const int b = std::countr_zero(m);
    view.CaptureLinks(manager.ledger(), shards->links_in_bucket(b),
                      manager.epoch());
    if (b < shards->num_shards()) {
      slots.AssignMachinesFrom(manager.slots(), shards->machines_in_shard(b));
    }
  }
  shard_epochs = manager.shard_epochs();
  // Bucket epochs record the global epoch of the bucket's last mutation, so
  // buckets all matching implies no mutation since the newest of them — the
  // re-captured snapshot equals the books exactly.
  assert(view.epoch() == manager.epoch() || stale != 0);
}

std::vector<LinkDemand> NetworkManager::ComputeLinkDemands(
    const Request& request, const Placement& placement) const {
  // The primary computation (and, for survivable placements, the per-domain
  // backup deltas) lives in svc/survivable.cc so PlanBackup can reuse it.
  return ComputeSurvivableLinkDemands(*topo_, request, placement);
}

util::Status NetworkManager::CheckPlacementShape(
    const Request& request, const Placement& placement) const {
  if (live_.count(request.id())) {
    return {util::ErrorCode::kFailedPrecondition,
            "request id already admitted: " + std::to_string(request.id())};
  }
  if (placement.total_vms() != request.n()) {
    return {util::ErrorCode::kFailedPrecondition,
            "placement has " + std::to_string(placement.total_vms()) +
                " VMs for a request of " + std::to_string(request.n())};
  }
  for (topology::VertexId machine : placement.vm_machine) {
    if (machine < 0 || machine >= topo_->num_vertices() ||
        !topo_->is_machine(machine)) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement names a non-machine vertex " +
                  std::to_string(machine)};
    }
  }
  if (placement.survivable()) {
    const topology::VertexId b = placement.backup_machine;
    if (b < 0 || b >= topo_->num_vertices() || !topo_->is_machine(b)) {
      return {util::ErrorCode::kFailedPrecondition,
              "backup group names a non-machine vertex " + std::to_string(b)};
    }
    if (placement.backup_slots <= 0) {
      return {util::ErrorCode::kFailedPrecondition,
              "survivable placement with an empty backup group"};
    }
    for (topology::VertexId machine : placement.vm_machine) {
      if (machine == b) {
        return {util::ErrorCode::kFailedPrecondition,
                "backup machine " + std::to_string(b) +
                    " overlaps a primary machine"};
      }
    }
  } else if (placement.backup_slots != 0) {
    return {util::ErrorCode::kFailedPrecondition,
            "backup slots without a backup machine"};
  }
  return util::Status::Ok();
}

util::Status NetworkManager::CheckCapacity(
    const Placement& placement,
    const std::vector<LinkDemand>& demands) const {
  for (const auto& [machine, count] : placement.MachineCounts()) {
    if (slots_.free_slots(machine) < count) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement exceeds free slots on machine " +
                  std::to_string(machine)};
    }
  }
  // Condition (4), re-checked on exactly the links the placement touches —
  // the validate-and-commit stage pays O(touched links), not O(links).
  // Survivable demand sets group primary and backup rows per link, so their
  // check pairs each backup row with the primary addition on its link.
  if (placement.survivable()) {
    return CheckSurvivableCapacity(ledger_, demands);
  }
  for (const LinkDemand& d : demands) {
    if (!ledger_.ValidWith(d.link, d.mean, d.variance, d.deterministic)) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement violates condition (4) on link " +
                  std::to_string(d.link)};
    }
  }
  return util::Status::Ok();
}

void NetworkManager::CommitPrepared(const Request& request,
                                    const Placement& placement,
                                    const std::vector<LinkDemand>& demands) {
  for (const auto& [machine, count] : placement.MachineCounts()) {
    slots_.Occupy(machine, count);
  }
  for (const LinkDemand& d : demands) {
    if (d.domain != topology::kNoVertex) {
      ledger_.AddBackup(d.link, request.id(), d.domain, d.mean, d.variance,
                        d.deterministic);
    } else if (d.deterministic > 0) {
      ledger_.AddDeterministic(d.link, request.id(), d.deterministic);
    } else {
      ledger_.AddStochastic(d.link, request.id(), d.mean, d.variance);
    }
  }
  live_.emplace(request.id(), LiveRequest{request, placement});
  BumpBuckets(TouchedBuckets(placement, demands));
}

util::Result<Placement> NetworkManager::AdmitPlacement(const Request& request,
                                                       Placement placement) {
  // Defense in depth: re-check shape, slots, and condition (4) before
  // committing.
  if (util::Status s = CheckPlacementShape(request, placement); !s.ok()) {
    return s;
  }
  const std::vector<LinkDemand> demands =
      ComputeLinkDemands(request, placement);
  if (util::Status s = CheckCapacity(placement, demands); !s.ok()) return s;
  CommitPrepared(request, placement, demands);
  return placement;
}

AdmissionProposal NetworkManager::Propose(
    const Request& request, const Allocator& allocator,
    const AdmissionSnapshot& snapshot) const {
  SVC_TRACE_SPAN("manager/propose");
  AdmissionProposal proposal;
  proposal.epoch = snapshot.epoch();
  util::Result<Placement> result =
      allocator.Allocate(request, snapshot.view.ledger(), snapshot.slots);
  if (!result) {
    proposal.status = result.status();
    proposal.rejection_monotone = allocator.monotone_rejections();
    return proposal;
  }
  if (options_.survivability && !result->survivable()) {
    result = PlanBackup(*topo_, request, std::move(*result),
                        snapshot.view.ledger(), snapshot.slots);
    if (!result) {
      proposal.status = result.status();
      // Never monotone: against fuller books the allocator can pick a
      // DIFFERENT primary whose backup does fit, so this rejection must be
      // re-run serially rather than absorbed.
      proposal.rejection_monotone = false;
      return proposal;
    }
  }
  proposal.ok = true;
  proposal.placement = std::move(*result);
  // The demands depend only on (topology, request, placement) — never on
  // ledger state — so computing them here off the commit thread is exact.
  proposal.demands = ComputeLinkDemands(request, proposal.placement);
  proposal.touched_mask = TouchedBuckets(proposal.placement, proposal.demands);
  // The allocator's evaluation of the CHOSEN placement also read the
  // zero-demand links on its hosts' root paths; in a tree those live in the
  // hosts' own buckets (already in touched_mask) or the core stripe.
  // Backup planning scans the whole fabric, so a survivable decision
  // depends on EVERY bucket's freshness: an all-ones mask disables the
  // shard-freshness fast path and falls back to exact epoch equality.
  proposal.fresh_mask =
      proposal.placement.survivable()
          ? ~uint64_t{0}
          : (shards_ == nullptr
                 ? proposal.touched_mask
                 : proposal.touched_mask |
                       shards_->BucketBit(shards_->core_stripe()));
  proposal.shard_epochs = snapshot.shard_epochs;
  return proposal;
}

util::Result<Placement> NetworkManager::CommitProposal(
    const Request& request, AdmissionProposal&& proposal) {
  SVC_TRACE_SPAN("manager/commit_proposal");
  assert(proposal.ok && "only successful proposals can be committed");
  if (util::Status s = CheckPlacementShape(request, proposal.placement);
      !s.ok()) {
    return s;
  }
  if (util::Status s = CheckCapacity(proposal.placement, proposal.demands);
      !s.ok()) {
    return s;
  }
  Placement placement = std::move(proposal.placement);
  CommitPrepared(request, placement, proposal.demands);
  return placement;
}

void NetworkManager::RecordAdmissionDecision(
    const Request& request, std::string_view allocator_name, bool admitted,
    std::string_view reason, obs::CommitPath path, int shard,
    uint64_t epoch_delta, const net::LinkLedger& books,
    const std::vector<LinkDemand>* demands,
    const obs::DecisionRecord::StageLatencies& stages) const {
  if (!obs::DecisionsEnabled()) return;
  obs::DecisionRecord rec;
  rec.tenant_id = request.id();
  rec.outcome =
      admitted ? obs::DecisionOutcome::kAdmit : obs::DecisionOutcome::kReject;
  if (path == obs::CommitPath::kFaultEvict) {
    rec.outcome = obs::DecisionOutcome::kEvict;
  }
  rec.path = path;
  rec.shard = static_cast<int16_t>(shard);
  rec.epoch_delta = static_cast<uint32_t>(
      std::min<uint64_t>(epoch_delta, std::numeric_limits<uint32_t>::max()));
  rec.set_allocator(allocator_name);
  rec.set_reason(reason);
  rec.stages = stages;
  if (demands != nullptr && !demands->empty()) {
    // Admitted (or validated) placement: the binding links are exactly the
    // links the placement's demand lands on; keep the k tightest by
    // condition-(4) slack at commit time.
    for (const LinkDemand& d : *demands) {
      rec.AddBindingLink(static_cast<int32_t>(d.link), books.Slack(d.link));
    }
  } else {
    // Rejection (no placement to attribute): greedy tightest-child descent
    // from the root records the most-loaded root-to-leaf path — O(fanout
    // along one path), never an O(V) scan, so the sharded-admission gate
    // survives with decisions enabled.
    topology::VertexId v = topo_->root();
    while (!topo_->is_machine(v)) {
      const std::vector<topology::VertexId>& kids = topo_->children(v);
      if (kids.empty()) break;
      topology::VertexId tightest = kids.front();
      double tightest_slack = books.Slack(tightest);
      for (size_t i = 1; i < kids.size(); ++i) {
        const double s = books.Slack(kids[i]);
        if (s < tightest_slack) {
          tightest = kids[i];
          tightest_slack = s;
        }
      }
      rec.AddBindingLink(static_cast<int32_t>(tightest), tightest_slack);
      v = tightest;
    }
  }
  obs::RecordDecision(rec);
}

util::Result<Placement> NetworkManager::Admit(const Request& request,
                                              const Allocator& allocator,
                                              obs::CommitPath decision_path) {
  SVC_TRACE_SPAN("manager/admit");
  const bool metrics = obs::MetricsEnabled();
  const bool decisions = obs::DecisionsEnabled();
  const bool flight = obs::FlightRecorder::Global().enabled();
  const bool timed = metrics || decisions || flight;
  std::chrono::steady_clock::time_point start;
  if (metrics) BumpAllocatorCounter(allocator.name(), "attempt");
  if (timed) start = std::chrono::steady_clock::now();
  double alloc_us = 0;  // Allocate share of the end-to-end latency.
  // Records the outcome counter plus the allocation-latency histogram (the
  // paper's allocation-time comparison, measured end to end per Admit),
  // the decision-provenance record, and the flight recorder's SLO window.
  auto finish = [&](const char* outcome, bool admitted, const char* reason,
                    const std::vector<LinkDemand>* demands) {
    double micros = 0;
    if (timed) {
      micros = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    }
    if (metrics) {
      BumpAllocatorCounter(allocator.name(), outcome);
      SVC_METRIC_HIST("manager/admit_latency_us", micros);
    }
    if (decisions) {
      obs::DecisionRecord::StageLatencies stages;
      stages.speculate_us = static_cast<float>(alloc_us);
      stages.apply_us = static_cast<float>(micros - alloc_us);
      RecordAdmissionDecision(request, allocator.name(), admitted, reason,
                              decision_path, /*shard=*/-1, /*epoch_delta=*/0,
                              ledger_, demands, stages);
    }
    if (flight) {
      obs::FlightRecorder::Global().ObserveAdmission(admitted, micros);
    }
  };
  if (live_.count(request.id())) {
    finish("fail", false, "duplicate-id", nullptr);
    return {util::ErrorCode::kFailedPrecondition,
            "request id already admitted: " + std::to_string(request.id())};
  }
  util::Result<Placement> result = allocator.Allocate(request, ledger_, slots_);
  if (timed) {
    alloc_us = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  }
  if (!result) {
    finish("fail", false, ReasonCode(result.status().code()), nullptr);
    return result;
  }
  if (options_.survivability && !result->survivable()) {
    // Survivable admission: the request is only admitted if a backup group
    // covering every failure domain of the chosen primary also fits.
    util::Result<Placement> protectable =
        PlanBackup(*topo_, request, std::move(*result), ledger_, slots_);
    if (!protectable) {
      if (metrics) SVC_METRIC_INC("manager/backup_plan_fail");
      finish("fail", false, ReasonCode(protectable.status().code()), nullptr);
      return protectable;
    }
    result = std::move(protectable);
  }
  // The demand recomputation below is only for provenance; AdmitPlacement
  // recomputes its own copy for the actual capacity re-check.
  std::vector<LinkDemand> demands;
  if (decisions) demands = ComputeLinkDemands(request, *result);
  util::Result<Placement> committed =
      AdmitPlacement(request, std::move(*result));
  if (!committed) {
    finish("fail", false, ReasonCode(committed.status().code()),
           decisions ? &demands : nullptr);
    // The allocator produced an invalid placement — surface it with the
    // allocator's name so the bug is attributable.
    return {util::ErrorCode::kFailedPrecondition,
            std::string(allocator.name()) + ": " +
                committed.status().message()};
  }
  finish("success", true, "ok", decisions ? &demands : nullptr);
  if (metrics && committed->subtree_root != topology::kNoVertex) {
    // Locality of the accepted placement (0 = a single machine's subtree).
    SVC_METRIC_HIST("manager/subtree_level",
                    static_cast<double>(topo_->level(committed->subtree_root)));
  }
  SVC_LOG(Debug) << "admitted " << request.Describe() << " via "
                 << allocator.name() << ": " << committed->Describe();
  return committed;
}

void NetworkManager::Release(RequestId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    // Still a no-op (idempotent release keeps departure paths simple), but
    // loud: a double release usually means a bookkeeping bug upstream.
    SVC_LOG(Warning) << "Release of unknown request id " << id;
    SVC_METRIC_INC("manager/release_unknown");
    return;
  }
  // Scoped invalidation: only the buckets this tenant actually touched
  // (its demand records' buckets plus its hosts' shards) go stale — an
  // unrelated shard's in-flight speculation stays fresh across the release.
  uint64_t mask = 0;
  ledger_.RemoveRequest(id, &mask);
  for (const auto& [machine, count] : it->second.placement.MachineCounts()) {
    slots_.Release(machine, count);
    mask |= shards_ == nullptr
                ? uint64_t{1}
                : uint64_t{1} << shards_->shard_of_vertex(machine);
  }
  live_.erase(it);
  BumpBuckets(mask);
}

bool NetworkManager::MachineBelow(topology::VertexId machine,
                                  topology::VertexId vertex) const {
  for (topology::VertexId v = machine; v != topo_->root();
       v = topo_->parent(v)) {
    if (v == vertex) return true;
  }
  return false;
}

util::Result<Placement> NetworkManager::TryPatch(const Request& request,
                                                 Placement placement,
                                                 topology::VertexId fault,
                                                 FaultKind kind) {
  // Which VMs did the fault strand?  Machine fault: VMs on down machines
  // (covers overlapping faults, not just `fault` itself).  Link fault: VMs
  // below the drained link — moving that whole side is what removes the
  // tenant's demand from the link.
  std::vector<int> lost;
  for (int vm = 0; vm < request.n(); ++vm) {
    const topology::VertexId machine = placement.vm_machine[vm];
    const bool stranded = kind == FaultKind::kMachine
                              ? !slots_.machine_up(machine)
                              : MachineBelow(machine, fault);
    if (stranded) lost.push_back(vm);
  }
  if (lost.empty()) return placement;

  // Candidate machines: up, with free slots, and (for a link fault) not
  // below the drained link again.  `local_free` tracks slots consumed by
  // earlier patched VMs; manager state is untouched until AdmitPlacement.
  std::unordered_map<topology::VertexId, int> local_free;
  for (topology::VertexId machine : topo_->machines()) {
    if (kind == FaultKind::kLink && MachineBelow(machine, fault)) continue;
    const int free = slots_.free_slots(machine);
    if (free > 0) local_free.emplace(machine, free);
  }

  const bool det = request.deterministic();
  for (int vm : lost) {
    const stats::Normal& d = request.demand(vm);
    const double mean_add = det ? 0 : d.mean;
    const double var_add = det ? 0 : d.variance;
    const double det_add = det ? d.mean : 0;
    // Greedy score: marginal occupancy of the target machine's uplink if
    // this VM's demand landed there alone.  Cheap, deterministic
    // (lowest-id tie-break), and only a heuristic — the real Lemma-1 split
    // demands are recomputed by AdmitPlacement's re-validation.
    topology::VertexId best = topology::kNoVertex;
    double best_score = std::numeric_limits<double>::infinity();
    for (topology::VertexId machine : topo_->machines()) {
      auto it = local_free.find(machine);
      if (it == local_free.end() || it->second <= 0) continue;
      const double score =
          ledger_.OccupancyWith(machine, mean_add, var_add, det_add);
      if (score < best_score ||
          (score == best_score && machine < best)) {
        best = machine;
        best_score = score;
      }
    }
    if (best == topology::kNoVertex) {
      return {util::ErrorCode::kInfeasible,
              "patch: no surviving machine with a free slot"};
    }
    placement.vm_machine[vm] = best;
    --local_free[best];
  }

  // Recompute the locality witness: lowest common ancestor of all hosts.
  topology::VertexId lca = placement.vm_machine[0];
  for (topology::VertexId machine : placement.vm_machine) {
    while (!topo_->IsInSubtree(machine, lca)) lca = topo_->parent(lca);
  }
  placement.subtree_root = lca;
  placement.max_occupancy = std::numeric_limits<double>::quiet_NaN();
  return placement;
}

util::Result<Placement> NetworkManager::TrySwitchover(
    const Request& request, const Placement& placement,
    topology::VertexId fault, FaultKind kind) const {
  if (!placement.survivable()) {
    return {util::ErrorCode::kInfeasible, "tenant has no backup group"};
  }
  const topology::VertexId backup = placement.backup_machine;
  if (!slots_.machine_up(backup) ||
      (kind == FaultKind::kLink && MachineBelow(backup, fault))) {
    return {util::ErrorCode::kInfeasible,
            "backup machine is down or behind the failed link"};
  }
  // VMs lost to the fault (same stranding rule as TryPatch).  The backup
  // group covers exactly one failure domain; overlapping faults that
  // strand VMs of several machines fall back to reactive recovery.
  std::vector<int> lost;
  topology::VertexId domain = topology::kNoVertex;
  for (int vm = 0; vm < request.n(); ++vm) {
    const topology::VertexId machine = placement.vm_machine[vm];
    const bool stranded = kind == FaultKind::kMachine
                              ? !slots_.machine_up(machine)
                              : MachineBelow(machine, fault);
    if (!stranded) continue;
    if (domain == topology::kNoVertex) domain = machine;
    if (machine != domain) {
      return {util::ErrorCode::kInfeasible,
              "lost VMs span multiple failure domains"};
    }
    lost.push_back(vm);
  }
  if (lost.empty()) return placement;
  if (static_cast<int>(lost.size()) > placement.backup_slots) {
    return {util::ErrorCode::kInfeasible, "backup group too small"};
  }
  Placement switched = placement;
  for (int vm : lost) switched.vm_machine[vm] = backup;
  switched.backup_machine = topology::kNoVertex;
  switched.backup_slots = 0;
  topology::VertexId lca = switched.vm_machine[0];
  for (topology::VertexId machine : switched.vm_machine) {
    while (!topo_->IsInSubtree(machine, lca)) lca = topo_->parent(lca);
  }
  switched.subtree_root = lca;
  switched.max_occupancy = std::numeric_limits<double>::quiet_NaN();
  // Re-protect the switched placement when a fresh backup fits; activate
  // unprotected otherwise (activation must not fail just because the
  // NEXT failure could not also be covered).
  if (options_.survivability) {
    util::Result<Placement> reprotected =
        PlanBackup(*topo_, request, switched, ledger_, slots_);
    if (reprotected) return *reprotected;
  }
  return switched;
}

util::Result<FaultOutcome> NetworkManager::HandleFault(
    FaultKind kind, topology::VertexId vertex, RecoveryPolicy policy,
    const Allocator& allocator) {
  SVC_TRACE_SPAN("manager/handle_fault");
  if (vertex <= 0 || vertex >= topo_->num_vertices() ||
      vertex == topo_->root()) {
    return {util::ErrorCode::kInvalidArgument,
            "fault vertex out of range: " + std::to_string(vertex)};
  }
  if (kind == FaultKind::kMachine && !topo_->is_machine(vertex)) {
    return {util::ErrorCode::kInvalidArgument,
            "machine fault on non-machine vertex " + std::to_string(vertex)};
  }
  if (failed_.count(vertex)) {
    return {util::ErrorCode::kFailedPrecondition,
            "vertex already failed: " + std::to_string(vertex)};
  }
  if (InFlightProposals() != 0) {
    // Speculation workers read epoch-stamped snapshots, so the drain below
    // would not corrupt them — but their proposals would validate against
    // books the fault is about to rewrite.  The pipeline must quiesce
    // (AdmitBatch returns) before the fault plane runs.
    return {util::ErrorCode::kFailedPrecondition,
            "fault handling requires a quiesced admission pipeline (" +
                std::to_string(InFlightProposals()) +
                " proposals in flight)"};
  }
  const bool metrics = obs::MetricsEnabled();
  std::chrono::steady_clock::time_point start;
  if (metrics) start = std::chrono::steady_clock::now();

  // Drain FIRST: once capacity is 0 (and, for machines, free slots are 0),
  // no allocator or patch below can re-land on the failed element, so each
  // intermediate state already satisfies StateValid().
  failed_.emplace(vertex, kind);
  ledger_.SetLinkState(vertex, false);
  if (kind == FaultKind::kMachine) slots_.SetMachineState(vertex, false);
  // Scoped drain bump: the failed element's own bucket (plus its shard's
  // slot state for a machine fault); the releases and re-admissions below
  // bump whatever they touch themselves.
  uint64_t drain_mask = uint64_t{1} << ledger_.bucket_of(vertex);
  if (shards_ != nullptr && kind == FaultKind::kMachine) {
    drain_mask |= uint64_t{1} << shards_->shard_of_vertex(vertex);
  }
  BumpBuckets(drain_mask);

  // Affected tenants.  A machine fault strands every tenant with a VM on
  // the machine (even single-machine tenants with no uplink demand); a
  // link fault strands exactly the tenants with demand records on it —
  // tenants entirely below keep all their traffic internal and survive.
  std::vector<RequestId> affected;
  if (kind == FaultKind::kMachine) {
    for (const auto& [id, live] : live_) {
      for (topology::VertexId machine : live.placement.vm_machine) {
        if (machine == vertex) {
          affected.push_back(id);
          break;
        }
      }
    }
    std::sort(affected.begin(), affected.end());
  } else {
    affected = ledger_.AffectedRequests(vertex);
  }

  // Phase 1: release every affected tenant, so phase 2's recoveries see
  // the union of their freed capacity (re-admission in ascending id order
  // keeps the whole procedure deterministic).
  std::vector<LiveRequest> stranded;
  stranded.reserve(affected.size());
  for (RequestId id : affected) {
    auto it = live_.find(id);
    assert(it != live_.end());
    stranded.push_back(it->second);
    Release(id);
  }

  FaultOutcome outcome;
  outcome.vertex = vertex;
  outcome.kind = kind;
  outcome.tenants.reserve(stranded.size());
  for (LiveRequest& live : stranded) {
    TenantOutcome tenant;
    tenant.id = live.request.id();
    switch (policy) {
      case RecoveryPolicy::kEvict:
        tenant.evict_reason = EvictReason::kPolicy;
        break;
      case RecoveryPolicy::kReallocate: {
        if (Admit(live.request, allocator)) {
          tenant.recovered = true;
        } else {
          tenant.evict_reason = EvictReason::kReallocationFailed;
        }
        break;
      }
      case RecoveryPolicy::kPatch: {
        util::Result<Placement> patched = TryPatch(
            live.request, std::move(live.placement), vertex, kind);
        if (patched &&
            AdmitPlacement(live.request, std::move(*patched))) {
          tenant.recovered = true;
        } else {
          tenant.evict_reason = EvictReason::kPatchFailed;
        }
        break;
      }
      case RecoveryPolicy::kSwitchover: {
        // Activate the pre-reserved backup group.  The activation is
        // transactional — AdmitPlacement re-validates shape, slots and
        // condition (4) before anything is written — and for a single
        // backup-covered failure it cannot fail: the pre-fault worst-case
        // state already reserved this exact post-failure demand.
        util::Result<Placement> switched =
            TrySwitchover(live.request, live.placement, vertex, kind);
        if (switched && AdmitPlacement(live.request, std::move(*switched))) {
          tenant.recovered = true;
          tenant.switched_over = true;
          break;
        }
        // No covering backup (unprotected tenant, overlapping failures,
        // backup itself down): reactive reallocate fallback.
        if (Admit(live.request, allocator)) {
          tenant.recovered = true;
        } else {
          tenant.evict_reason = EvictReason::kReallocationFailed;
        }
        break;
      }
    }
    if (tenant.evict_reason != EvictReason::kNone &&
        obs::DecisionsEnabled()) {
      // Eviction provenance: the faulted element itself is the binding
      // link (drained capacity ⇒ slack pinned at -1).
      const std::vector<LinkDemand> fault_link{{vertex, 0, 0, 0}};
      obs::DecisionRecord::StageLatencies stages;
      RecordAdmissionDecision(live.request, allocator.name(),
                              /*admitted=*/false,
                              ToString(tenant.evict_reason),
                              obs::CommitPath::kFaultEvict, /*shard=*/-1,
                              /*epoch_delta=*/0, ledger_, &fault_link, stages);
    }
    outcome.tenants.push_back(tenant);
  }

  if (metrics) {
    SVC_METRIC_INC("fault/events");
    SVC_METRIC_ADD("fault/affected_tenants",
                   static_cast<int64_t>(outcome.tenants.size()));
    SVC_METRIC_ADD("fault/evictions", outcome.evicted());
    SVC_METRIC_ADD("fault/switchovers", outcome.switched());
    const double micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    SVC_METRIC_HIST("fault/recovery_latency_us", micros);
  }
  SVC_LOG(Debug) << "fault on vertex " << vertex << " ("
                 << (kind == FaultKind::kMachine ? "machine" : "link")
                 << ", policy " << ToString(policy) << "): "
                 << outcome.tenants.size() << " affected, "
                 << outcome.recovered() << " recovered, "
                 << outcome.evicted() << " evicted";
  if (obs::FlightRecorder::Global().enabled()) {
    // Quiesced by construction here (InFlightProposals() == 0 was checked
    // above and the pipeline cannot restart mid-call), so freezing the
    // decision/trace rings races with nothing.
    if (!StateValid()) {
      char detail[96];
      std::snprintf(detail, sizeof detail, "vertex=%d post-fault", vertex);
      obs::FlightRecorder::Global().Trigger("state-invalid", detail);
    } else if (outcome.evicted() > 0) {
      char detail[96];
      std::snprintf(detail, sizeof detail,
                    "vertex=%d kind=%s affected=%zu evicted=%d", vertex,
                    kind == FaultKind::kMachine ? "machine" : "link",
                    outcome.tenants.size(), outcome.evicted());
      obs::FlightRecorder::Global().Trigger("fault", detail);
    }
  }
  assert(StateValid());
  return outcome;
}

util::Status NetworkManager::HandleRecovery(topology::VertexId vertex) {
  SVC_TRACE_SPAN("manager/handle_recovery");
  auto it = failed_.find(vertex);
  if (it == failed_.end()) {
    return {util::ErrorCode::kFailedPrecondition,
            "vertex not failed: " + std::to_string(vertex)};
  }
  if (InFlightProposals() != 0) {
    return {util::ErrorCode::kFailedPrecondition,
            "recovery requires a quiesced admission pipeline (" +
                std::to_string(InFlightProposals()) +
                " proposals in flight)"};
  }
  const bool machine = it->second == FaultKind::kMachine;
  ledger_.SetLinkState(vertex, true);
  if (machine) slots_.SetMachineState(vertex, true);
  failed_.erase(it);
  uint64_t recover_mask = uint64_t{1} << ledger_.bucket_of(vertex);
  if (shards_ != nullptr && machine) {
    recover_mask |= uint64_t{1} << shards_->shard_of_vertex(vertex);
  }
  BumpBuckets(recover_mask);
  SVC_METRIC_INC("fault/recoveries");
  SVC_LOG(Debug) << "recovered vertex " << vertex;
  assert(StateValid());
  return util::Status::Ok();
}

util::Result<FaultOutcome> NetworkManager::DrainMachine(
    topology::VertexId machine, const Allocator& allocator) {
  SVC_TRACE_SPAN("manager/drain_machine");
  if (machine <= 0 || machine >= topo_->num_vertices() ||
      !topo_->is_machine(machine)) {
    return {util::ErrorCode::kInvalidArgument,
            "drain vertex is not a machine: " + std::to_string(machine)};
  }
  if (failed_.count(machine)) {
    return {util::ErrorCode::kFailedPrecondition,
            "vertex already failed: " + std::to_string(machine)};
  }
  if (InFlightProposals() != 0) {
    return {util::ErrorCode::kFailedPrecondition,
            "drain requires a quiesced admission pipeline (" +
                std::to_string(InFlightProposals()) + " proposals in flight)"};
  }
  // Cordon FIRST: free slots read as 0, so no migration target or
  // re-protection below can land back on this machine.  The uplink stays
  // up — tenants keep their bandwidth until their own move commits, which
  // is what makes a drain outage-free.
  slots_.SetMachineState(machine, false);
  uint64_t cordon_mask = uint64_t{1} << ledger_.bucket_of(machine);
  if (shards_ != nullptr) {
    cordon_mask |= uint64_t{1} << shards_->shard_of_vertex(machine);
  }
  BumpBuckets(cordon_mask);

  // Tenants to move: anyone with a primary VM here, plus anyone whose
  // BACKUP group lives here (leaving it would silently void their coverage
  // once the machine goes down).
  std::vector<RequestId> affected;
  for (const auto& [id, live] : live_) {
    if (live.placement.backup_machine == machine) {
      affected.push_back(id);
      continue;
    }
    for (topology::VertexId m : live.placement.vm_machine) {
      if (m == machine) {
        affected.push_back(id);
        break;
      }
    }
  }
  std::sort(affected.begin(), affected.end());

  FaultOutcome outcome;
  outcome.vertex = machine;
  outcome.kind = FaultKind::kMachine;
  outcome.tenants.reserve(affected.size());
  for (RequestId id : affected) {
    auto it = live_.find(id);
    assert(it != live_.end());
    LiveRequest live = it->second;
    Release(id);
    TenantOutcome tenant;
    tenant.id = id;
    bool done = false;
    // Preferred move: activate the pre-reserved backup (primary VMs on the
    // drained machine read as stranded because the cordon closed it).
    util::Result<Placement> switched =
        TrySwitchover(live.request, live.placement, machine,
                      FaultKind::kMachine);
    if (switched && !std::equal(switched->vm_machine.begin(),
                                switched->vm_machine.end(),
                                live.placement.vm_machine.begin()) &&
        AdmitPlacement(live.request, *switched)) {
      tenant.recovered = true;
      tenant.switched_over = true;
      done = true;
    }
    if (!done && live.placement.backup_machine == machine) {
      // Backup-only occupant: keep the primary placement, re-home the
      // backup group elsewhere.
      Placement keep = live.placement;
      keep.backup_machine = topology::kNoVertex;
      keep.backup_slots = 0;
      util::Result<Placement> replanned =
          PlanBackup(*topo_, live.request, std::move(keep), ledger_, slots_);
      if (replanned && AdmitPlacement(live.request, std::move(*replanned))) {
        tenant.recovered = true;
        done = true;
      }
    }
    if (!done && Admit(live.request, allocator)) {
      tenant.recovered = true;
      done = true;
    }
    if (!done) {
      // Nowhere to go: restore the tenant in place (reopen the machine
      // just long enough to re-admit the original placement) and report it
      // unrecovered with no evict reason — the operator decides whether to
      // proceed with the teardown, which would then strand it.
      slots_.SetMachineState(machine, true);
      if (!AdmitPlacement(live.request, live.placement)) {
        tenant.evict_reason = EvictReason::kReallocationFailed;
      }
      slots_.SetMachineState(machine, false);
      BumpBuckets(cordon_mask);
    }
    outcome.tenants.push_back(tenant);
  }

  if (obs::MetricsEnabled()) {
    SVC_METRIC_INC("fault/drains");
    SVC_METRIC_ADD("fault/drain_migrated", outcome.recovered());
    SVC_METRIC_ADD("fault/switchovers", outcome.switched());
  }
  SVC_LOG(Debug) << "drained machine " << machine << ": "
                 << outcome.tenants.size() << " tenants, "
                 << outcome.recovered() << " migrated ("
                 << outcome.switched() << " via backup), "
                 << outcome.evicted() << " evicted";
  assert(StateValid());
  return outcome;
}

util::Status NetworkManager::UncordonMachine(topology::VertexId machine) {
  if (machine <= 0 || machine >= topo_->num_vertices() ||
      !topo_->is_machine(machine)) {
    return {util::ErrorCode::kInvalidArgument,
            "uncordon vertex is not a machine: " + std::to_string(machine)};
  }
  if (failed_.count(machine)) {
    return {util::ErrorCode::kFailedPrecondition,
            "machine is failed, not cordoned: " + std::to_string(machine)};
  }
  if (slots_.machine_up(machine)) return util::Status::Ok();
  slots_.SetMachineState(machine, true);
  uint64_t mask = uint64_t{1} << ledger_.bucket_of(machine);
  if (shards_ != nullptr) {
    mask |= uint64_t{1} << shards_->shard_of_vertex(machine);
  }
  BumpBuckets(mask);
  return util::Status::Ok();
}

const Placement* NetworkManager::placement_of(RequestId id) const {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second.placement;
}

const Request* NetworkManager::request_of(RequestId id) const {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second.request;
}

void NetworkManager::ForEachLive(
    const std::function<void(const Request&, const Placement&)>& visit)
    const {
  for (const auto& [id, live] : live_) {
    visit(live.request, live.placement);
  }
}

bool NetworkManager::StateValid() const {
  for (topology::VertexId v = 1; v < topo_->num_vertices(); ++v) {
    if (!ledger_.ValidWith(v, 0, 0, 0)) return false;
  }
  return true;
}

}  // namespace svc::core
