#include "svc/manager.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/demand_profile.h"
#include "util/logging.h"

namespace svc::core {

namespace {

// Per-algorithm admission counter, e.g. "alloc/svc-dp/success".  The name
// is composed on the stack and interned by the registry; lookups after the
// first take a shared lock and never allocate (the Allocate hot path is
// covered by the zero-allocation regression benches).
void BumpAllocatorCounter(std::string_view allocator, const char* outcome) {
  char name[96];
  std::snprintf(name, sizeof name, "alloc/%.*s/%s",
                static_cast<int>(allocator.size()), allocator.data(), outcome);
  obs::Registry::Global().GetCounter(name).Increment();
}

}  // namespace

NetworkManager::NetworkManager(const topology::Topology& topo, double epsilon)
    : topo_(&topo), ledger_(topo, epsilon), slots_(topo) {}

std::vector<LinkDemand> NetworkManager::ComputeLinkDemands(
    const Request& request, const Placement& placement) const {
  assert(placement.total_vms() == request.n());
  // Aggregate the per-VM moments below every link the placement touches by
  // walking each VM's machine up to the root.
  std::unordered_map<topology::VertexId, stats::Normal> below;
  for (int vm = 0; vm < request.n(); ++vm) {
    const stats::Normal& d = request.demand(vm);
    for (topology::VertexId link = placement.vm_machine[vm];
         link != topo_->root(); link = topo_->parent(link)) {
      stats::Normal& agg = below[link];
      agg.mean += d.mean;
      agg.variance += d.variance;
    }
  }
  const bool det = request.deterministic();
  std::vector<LinkDemand> demands;
  demands.reserve(below.size());
  for (const auto& [link, agg] : below) {
    const stats::Normal demand =
        SplitDemandFromBelow(request, agg.mean, agg.variance);
    if (demand.mean == 0 && demand.variance == 0) continue;  // all on one side
    if (det) {
      demands.push_back({link, 0, 0, demand.mean});
    } else {
      demands.push_back({link, demand.mean, demand.variance, 0});
    }
  }
  return demands;
}

util::Result<Placement> NetworkManager::AdmitPlacement(const Request& request,
                                                       Placement placement) {
  if (live_.count(request.id())) {
    return {util::ErrorCode::kFailedPrecondition,
            "request id already admitted: " + std::to_string(request.id())};
  }
  if (placement.total_vms() != request.n()) {
    return {util::ErrorCode::kFailedPrecondition,
            "placement has " + std::to_string(placement.total_vms()) +
                " VMs for a request of " + std::to_string(request.n())};
  }
  // Defense in depth: re-check slots and condition (4) before committing.
  std::unordered_map<topology::VertexId, int> counts;
  for (topology::VertexId machine : placement.vm_machine) {
    if (machine < 0 || machine >= topo_->num_vertices() ||
        !topo_->is_machine(machine)) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement names a non-machine vertex " +
                  std::to_string(machine)};
    }
    ++counts[machine];
  }
  for (const auto& [machine, count] : counts) {
    if (slots_.free_slots(machine) < count) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement exceeds free slots on machine " +
                  std::to_string(machine)};
    }
  }
  const std::vector<LinkDemand> demands =
      ComputeLinkDemands(request, placement);
  for (const LinkDemand& d : demands) {
    if (!ledger_.ValidWith(d.link, d.mean, d.variance, d.deterministic)) {
      return {util::ErrorCode::kFailedPrecondition,
              "placement violates condition (4) on link " +
                  std::to_string(d.link)};
    }
  }

  // Commit.
  for (const auto& [machine, count] : counts) slots_.Occupy(machine, count);
  for (const LinkDemand& d : demands) {
    if (d.deterministic > 0) {
      ledger_.AddDeterministic(d.link, request.id(), d.deterministic);
    } else {
      ledger_.AddStochastic(d.link, request.id(), d.mean, d.variance);
    }
  }
  live_.emplace(request.id(), LiveRequest{request, placement});
  return placement;
}

util::Result<Placement> NetworkManager::Admit(const Request& request,
                                              const Allocator& allocator) {
  SVC_TRACE_SPAN("manager/admit");
  const bool metrics = obs::MetricsEnabled();
  std::chrono::steady_clock::time_point start;
  if (metrics) {
    BumpAllocatorCounter(allocator.name(), "attempt");
    start = std::chrono::steady_clock::now();
  }
  // Records the outcome counter plus the allocation-latency histogram (the
  // paper's allocation-time comparison, measured end to end per Admit).
  auto finish = [&](const char* outcome) {
    if (!metrics) return;
    BumpAllocatorCounter(allocator.name(), outcome);
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    SVC_METRIC_HIST("manager/admit_latency_us", micros);
  };
  if (live_.count(request.id())) {
    finish("fail");
    return {util::ErrorCode::kFailedPrecondition,
            "request id already admitted: " + std::to_string(request.id())};
  }
  util::Result<Placement> result = allocator.Allocate(request, ledger_, slots_);
  if (!result) {
    finish("fail");
    return result;
  }
  util::Result<Placement> committed =
      AdmitPlacement(request, std::move(*result));
  if (!committed) {
    finish("fail");
    // The allocator produced an invalid placement — surface it with the
    // allocator's name so the bug is attributable.
    return {util::ErrorCode::kFailedPrecondition,
            std::string(allocator.name()) + ": " +
                committed.status().message()};
  }
  finish("success");
  if (metrics && committed->subtree_root != topology::kNoVertex) {
    // Locality of the accepted placement (0 = a single machine's subtree).
    SVC_METRIC_HIST("manager/subtree_level",
                    static_cast<double>(topo_->level(committed->subtree_root)));
  }
  SVC_LOG(Debug) << "admitted " << request.Describe() << " via "
                 << allocator.name() << ": " << committed->Describe();
  return committed;
}

void NetworkManager::Release(RequestId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  ledger_.RemoveRequest(id);
  for (const auto& [machine, count] : it->second.placement.MachineCounts()) {
    slots_.Release(machine, count);
  }
  live_.erase(it);
}

const Placement* NetworkManager::placement_of(RequestId id) const {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second.placement;
}

const Request* NetworkManager::request_of(RequestId id) const {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second.request;
}

void NetworkManager::ForEachLive(
    const std::function<void(const Request&, const Placement&)>& visit)
    const {
  for (const auto& [id, live] : live_) {
    visit(live.request, live.placement);
  }
}

bool NetworkManager::StateValid() const {
  for (topology::VertexId v = 1; v < topo_->num_vertices(); ++v) {
    if (!ledger_.ValidWith(v, 0, 0, 0)) return false;
  }
  return true;
}

}  // namespace svc::core
