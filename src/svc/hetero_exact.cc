#include "svc/hetero_exact.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <vector>

#include "svc/demand_profile.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

struct VertexState {
  // opt[mask]: min-max occupancy over T_v's links plus v's uplink when
  // exactly the VMs in `mask` are placed in T_v; +inf if impossible.
  std::vector<double> opt;
  // choice[i][mask]: submask handed to the i-th child.
  std::vector<std::vector<uint32_t>> choice;
};

}  // namespace

util::Result<Placement> HeteroExactAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > kMaxExactVms) {
    return {util::ErrorCode::kInvalidArgument,
            "exact DP is exponential; use HeteroHeuristicAllocator for N > " +
                std::to_string(kMaxExactVms)};
  }
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  const size_t num_masks = static_cast<size_t>(full) + 1;

  // Aggregate demand moments per subset, built incrementally from the
  // lowest set bit.
  std::vector<double> mask_mean(num_masks, 0.0);
  std::vector<double> mask_var(num_masks, 0.0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int bit = std::countr_zero(mask);
    const uint32_t rest = mask & (mask - 1);
    mask_mean[mask] = mask_mean[rest] + request.demand(bit).mean;
    mask_var[mask] = mask_var[rest] + request.demand(bit).variance;
  }

  const bool det = request.deterministic();
  // Occupancy of v's uplink with subset `mask` below it.
  auto uplink_cost = [&](topology::VertexId v, uint32_t mask) -> double {
    const stats::Normal demand =
        SplitDemandFromBelow(request, mask_mean[mask], mask_var[mask]);
    const double mean = det ? 0.0 : demand.mean;
    const double var = det ? 0.0 : demand.variance;
    const double d = det ? demand.mean : 0.0;
    if (!ledger.ValidWith(v, mean, var, d)) return kInfeasible;
    return ledger.OccupancyWith(v, mean, var, d);
  };

  std::vector<VertexState> state(topo.num_vertices());
  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;

  for (int level = 0; level <= topo.height(); ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      VertexState& vs = state[v];
      if (topo.is_machine(v)) {
        const int cap = slots.free_slots(v);
        vs.opt.assign(num_masks, kInfeasible);
        for (uint32_t mask = 0; mask <= full; ++mask) {
          if (std::popcount(mask) > cap) continue;
          vs.opt[mask] = uplink_cost(v, mask);
        }
      } else {
        const auto& children = topo.children(v);
        std::vector<double> current(num_masks, kInfeasible);
        current[0] = 0.0;
        vs.choice.resize(children.size());
        for (size_t i = 0; i < children.size(); ++i) {
          const std::vector<double>& child_opt = state[children[i]].opt;
          std::vector<double> next(num_masks, kInfeasible);
          std::vector<uint32_t>& choice = vs.choice[i];
          choice.assign(num_masks, 0);
          for (uint32_t mask = 0; mask <= full; ++mask) {
            // Enumerate submasks `sub` of `mask` given to child i (the
            // standard (sub - 1) & mask walk, including 0).
            uint32_t sub = mask;
            while (true) {
              const uint32_t prev = mask ^ sub;
              if (current[prev] != kInfeasible &&
                  child_opt[sub] != kInfeasible) {
                const double value = std::max(current[prev], child_opt[sub]);
                const bool better = optimize_ ? value < next[mask]
                                              : next[mask] == kInfeasible;
                if (better) {
                  next[mask] = value;
                  choice[mask] = sub;
                }
              }
              if (sub == 0) break;
              sub = (sub - 1) & mask;
            }
          }
          current = std::move(next);
        }
        vs.opt.assign(num_masks, kInfeasible);
        for (uint32_t mask = 0; mask <= full; ++mask) {
          if (current[mask] == kInfeasible) continue;
          if (v == topo.root()) {
            vs.opt[mask] = current[mask];
          } else {
            const double up = uplink_cost(v, mask);
            if (up != kInfeasible) vs.opt[mask] = std::max(current[mask], up);
          }
        }
      }

      if (vs.opt[full] != kInfeasible) {
        const bool better = optimize_ ? vs.opt[full] < best_value
                                      : best_vertex == topology::kNoVertex;
        if (better) {
          best_vertex = v;
          best_value = vs.opt[full];
        }
      }
    }
    if (best_vertex != topology::kNoVertex) break;  // lowest subtree
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree satisfies the probabilistic guarantee for " +
                request.Describe()};
  }

  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine.assign(n, topology::kNoVertex);
  std::vector<std::pair<topology::VertexId, uint32_t>> stack{
      {best_vertex, full}};
  while (!stack.empty()) {
    const auto [v, mask] = stack.back();
    stack.pop_back();
    if (mask == 0) continue;
    if (topo.is_machine(v)) {
      for (uint32_t rest = mask; rest;) {
        const int bit = std::countr_zero(rest);
        placement.vm_machine[bit] = v;
        rest &= rest - 1;
      }
      continue;
    }
    const auto& children = topo.children(v);
    uint32_t remaining = mask;
    for (size_t i = children.size(); i-- > 0;) {
      const uint32_t sub = state[v].choice[i][remaining];
      if (sub) stack.emplace_back(children[i], sub);
      remaining ^= sub;
    }
    assert(remaining == 0 && "vertex itself holds no VMs");
  }
  for (topology::VertexId machine : placement.vm_machine) {
    assert(machine != topology::kNoVertex);
    (void)machine;
  }
  return placement;
}

}  // namespace svc::core
