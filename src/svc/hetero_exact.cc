#include "svc/hetero_exact.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/demand_profile.h"
#include "svc/scratch_arena.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Flattened per-call DP tables, reused across calls (thread-local so a
// shared allocator instance serves concurrent sweep-runner replicas).
//
// opt[v*num_masks + mask]: min-max occupancy over T_v's links plus v's
// uplink when exactly the VMs in `mask` are placed in T_v; +inf if
// impossible.  choice rows are keyed by the *child* vertex (each non-root
// vertex is exactly one child edge): choice[c*num_masks + mask] is the
// submask handed to child c when its parent's stage receives `mask`.
//
// cand_mean/var/det hold the candidate moments per subset — what admitting
// `mask` below a link adds to its books.  They depend only on the request,
// never the vertex, so the O(2^n) min-of-normals evaluations happen once
// per call and the per-vertex uplink costs reduce to the fused occupancy
// kernel over these arrays.
struct ExactArena {
  std::vector<double> opt;
  std::vector<uint32_t> choice;
  std::vector<double> current;
  std::vector<double> next;
  std::vector<double> mask_mean;
  std::vector<double> mask_var;
  std::vector<double> cand_mean;
  std::vector<double> cand_var;
  std::vector<double> cand_det;
  std::vector<int> subtree_cap;
  std::vector<std::pair<topology::VertexId, uint32_t>> stack;
  size_t num_masks = 0;

  void Prepare(int num_vertices, size_t masks) {
    num_masks = masks;
    const size_t cells = static_cast<size_t>(num_vertices) * masks;
    if (opt.size() < cells) opt.resize(cells);
    if (choice.size() < cells) choice.resize(cells);
    if (current.size() < masks) {
      current.resize(masks);
      next.resize(masks);
    }
    if (mask_mean.size() < masks) {
      mask_mean.resize(masks);
      mask_var.resize(masks);
      cand_mean.resize(masks);
      cand_var.resize(masks);
      cand_det.resize(masks);
    }
    if (subtree_cap.size() < static_cast<size_t>(num_vertices)) {
      subtree_cap.resize(num_vertices);
    }
    stack.clear();
  }

  double* opt_row(topology::VertexId v) {
    return opt.data() + static_cast<size_t>(v) * num_masks;
  }
  uint32_t* choice_row(topology::VertexId v) {
    return choice.data() + static_cast<size_t>(v) * num_masks;
  }
};

ExactArena& LocalArena() {
  thread_local ExactArena arena;
  return arena;
}

}  // namespace

util::Result<Placement> HeteroExactAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  SVC_TRACE_SPAN("alloc/hetero_exact");
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > kMaxExactVms) {
    return {util::ErrorCode::kInvalidArgument,
            "exact DP is exponential; use HeteroHeuristicAllocator for N > " +
                std::to_string(kMaxExactVms)};
  }
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  const size_t num_masks = static_cast<size_t>(full) + 1;

  ExactArena& arena = LocalArena();
  arena.Prepare(topo.num_vertices(), num_masks);

  // Aggregate demand moments per subset, built incrementally from the
  // lowest set bit.
  double* mask_mean = arena.mask_mean.data();
  double* mask_var = arena.mask_var.data();
  {
    SVC_TRACE_SPAN("alloc/hetero_exact/mask_moments");
    mask_mean[0] = 0.0;
    mask_var[0] = 0.0;
    for (uint32_t mask = 1; mask <= full; ++mask) {
      const int bit = std::countr_zero(mask);
      const uint32_t rest = mask & (mask - 1);
      mask_mean[mask] = mask_mean[rest] + request.demand(bit).mean;
      mask_var[mask] = mask_var[rest] + request.demand(bit).variance;
    }
  }

  const bool det = request.deterministic();
  // Candidate moments per subset, vertex-independent (see ExactArena).
  double* cand_mean = arena.cand_mean.data();
  double* cand_var = arena.cand_var.data();
  double* cand_det = arena.cand_det.data();
  {
    SVC_TRACE_SPAN("alloc/hetero_exact/candidates");
    for (uint32_t mask = 0; mask <= full; ++mask) {
      const stats::Normal demand =
          SplitDemandFromBelow(request, mask_mean[mask], mask_var[mask]);
      cand_mean[mask] = det ? 0.0 : demand.mean;
      cand_var[mask] = det ? 0.0 : demand.variance;
      cand_det[mask] = det ? demand.mean : 0.0;
    }
  }

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;
  int64_t kernel_cells = 0;
  int64_t pruned_cells = 0;
  int* subtree_cap = arena.subtree_cap.data();

  {
    SVC_TRACE_SPAN("alloc/hetero_exact/search");
    for (int level = 0; level <= topo.height(); ++level) {
      for (topology::VertexId v : topo.vertices_at_level(level)) {
        double* vopt = arena.opt_row(v);
        if (topo.is_machine(v)) {
          const int cap = std::min(n, slots.free_slots(v));
          subtree_cap[v] = cap;
          if (cap >= n) {
            // Every subset fits: one dense kernel pass over the row.
            ledger.OccupancyWithBatch(v, cand_mean, cand_var, cand_det,
                                      static_cast<int>(num_masks), vopt);
            kernel_cells += static_cast<int64_t>(num_masks);
          } else {
            std::fill(vopt, vopt + num_masks, kInfeasible);
            for (uint32_t mask = 0; mask <= full; ++mask) {
              if (std::popcount(mask) > cap) {
                ++pruned_cells;
                continue;
              }
              vopt[mask] = ledger.OccupancyWith(v, cand_mean[mask],
                                                cand_var[mask],
                                                cand_det[mask]);
              ++kernel_cells;
            }
          }
        } else {
          const auto& children = topo.children(v);
          double* current = arena.current.data();
          std::fill(current, current + num_masks, kInfeasible);
          current[0] = 0.0;
          // Subsets larger than the slots folded in so far cannot be
          // realized at this stage, so their submask walks are skipped
          // outright — the exponential part of the DP only runs on cells
          // that can actually hold VMs.
          int cap_so_far = 0;
          for (topology::VertexId child_vertex : children) {
            cap_so_far = std::min(n, cap_so_far + subtree_cap[child_vertex]);
            const double* child_opt = arena.opt_row(child_vertex);
            double* next = arena.next.data();
            std::fill(next, next + num_masks, kInfeasible);
            uint32_t* choice = arena.choice_row(child_vertex);
            std::fill(choice, choice + num_masks, 0u);
            for (uint32_t mask = 0; mask <= full; ++mask) {
              if (std::popcount(mask) > cap_so_far) {
                ++pruned_cells;
                continue;
              }
              // Enumerate submasks `sub` of `mask` given to the child (the
              // standard (sub - 1) & mask walk, including 0).
              uint32_t sub = mask;
              while (true) {
                const uint32_t prev = mask ^ sub;
                if (current[prev] != kInfeasible &&
                    child_opt[sub] != kInfeasible) {
                  const double value = std::max(current[prev], child_opt[sub]);
                  const bool better = optimize_ ? value < next[mask]
                                                : next[mask] == kInfeasible;
                  if (better) {
                    next[mask] = value;
                    choice[mask] = sub;
                  }
                }
                if (sub == 0) break;
                sub = (sub - 1) & mask;
              }
            }
            std::swap(arena.current, arena.next);
            current = arena.current.data();
          }
          subtree_cap[v] = cap_so_far;
          const bool is_root = v == topo.root();
          for (uint32_t mask = 0; mask <= full; ++mask) {
            if (current[mask] == kInfeasible) {
              vopt[mask] = kInfeasible;
            } else if (is_root) {
              vopt[mask] = current[mask];
            } else {
              const double up = ledger.OccupancyWith(v, cand_mean[mask],
                                                     cand_var[mask],
                                                     cand_det[mask]);
              ++kernel_cells;
              vopt[mask] = up == kInfeasible ? kInfeasible
                                             : std::max(current[mask], up);
            }
          }
        }

        if (vopt[full] != kInfeasible) {
          const bool better = optimize_ ? vopt[full] < best_value
                                        : best_vertex == topology::kNoVertex;
          if (better) {
            best_vertex = v;
            best_value = vopt[full];
          }
        }
      }
      if (best_vertex != topology::kNoVertex) break;  // lowest subtree
    }
  }

  SVC_METRIC_ADD("alloc/kernel_cells", kernel_cells);
  SVC_METRIC_ADD("alloc/pruned_cells", pruned_cells);

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree satisfies the probabilistic guarantee for " +
                request.Describe()};
  }

  SVC_TRACE_SPAN("alloc/hetero_exact/reconstruct");
  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine = TakeVmBuffer();
  placement.vm_machine.assign(n, topology::kNoVertex);
  auto& stack = arena.stack;
  stack.emplace_back(best_vertex, full);
  while (!stack.empty()) {
    const auto [v, mask] = stack.back();
    stack.pop_back();
    if (mask == 0) continue;
    if (topo.is_machine(v)) {
      for (uint32_t rest = mask; rest;) {
        const int bit = std::countr_zero(rest);
        placement.vm_machine[bit] = v;
        rest &= rest - 1;
      }
      continue;
    }
    const auto& children = topo.children(v);
    uint32_t remaining = mask;
    for (size_t i = children.size(); i-- > 0;) {
      const uint32_t sub = arena.choice_row(children[i])[remaining];
      if (sub) stack.emplace_back(children[i], sub);
      remaining ^= sub;
    }
    assert(remaining == 0 && "vertex itself holds no VMs");
  }
  for (topology::VertexId machine : placement.vm_machine) {
    assert(machine != topology::kNoVertex);
    (void)machine;
  }
  return placement;
}

}  // namespace svc::core
