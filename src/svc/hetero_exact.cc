#include "svc/hetero_exact.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>
#include <vector>

#include "svc/demand_profile.h"
#include "svc/scratch_arena.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Flattened per-call DP tables, reused across calls (thread-local so a
// shared allocator instance serves concurrent sweep-runner replicas).
//
// opt[v*num_masks + mask]: min-max occupancy over T_v's links plus v's
// uplink when exactly the VMs in `mask` are placed in T_v; +inf if
// impossible.  choice rows are keyed by the *child* vertex (each non-root
// vertex is exactly one child edge): choice[c*num_masks + mask] is the
// submask handed to child c when its parent's stage receives `mask`.
struct ExactArena {
  std::vector<double> opt;
  std::vector<uint32_t> choice;
  std::vector<double> current;
  std::vector<double> next;
  std::vector<double> mask_mean;
  std::vector<double> mask_var;
  std::vector<std::pair<topology::VertexId, uint32_t>> stack;
  size_t num_masks = 0;

  void Prepare(int num_vertices, size_t masks) {
    num_masks = masks;
    const size_t cells = static_cast<size_t>(num_vertices) * masks;
    if (opt.size() < cells) opt.resize(cells);
    if (choice.size() < cells) choice.resize(cells);
    if (current.size() < masks) {
      current.resize(masks);
      next.resize(masks);
    }
    if (mask_mean.size() < masks) {
      mask_mean.resize(masks);
      mask_var.resize(masks);
    }
    stack.clear();
  }

  double* opt_row(topology::VertexId v) {
    return opt.data() + static_cast<size_t>(v) * num_masks;
  }
  uint32_t* choice_row(topology::VertexId v) {
    return choice.data() + static_cast<size_t>(v) * num_masks;
  }
};

ExactArena& LocalArena() {
  thread_local ExactArena arena;
  return arena;
}

}  // namespace

util::Result<Placement> HeteroExactAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > kMaxExactVms) {
    return {util::ErrorCode::kInvalidArgument,
            "exact DP is exponential; use HeteroHeuristicAllocator for N > " +
                std::to_string(kMaxExactVms)};
  }
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  const size_t num_masks = static_cast<size_t>(full) + 1;

  ExactArena& arena = LocalArena();
  arena.Prepare(topo.num_vertices(), num_masks);

  // Aggregate demand moments per subset, built incrementally from the
  // lowest set bit.
  double* mask_mean = arena.mask_mean.data();
  double* mask_var = arena.mask_var.data();
  mask_mean[0] = 0.0;
  mask_var[0] = 0.0;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int bit = std::countr_zero(mask);
    const uint32_t rest = mask & (mask - 1);
    mask_mean[mask] = mask_mean[rest] + request.demand(bit).mean;
    mask_var[mask] = mask_var[rest] + request.demand(bit).variance;
  }

  const bool det = request.deterministic();
  // Occupancy of v's uplink with subset `mask` below it.
  auto uplink_cost = [&](topology::VertexId v, uint32_t mask) -> double {
    const stats::Normal demand =
        SplitDemandFromBelow(request, mask_mean[mask], mask_var[mask]);
    const double mean = det ? 0.0 : demand.mean;
    const double var = det ? 0.0 : demand.variance;
    const double d = det ? demand.mean : 0.0;
    if (!ledger.ValidWith(v, mean, var, d)) return kInfeasible;
    return ledger.OccupancyWith(v, mean, var, d);
  };

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;

  for (int level = 0; level <= topo.height(); ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      double* vopt = arena.opt_row(v);
      if (topo.is_machine(v)) {
        const int cap = slots.free_slots(v);
        std::fill(vopt, vopt + num_masks, kInfeasible);
        for (uint32_t mask = 0; mask <= full; ++mask) {
          if (std::popcount(mask) > cap) continue;
          vopt[mask] = uplink_cost(v, mask);
        }
      } else {
        const auto& children = topo.children(v);
        double* current = arena.current.data();
        std::fill(current, current + num_masks, kInfeasible);
        current[0] = 0.0;
        for (topology::VertexId child_vertex : children) {
          const double* child_opt = arena.opt_row(child_vertex);
          double* next = arena.next.data();
          std::fill(next, next + num_masks, kInfeasible);
          uint32_t* choice = arena.choice_row(child_vertex);
          std::fill(choice, choice + num_masks, 0u);
          for (uint32_t mask = 0; mask <= full; ++mask) {
            // Enumerate submasks `sub` of `mask` given to the child (the
            // standard (sub - 1) & mask walk, including 0).
            uint32_t sub = mask;
            while (true) {
              const uint32_t prev = mask ^ sub;
              if (current[prev] != kInfeasible &&
                  child_opt[sub] != kInfeasible) {
                const double value = std::max(current[prev], child_opt[sub]);
                const bool better = optimize_ ? value < next[mask]
                                              : next[mask] == kInfeasible;
                if (better) {
                  next[mask] = value;
                  choice[mask] = sub;
                }
              }
              if (sub == 0) break;
              sub = (sub - 1) & mask;
            }
          }
          std::swap(arena.current, arena.next);
          current = arena.current.data();
        }
        for (uint32_t mask = 0; mask <= full; ++mask) {
          if (current[mask] == kInfeasible) {
            vopt[mask] = kInfeasible;
          } else if (v == topo.root()) {
            vopt[mask] = current[mask];
          } else {
            const double up = uplink_cost(v, mask);
            vopt[mask] = up == kInfeasible ? kInfeasible
                                           : std::max(current[mask], up);
          }
        }
      }

      if (vopt[full] != kInfeasible) {
        const bool better = optimize_ ? vopt[full] < best_value
                                      : best_vertex == topology::kNoVertex;
        if (better) {
          best_vertex = v;
          best_value = vopt[full];
        }
      }
    }
    if (best_vertex != topology::kNoVertex) break;  // lowest subtree
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree satisfies the probabilistic guarantee for " +
                request.Describe()};
  }

  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine = TakeVmBuffer();
  placement.vm_machine.assign(n, topology::kNoVertex);
  auto& stack = arena.stack;
  stack.emplace_back(best_vertex, full);
  while (!stack.empty()) {
    const auto [v, mask] = stack.back();
    stack.pop_back();
    if (mask == 0) continue;
    if (topo.is_machine(v)) {
      for (uint32_t rest = mask; rest;) {
        const int bit = std::countr_zero(rest);
        placement.vm_machine[bit] = v;
        rest &= rest - 1;
      }
      continue;
    }
    const auto& children = topo.children(v);
    uint32_t remaining = mask;
    for (size_t i = children.size(); i-- > 0;) {
      const uint32_t sub = arena.choice_row(children[i])[remaining];
      if (sub) stack.emplace_back(children[i], sub);
      remaining ^= sub;
    }
    assert(remaining == 0 && "vertex itself holds no VMs");
  }
  for (topology::VertexId machine : placement.vm_machine) {
    assert(machine != topology::kNoVertex);
    (void)machine;
  }
  return placement;
}

}  // namespace svc::core
