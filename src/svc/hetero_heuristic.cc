#include "svc/hetero_heuristic.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

#include "svc/demand_profile.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();
constexpr int kMaxHeuristicVms = 512;  // int16_t split indices + sanity bound

// Dense (a, b) table over substrings of the sorted VM sequence.
// a in [1, n+1], b in [0, n]; the entry (a, a-1) is the empty assignment.
class SubstringTable {
 public:
  explicit SubstringTable(int n)
      : n_(n), cells_((n + 2) * (n + 1), kInfeasible) {}

  double& at(int a, int b) { return cells_[a * (n_ + 1) + b]; }
  double at(int a, int b) const { return cells_[a * (n_ + 1) + b]; }

 private:
  int n_;
  std::vector<double> cells_;
};

struct VertexState {
  SubstringTable opt;  // min-max occupancy incl. own uplink, or +inf
  // choice[i][(a,b)] = split point k: child i receives <k, b>, earlier
  // stages keep <a, k-1>.
  std::vector<std::vector<int16_t>> choice;

  explicit VertexState(int n) : opt(n) {}
};

}  // namespace

util::Result<Placement> HeteroHeuristicAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > kMaxHeuristicVms) {
    return {util::ErrorCode::kInvalidArgument,
            "request too large for the substring heuristic"};
  }
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();

  // Sort VM indices ascending by the 95th percentile of their demand (the
  // paper's ordering for stochastic demands; for deterministic requests the
  // quantile is the constant bandwidth itself).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    return request.demand(lhs).Quantile(0.95) <
           request.demand(rhs).Quantile(0.95);
  });

  // Prefix moments over the sorted order: prefix[k] = aggregate of the
  // first k sorted VMs.
  std::vector<double> prefix_mean(n + 1, 0.0);
  std::vector<double> prefix_var(n + 1, 0.0);
  for (int k = 1; k <= n; ++k) {
    const stats::Normal& d = request.demand(order[k - 1]);
    prefix_mean[k] = prefix_mean[k - 1] + d.mean;
    prefix_var[k] = prefix_var[k - 1] + d.variance;
  }

  const bool det = request.deterministic();
  // Occupancy of v's uplink when sorted positions a..b sit below it.
  auto uplink_cost = [&](topology::VertexId v, int a, int b) -> double {
    const double below_mean = prefix_mean[b] - prefix_mean[a - 1];
    const double below_var = prefix_var[b] - prefix_var[a - 1];
    const stats::Normal demand =
        SplitDemandFromBelow(request, below_mean, below_var);
    const double mean = det ? 0.0 : demand.mean;
    const double var = det ? 0.0 : demand.variance;
    const double d = det ? demand.mean : 0.0;
    if (!ledger.ValidWith(v, mean, var, d)) return kInfeasible;
    return ledger.OccupancyWith(v, mean, var, d);
  };

  std::vector<VertexState> state(topo.num_vertices(), VertexState(n));
  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;

  for (int level = 0; level <= topo.height(); ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      VertexState& vs = state[v];
      if (topo.is_machine(v)) {
        const int cap = slots.free_slots(v);
        for (int a = 1; a <= n + 1; ++a) {
          const int b_hi = std::min(n, a - 1 + cap);
          for (int b = a - 1; b <= b_hi; ++b) {
            vs.opt.at(a, b) = uplink_cost(v, a, b);
          }
        }
      } else {
        const auto& children = topo.children(v);
        // current = assignments realizable by T_v^[i]; T_v^[0] holds only
        // the empty substring.
        SubstringTable current(n);
        for (int a = 1; a <= n + 1; ++a) current.at(a, a - 1) = 0.0;
        vs.choice.resize(children.size());
        for (size_t i = 0; i < children.size(); ++i) {
          const SubstringTable& child_opt = state[children[i]].opt;
          SubstringTable next(n);
          std::vector<int16_t>& choice = vs.choice[i];
          choice.assign((n + 2) * (n + 1), -1);
          for (int a = 1; a <= n + 1; ++a) {
            for (int b = a - 1; b <= n; ++b) {
              double best = kInfeasible;
              int best_k = -1;
              // Child i takes <k, b>; stages 0..i-1 keep <a, k-1>.
              for (int k = a; k <= b + 1; ++k) {
                const double left = current.at(a, k - 1);
                if (left == kInfeasible) continue;
                const double right = child_opt.at(k, b);
                if (right == kInfeasible) continue;
                const double value = std::max(left, right);
                if (optimize_ ? value < best : best_k < 0) {
                  best = value;
                  best_k = k;
                }
                if (!optimize_ && best_k >= 0) break;
              }
              if (best_k >= 0) {
                next.at(a, b) = best;
                choice[a * (n + 1) + b] = static_cast<int16_t>(best_k);
              }
            }
          }
          current = std::move(next);
        }
        for (int a = 1; a <= n + 1; ++a) {
          for (int b = a - 1; b <= n; ++b) {
            const double inner = current.at(a, b);
            if (inner == kInfeasible) continue;
            if (v == topo.root()) {
              vs.opt.at(a, b) = inner;
            } else {
              const double up = uplink_cost(v, a, b);
              if (up != kInfeasible) vs.opt.at(a, b) = std::max(inner, up);
            }
          }
        }
      }

      const double whole = vs.opt.at(1, n);
      if (whole != kInfeasible) {
        const bool better =
            optimize_ ? whole < best_value : best_vertex == topology::kNoVertex;
        if (better) {
          best_vertex = v;
          best_value = whole;
        }
      }
    }
    if (best_vertex != topology::kNoVertex) break;  // lowest subtree
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree accommodates the sorted VM sequence for " +
                request.Describe()};
  }

  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine.assign(n, topology::kNoVertex);
  std::vector<std::tuple<topology::VertexId, int, int>> stack{
      {best_vertex, 1, n}};
  while (!stack.empty()) {
    auto [v, a, b] = stack.back();
    stack.pop_back();
    if (b < a) continue;
    if (topo.is_machine(v)) {
      for (int pos = a; pos <= b; ++pos) {
        placement.vm_machine[order[pos - 1]] = v;
      }
      continue;
    }
    const auto& children = topo.children(v);
    for (size_t i = children.size(); i-- > 0;) {
      const int k = state[v].choice[i][a * (n + 1) + b];
      assert(k >= a && k <= b + 1 && "unreachable choice entry");
      if (k <= b) stack.emplace_back(children[i], k, b);
      b = k - 1;
    }
    assert(b == a - 1 && "vertex itself holds no VMs");
  }
  for (topology::VertexId machine : placement.vm_machine) {
    assert(machine != topology::kNoVertex);
    (void)machine;
  }
  return placement;
}

}  // namespace svc::core
