#include "svc/hetero_heuristic.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "svc/demand_profile.h"
#include "svc/scratch_arena.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();
constexpr int kMaxHeuristicVms = 512;  // int16_t split indices + sanity bound

// Flattened per-call DP tables over substrings of the sorted VM sequence,
// reused across calls (thread-local: one allocator instance can serve
// concurrent sweep-runner replicas).
//
// Each (a, b) table is a dense row of (n+2)*(n+1) cells indexed
// a*(n+1)+b with a in [1, n+1], b in [a-1, n]; the entry (a, a-1) is the
// empty assignment.  opt rows are keyed by vertex; choice rows are keyed
// by the *child* vertex (every non-root vertex is exactly one child edge,
// so the parent's stage-i row lives at row children[i]).
struct HeuristicArena {
  std::vector<double> opt;
  std::vector<int16_t> choice;
  std::vector<double> current;
  std::vector<double> next;
  std::vector<int> order;
  std::vector<double> prefix_mean;
  std::vector<double> prefix_var;
  std::vector<std::tuple<topology::VertexId, int, int>> stack;
  size_t table = 0;  // cells per (a, b) table

  void Prepare(int num_vertices, int n) {
    table = static_cast<size_t>(n + 2) * (n + 1);
    const size_t cells = static_cast<size_t>(num_vertices) * table;
    if (opt.size() < cells) opt.resize(cells);
    if (choice.size() < cells) choice.resize(cells);
    if (current.size() < table) {
      current.resize(table);
      next.resize(table);
    }
    if (order.size() < static_cast<size_t>(n)) order.resize(n);
    if (prefix_mean.size() < static_cast<size_t>(n + 1)) {
      prefix_mean.resize(n + 1);
      prefix_var.resize(n + 1);
    }
    stack.clear();
  }

  double* opt_row(topology::VertexId v) {
    return opt.data() + static_cast<size_t>(v) * table;
  }
  int16_t* choice_row(topology::VertexId v) {
    return choice.data() + static_cast<size_t>(v) * table;
  }
};

HeuristicArena& LocalArena() {
  thread_local HeuristicArena arena;
  return arena;
}

}  // namespace

util::Result<Placement> HeteroHeuristicAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > kMaxHeuristicVms) {
    return {util::ErrorCode::kInvalidArgument,
            "request too large for the substring heuristic"};
  }
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  HeuristicArena& arena = LocalArena();
  arena.Prepare(topo.num_vertices(), n);
  const auto idx = [n](int a, int b) {
    return static_cast<size_t>(a) * (n + 1) + b;
  };

  // Sort VM indices ascending by the 95th percentile of their demand (the
  // paper's ordering for stochastic demands; for deterministic requests the
  // quantile is the constant bandwidth itself).
  int* order = arena.order.data();
  std::iota(order, order + n, 0);
  std::stable_sort(order, order + n, [&](int lhs, int rhs) {
    return request.demand(lhs).Quantile(0.95) <
           request.demand(rhs).Quantile(0.95);
  });

  // Prefix moments over the sorted order: prefix[k] = aggregate of the
  // first k sorted VMs.
  double* prefix_mean = arena.prefix_mean.data();
  double* prefix_var = arena.prefix_var.data();
  prefix_mean[0] = 0.0;
  prefix_var[0] = 0.0;
  for (int k = 1; k <= n; ++k) {
    const stats::Normal& d = request.demand(order[k - 1]);
    prefix_mean[k] = prefix_mean[k - 1] + d.mean;
    prefix_var[k] = prefix_var[k - 1] + d.variance;
  }

  const bool det = request.deterministic();
  // Occupancy of v's uplink when sorted positions a..b sit below it.
  auto uplink_cost = [&](topology::VertexId v, int a, int b) -> double {
    const double below_mean = prefix_mean[b] - prefix_mean[a - 1];
    const double below_var = prefix_var[b] - prefix_var[a - 1];
    const stats::Normal demand =
        SplitDemandFromBelow(request, below_mean, below_var);
    const double mean = det ? 0.0 : demand.mean;
    const double var = det ? 0.0 : demand.variance;
    const double d = det ? demand.mean : 0.0;
    if (!ledger.ValidWith(v, mean, var, d)) return kInfeasible;
    return ledger.OccupancyWith(v, mean, var, d);
  };

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;

  for (int level = 0; level <= topo.height(); ++level) {
    for (topology::VertexId v : topo.vertices_at_level(level)) {
      double* vopt = arena.opt_row(v);
      std::fill(vopt, vopt + arena.table, kInfeasible);
      if (topo.is_machine(v)) {
        const int cap = slots.free_slots(v);
        for (int a = 1; a <= n + 1; ++a) {
          const int b_hi = std::min(n, a - 1 + cap);
          for (int b = a - 1; b <= b_hi; ++b) {
            vopt[idx(a, b)] = uplink_cost(v, a, b);
          }
        }
      } else {
        const auto& children = topo.children(v);
        // current = assignments realizable by T_v^[i]; T_v^[0] holds only
        // the empty substring.
        double* current = arena.current.data();
        std::fill(current, current + arena.table, kInfeasible);
        for (int a = 1; a <= n + 1; ++a) current[idx(a, a - 1)] = 0.0;
        for (topology::VertexId child_vertex : children) {
          const double* child_opt = arena.opt_row(child_vertex);
          double* next = arena.next.data();
          std::fill(next, next + arena.table, kInfeasible);
          int16_t* choice = arena.choice_row(child_vertex);
          std::fill(choice, choice + arena.table, int16_t{-1});
          for (int a = 1; a <= n + 1; ++a) {
            for (int b = a - 1; b <= n; ++b) {
              double best = kInfeasible;
              int best_k = -1;
              // The child takes <k, b>; earlier stages keep <a, k-1>.
              for (int k = a; k <= b + 1; ++k) {
                const double left = current[idx(a, k - 1)];
                if (left == kInfeasible) continue;
                const double right = child_opt[idx(k, b)];
                if (right == kInfeasible) continue;
                const double value = std::max(left, right);
                if (optimize_ ? value < best : best_k < 0) {
                  best = value;
                  best_k = k;
                }
                if (!optimize_ && best_k >= 0) break;
              }
              if (best_k >= 0) {
                next[idx(a, b)] = best;
                choice[idx(a, b)] = static_cast<int16_t>(best_k);
              }
            }
          }
          std::swap(arena.current, arena.next);
          current = arena.current.data();
        }
        for (int a = 1; a <= n + 1; ++a) {
          for (int b = a - 1; b <= n; ++b) {
            const double inner = current[idx(a, b)];
            if (inner == kInfeasible) continue;
            if (v == topo.root()) {
              vopt[idx(a, b)] = inner;
            } else {
              const double up = uplink_cost(v, a, b);
              if (up != kInfeasible) vopt[idx(a, b)] = std::max(inner, up);
            }
          }
        }
      }

      const double whole = vopt[idx(1, n)];
      if (whole != kInfeasible) {
        const bool better =
            optimize_ ? whole < best_value : best_vertex == topology::kNoVertex;
        if (better) {
          best_vertex = v;
          best_value = whole;
        }
      }
    }
    if (best_vertex != topology::kNoVertex) break;  // lowest subtree
  }

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree accommodates the sorted VM sequence for " +
                request.Describe()};
  }

  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine = TakeVmBuffer();
  placement.vm_machine.assign(n, topology::kNoVertex);
  auto& stack = arena.stack;
  stack.emplace_back(best_vertex, 1, n);
  while (!stack.empty()) {
    auto [v, a, b] = stack.back();
    stack.pop_back();
    if (b < a) continue;
    if (topo.is_machine(v)) {
      for (int pos = a; pos <= b; ++pos) {
        placement.vm_machine[order[pos - 1]] = v;
      }
      continue;
    }
    const auto& children = topo.children(v);
    for (size_t i = children.size(); i-- > 0;) {
      const int k = arena.choice_row(children[i])[idx(a, b)];
      assert(k >= a && k <= b + 1 && "unreachable choice entry");
      if (k <= b) stack.emplace_back(children[i], k, b);
      b = k - 1;
    }
    assert(b == a - 1 && "vertex itself holds no VMs");
  }
  for (topology::VertexId machine : placement.vm_machine) {
    assert(machine != topology::kNoVertex);
    (void)machine;
  }
  return placement;
}

}  // namespace svc::core
