#include "svc/hetero_heuristic.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/demand_profile.h"
#include "svc/scratch_arena.h"

namespace svc::core {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();
constexpr int kMaxHeuristicVms = 512;  // int16_t split indices + sanity bound

// Flattened per-call DP tables over substrings of the sorted VM sequence,
// reused across calls (thread-local: one allocator instance can serve
// concurrent sweep-runner replicas).
//
// Each (a, b) table is a dense row of (n+2)*(n+1) cells indexed
// a*(n+1)+b with a in [1, n+1], b in [a-1, n]; the entry (a, a-1) is the
// empty assignment.  opt rows are keyed by vertex; choice rows are keyed
// by the *child* vertex (every non-root vertex is exactly one child edge,
// so the parent's stage-i row lives at row children[i]).
//
// cand_mean/var/det hold the candidate moments of every substring — what
// admitting <a, b> below a link adds to its books.  They depend only on
// the request's prefix sums, never the vertex, so the O(n^2) min-of-normals
// evaluations happen once per call and every per-vertex occupancy row is a
// flat batch kernel over these arrays.
struct HeuristicArena {
  std::vector<double> opt;
  std::vector<int16_t> choice;
  std::vector<double> current;
  std::vector<double> next;
  std::vector<int> order;
  std::vector<double> prefix_mean;
  std::vector<double> prefix_var;
  std::vector<double> cand_mean;
  std::vector<double> cand_var;
  std::vector<double> cand_det;
  std::vector<double> row;  // uplink occupancy scratch
  std::vector<int> subtree_cap;
  std::vector<std::tuple<topology::VertexId, int, int>> stack;
  size_t table = 0;  // cells per (a, b) table

  void Prepare(int num_vertices, int n) {
    table = static_cast<size_t>(n + 2) * (n + 1);
    const size_t cells = static_cast<size_t>(num_vertices) * table;
    if (opt.size() < cells) opt.resize(cells);
    if (choice.size() < cells) choice.resize(cells);
    if (current.size() < table) {
      current.resize(table);
      next.resize(table);
      cand_mean.resize(table);
      cand_var.resize(table);
      cand_det.resize(table);
      row.resize(table);
    }
    if (order.size() < static_cast<size_t>(n)) order.resize(n);
    if (prefix_mean.size() < static_cast<size_t>(n + 1)) {
      prefix_mean.resize(n + 1);
      prefix_var.resize(n + 1);
    }
    if (subtree_cap.size() < static_cast<size_t>(num_vertices)) {
      subtree_cap.resize(num_vertices);
    }
    stack.clear();
  }

  double* opt_row(topology::VertexId v) {
    return opt.data() + static_cast<size_t>(v) * table;
  }
  int16_t* choice_row(topology::VertexId v) {
    return choice.data() + static_cast<size_t>(v) * table;
  }
};

HeuristicArena& LocalArena() {
  thread_local HeuristicArena arena;
  return arena;
}

}  // namespace

util::Result<Placement> HeteroHeuristicAllocator::Allocate(
    const Request& request, const net::LinkLedger& ledger,
    const SlotMap& slots) const {
  SVC_TRACE_SPAN("alloc/hetero_heuristic");
  if (util::Status s = request.Validate(); !s.ok()) return s;
  const int n = request.n();
  if (n > kMaxHeuristicVms) {
    return {util::ErrorCode::kInvalidArgument,
            "request too large for the substring heuristic"};
  }
  if (n > slots.total_free()) {
    return {util::ErrorCode::kCapacity, "not enough free VM slots"};
  }

  const topology::Topology& topo = ledger.topo();
  HeuristicArena& arena = LocalArena();
  arena.Prepare(topo.num_vertices(), n);
  const auto idx = [n](int a, int b) {
    return static_cast<size_t>(a) * (n + 1) + b;
  };

  // Sort VM indices ascending by the 95th percentile of their demand (the
  // paper's ordering for stochastic demands; for deterministic requests the
  // quantile is the constant bandwidth itself).
  int* order = arena.order.data();
  {
    SVC_TRACE_SPAN("alloc/hetero_heuristic/sort");
    std::iota(order, order + n, 0);
    std::stable_sort(order, order + n, [&](int lhs, int rhs) {
      return request.demand(lhs).Quantile(0.95) <
             request.demand(rhs).Quantile(0.95);
    });
  }

  // Prefix moments over the sorted order: prefix[k] = aggregate of the
  // first k sorted VMs.
  double* prefix_mean = arena.prefix_mean.data();
  double* prefix_var = arena.prefix_var.data();
  prefix_mean[0] = 0.0;
  prefix_var[0] = 0.0;
  for (int k = 1; k <= n; ++k) {
    const stats::Normal& d = request.demand(order[k - 1]);
    prefix_mean[k] = prefix_mean[k - 1] + d.mean;
    prefix_var[k] = prefix_var[k - 1] + d.variance;
  }

  const bool det = request.deterministic();
  // Candidate moments of every substring <a, b>, vertex-independent (see
  // HeuristicArena).  The min-of-normals evaluations here dominate the old
  // per-vertex uplink_cost closure; hoisting them leaves only the fused
  // occupancy kernel inside the per-vertex loops.
  double* cand_mean = arena.cand_mean.data();
  double* cand_var = arena.cand_var.data();
  double* cand_det = arena.cand_det.data();
  {
    SVC_TRACE_SPAN("alloc/hetero_heuristic/candidates");
    for (int a = 1; a <= n + 1; ++a) {
      for (int b = a - 1; b <= n; ++b) {
        const double below_mean = prefix_mean[b] - prefix_mean[a - 1];
        const double below_var = prefix_var[b] - prefix_var[a - 1];
        const stats::Normal demand =
            SplitDemandFromBelow(request, below_mean, below_var);
        const size_t i = idx(a, b);
        cand_mean[i] = det ? 0.0 : demand.mean;
        cand_var[i] = det ? 0.0 : demand.variance;
        cand_det[i] = det ? demand.mean : 0.0;
      }
    }
  }

  topology::VertexId best_vertex = topology::kNoVertex;
  double best_value = kInfeasible;
  int64_t kernel_cells = 0;
  int64_t pruned_cells = 0;
  int* subtree_cap = arena.subtree_cap.data();

  {
    SVC_TRACE_SPAN("alloc/hetero_heuristic/search");
    for (int level = 0; level <= topo.height(); ++level) {
      for (topology::VertexId v : topo.vertices_at_level(level)) {
        double* vopt = arena.opt_row(v);
        std::fill(vopt, vopt + arena.table, kInfeasible);
        if (topo.is_machine(v)) {
          const int cap = std::min(n, slots.free_slots(v));
          subtree_cap[v] = cap;
          for (int a = 1; a <= n + 1; ++a) {
            const int b_hi = std::min(n, a - 1 + cap);
            const size_t base = idx(a, a - 1);
            ledger.OccupancyWithBatch(v, cand_mean + base, cand_var + base,
                                      cand_det + base, b_hi - (a - 1) + 1,
                                      vopt + base);
            kernel_cells += b_hi - (a - 1) + 1;
            pruned_cells += n - b_hi;
          }
        } else {
          const auto& children = topo.children(v);
          // Substrings longer than the subtree's free slots can never be
          // realized by any stage of the fold, so their cells are skipped
          // outright (they stay at the kInfeasible fill).
          int cap_v = 0;
          for (topology::VertexId child_vertex : children) {
            cap_v += subtree_cap[child_vertex];
          }
          cap_v = std::min(cap_v, n);
          subtree_cap[v] = cap_v;
          // current = assignments realizable by T_v^[i]; T_v^[0] holds only
          // the empty substring.
          double* current = arena.current.data();
          std::fill(current, current + arena.table, kInfeasible);
          for (int a = 1; a <= n + 1; ++a) current[idx(a, a - 1)] = 0.0;
          for (topology::VertexId child_vertex : children) {
            const double* child_opt = arena.opt_row(child_vertex);
            double* next = arena.next.data();
            std::fill(next, next + arena.table, kInfeasible);
            int16_t* choice = arena.choice_row(child_vertex);
            std::fill(choice, choice + arena.table, int16_t{-1});
            for (int a = 1; a <= n + 1; ++a) {
              const int b_cap = std::min(n, a - 1 + cap_v);
              pruned_cells += n - b_cap;
              for (int b = a - 1; b <= b_cap; ++b) {
                double best = kInfeasible;
                int best_k = -1;
                // The child takes <k, b>; earlier stages keep <a, k-1>.
                for (int k = a; k <= b + 1; ++k) {
                  const double left = current[idx(a, k - 1)];
                  if (left == kInfeasible) continue;
                  const double right = child_opt[idx(k, b)];
                  if (right == kInfeasible) continue;
                  const double value = std::max(left, right);
                  if (optimize_ ? value < best : best_k < 0) {
                    best = value;
                    best_k = k;
                  }
                  if (!optimize_ && best_k >= 0) break;
                }
                if (best_k >= 0) {
                  next[idx(a, b)] = best;
                  choice[idx(a, b)] = static_cast<int16_t>(best_k);
                }
              }
            }
            std::swap(arena.current, arena.next);
            current = arena.current.data();
          }
          // Apply v's own uplink (root has none) across each a-row's finite
          // window; one batch kernel per row instead of a validity +
          // occupancy call pair per cell.
          double* up = arena.row.data();
          for (int a = 1; a <= n + 1; ++a) {
            int b_lo = a - 1;
            int b_hi = std::min(n, a - 1 + cap_v);
            while (b_lo <= b_hi && current[idx(a, b_lo)] == kInfeasible) {
              ++b_lo;
            }
            while (b_hi >= b_lo && current[idx(a, b_hi)] == kInfeasible) {
              --b_hi;
            }
            if (b_lo > b_hi) continue;
            if (v == topo.root()) {
              for (int b = b_lo; b <= b_hi; ++b) {
                vopt[idx(a, b)] = current[idx(a, b)];
              }
            } else {
              const size_t base = idx(a, b_lo);
              ledger.OccupancyWithBatch(v, cand_mean + base, cand_var + base,
                                        cand_det + base, b_hi - b_lo + 1,
                                        up + base);
              kernel_cells += b_hi - b_lo + 1;
              for (int b = b_lo; b <= b_hi; ++b) {
                const double inner = current[idx(a, b)];
                if (inner == kInfeasible) continue;
                const double u = up[idx(a, b)];
                if (u != kInfeasible) vopt[idx(a, b)] = std::max(inner, u);
              }
            }
          }
        }

        const double whole = vopt[idx(1, n)];
        if (whole != kInfeasible) {
          const bool better = optimize_ ? whole < best_value
                                        : best_vertex == topology::kNoVertex;
          if (better) {
            best_vertex = v;
            best_value = whole;
          }
        }
      }
      if (best_vertex != topology::kNoVertex) break;  // lowest subtree
    }
  }

  SVC_METRIC_ADD("alloc/kernel_cells", kernel_cells);
  SVC_METRIC_ADD("alloc/pruned_cells", pruned_cells);

  if (best_vertex == topology::kNoVertex) {
    return {util::ErrorCode::kInfeasible,
            "no subtree accommodates the sorted VM sequence for " +
                request.Describe()};
  }

  SVC_TRACE_SPAN("alloc/hetero_heuristic/reconstruct");
  Placement placement;
  placement.subtree_root = best_vertex;
  placement.max_occupancy = best_value;
  placement.vm_machine = TakeVmBuffer();
  placement.vm_machine.assign(n, topology::kNoVertex);
  auto& stack = arena.stack;
  stack.emplace_back(best_vertex, 1, n);
  while (!stack.empty()) {
    auto [v, a, b] = stack.back();
    stack.pop_back();
    if (b < a) continue;
    if (topo.is_machine(v)) {
      for (int pos = a; pos <= b; ++pos) {
        placement.vm_machine[order[pos - 1]] = v;
      }
      continue;
    }
    const auto& children = topo.children(v);
    for (size_t i = children.size(); i-- > 0;) {
      const int k = arena.choice_row(children[i])[idx(a, b)];
      assert(k >= a && k <= b + 1 && "unreachable choice entry");
      if (k <= b) stack.emplace_back(children[i], k, b);
      b = k - 1;
    }
    assert(b == a - 1 && "vertex itself holds no VMs");
  }
  for (topology::VertexId machine : placement.vm_machine) {
    assert(machine != topology::kNoVertex);
    (void)machine;
  }
  return placement;
}

}  // namespace svc::core
