// Heuristic allocation for heterogeneous SVC requests (paper Section V-B,
// "Heuristic allocation algorithm").
//
// The exact DP is exponential because a subtree's allocable VM set can hold
// any of the 2^N subsets.  The heuristic bounds it to *substrings* of the
// demand-sorted VM sequence: VMs are ordered ascending by the 95th
// percentile of their bandwidth demand, and a subtree may only be assigned
// a set of consecutive VMs <a, b> of that order — the structure a first-fit
// pass would produce.  There are O(N^2) substrings, each combination step
// tries O(N) split points, so the whole search is O(|V| * Delta * N^4)
// while still performing Algorithm 1's min-max occupancy optimization over
// the restricted space.
#pragma once

#include "svc/allocator.h"

namespace svc::core {

class HeteroHeuristicAllocator : public Allocator {
 public:
  // `optimize_occupancy` = false degrades to a pure first-fit-over-
  // substrings feasibility search (for ablation).
  explicit HeteroHeuristicAllocator(bool optimize_occupancy = true)
      : optimize_(optimize_occupancy) {}

  std::string_view name() const override { return "hetero-heuristic"; }

  util::Result<Placement> Allocate(const Request& request,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots) const override;

 private:
  bool optimize_;
};

}  // namespace svc::core
