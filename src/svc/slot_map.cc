#include "svc/slot_map.h"

namespace svc::core {

SlotMap::SlotMap(const topology::Topology& topo) : topo_(&topo) {
  assert(topo.finalized());
  free_.resize(topo.num_vertices(), 0);
  failed_.resize(topo.num_vertices(), 0);
  int total = 0;
  for (topology::VertexId machine : topo.machines()) {
    free_[machine] = topo.vm_slots(machine);
    total += free_[machine];
  }
  total_free_.store(total, std::memory_order_relaxed);
}

void SlotMap::SetMachineState(topology::VertexId machine, bool up) {
  assert(topo_->is_machine(machine));
  if (machine_up(machine) == up) return;
  if (up) {
    failed_[machine] = 0;
    total_free_.fetch_add(free_[machine], std::memory_order_relaxed);
  } else {
    failed_[machine] = 1;
    total_free_.fetch_sub(free_[machine], std::memory_order_relaxed);
  }
}

void SlotMap::Occupy(topology::VertexId machine, int count) {
  assert(count >= 0);
  assert(topo_->is_machine(machine));
  assert(!failed_[machine] && "occupying slots on a failed machine");
  assert(free_[machine] >= count && "occupying more slots than free");
  free_[machine] -= count;
  total_free_.fetch_sub(count, std::memory_order_relaxed);
}

void SlotMap::Release(topology::VertexId machine, int count) {
  assert(count >= 0);
  assert(topo_->is_machine(machine));
  assert(free_[machine] + count <= topo_->vm_slots(machine) &&
         "releasing more slots than the machine has");
  free_[machine] += count;
  // A failed machine's free slots are invisible until recovery; its
  // total_free contribution is restored by SetMachineState(up).
  if (!failed_[machine]) total_free_.fetch_add(count, std::memory_order_relaxed);
}

void SlotMap::AssignMachinesFrom(
    const SlotMap& other, const std::vector<topology::VertexId>& machines) {
  assert(topo_ == other.topo_);
  int delta = 0;
  for (topology::VertexId m : machines) {
    delta -= failed_[m] ? 0 : free_[m];
    free_[m] = other.free_[m];
    failed_[m] = other.failed_[m];
    delta += failed_[m] ? 0 : free_[m];
  }
  total_free_.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace svc::core
