// Per-link demand moments induced by splitting a request across a link.
//
// Removing link L from the tree splits a request's N VMs into a set below L
// and a set above; the demand the request places on L is
// min(B(below), B(above)) (paper Section IV-A).  This file provides:
//
//   * SplitDemand   — the generic moments of that min for arbitrary
//                     aggregate distributions (heterogeneous model);
//   * HomogeneousProfile — precomputed tables mu_r(m), var_r(m) for the
//                     homogeneous model, indexed by the count m below L,
//                     making the allocator DP's occupancy checks O(1);
//   * the deterministic amount min(m, N-m) * B for sigma = 0 requests.
#pragma once

#include <vector>

#include "stats/min_normal.h"
#include "stats/normal.h"
#include "svc/request.h"

namespace svc::core {

// Moments of min(X, Y) where X is the aggregate demand below the link and Y
// the aggregate above.  Either side with zero mean and variance means "no
// VMs on that side": the link carries no traffic for this request.
stats::Normal SplitDemand(const stats::Normal& below,
                          const stats::Normal& above);

// Demand moments of a request on a link given the aggregate moments of the
// VMs placed below it.  The above-side aggregate is the request total minus
// the below side.
stats::Normal SplitDemandFromBelow(const Request& request, double below_mean,
                                   double below_variance);

class HomogeneousProfile {
 public:
  // Empty profile; call Reset() before use.  Exists so callers can keep a
  // long-lived (e.g. thread-local) instance whose table capacity is reused
  // across requests instead of reallocating per Allocate() call.
  HomogeneousProfile() = default;

  // Precondition: request.homogeneous().
  explicit HomogeneousProfile(const Request& request) { Reset(request); }

  // Rebuilds the tables for `request`, reusing the existing storage.
  void Reset(const Request& request);

  int n() const { return n_; }
  bool deterministic() const { return deterministic_; }

  // Moments of the request's demand on a link with m of the N VMs below it,
  // m in [0, N].  Zero at m == 0 and m == N.
  const stats::Normal& LinkDemand(int m) const { return table_[m]; }

  // Contribution to the link's books: deterministic requests reserve
  // mean(m) in D_L; stochastic ones add (mean, var) records.  These helpers
  // let allocator code treat both uniformly.
  double MeanAdd(int m) const {
    return deterministic_ ? 0.0 : table_[m].mean;
  }
  double VarAdd(int m) const { return deterministic_ ? 0.0 : table_[m].variance; }
  double DetAdd(int m) const { return deterministic_ ? table_[m].mean : 0.0; }

 private:
  int n_ = 0;
  bool deterministic_ = false;
  std::vector<stats::Normal> table_;  // index m = 0..n
};

}  // namespace svc::core
