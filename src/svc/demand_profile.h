// Per-link demand moments induced by splitting a request across a link.
//
// Removing link L from the tree splits a request's N VMs into a set below L
// and a set above; the demand the request places on L is
// min(B(below), B(above)) (paper Section IV-A).  This file provides:
//
//   * SplitDemand   — the generic moments of that min for arbitrary
//                     aggregate distributions (heterogeneous model);
//   * HomogeneousProfile — precomputed tables mu_r(m), var_r(m) for the
//                     homogeneous model, indexed by the count m below L,
//                     making the allocator DP's occupancy checks O(1);
//   * the deterministic amount min(m, N-m) * B for sigma = 0 requests.
#pragma once

#include <vector>

#include "stats/min_normal.h"
#include "stats/normal.h"
#include "svc/request.h"

namespace svc::core {

// Moments of min(X, Y) where X is the aggregate demand below the link and Y
// the aggregate above.  Either side with zero mean and variance means "no
// VMs on that side": the link carries no traffic for this request.
stats::Normal SplitDemand(const stats::Normal& below,
                          const stats::Normal& above);

// Demand moments of a request on a link given the aggregate moments of the
// VMs placed below it.  The above-side aggregate is the request total minus
// the below side.
stats::Normal SplitDemandFromBelow(const Request& request, double below_mean,
                                   double below_variance);

class HomogeneousProfile {
 public:
  // Empty profile; call Reset() before use.  Exists so callers can keep a
  // long-lived (e.g. thread-local) instance whose table capacity is reused
  // across requests instead of reallocating per Allocate() call.
  HomogeneousProfile() = default;

  // Precondition: request.homogeneous().
  explicit HomogeneousProfile(const Request& request) { Reset(request); }

  // Rebuilds the tables for `request`, reusing the existing storage.
  void Reset(const Request& request);

  int n() const { return n_; }
  bool deterministic() const { return deterministic_; }

  // Moments of the request's demand on a link with m of the N VMs below it,
  // m in [0, N].  Zero at m == 0 and m == N.
  const stats::Normal& LinkDemand(int m) const { return table_[m]; }

  // Contribution to the link's books: deterministic requests reserve
  // mean(m) in D_L; stochastic ones add (mean, var) records.  These helpers
  // let allocator code treat both uniformly.
  double MeanAdd(int m) const {
    return deterministic_ ? 0.0 : table_[m].mean;
  }
  double VarAdd(int m) const { return deterministic_ ? 0.0 : table_[m].variance; }
  double DetAdd(int m) const { return deterministic_ ? table_[m].mean : 0.0; }

  // The same contributions as flat arrays indexed by m = 0..n, the shape
  // LinkLedger::OccupancyWithBatch consumes.  Precomputed once per Reset so
  // the allocator DP evaluates a whole uplink-cost row in one kernel pass.
  const double* mean_adds() const { return mean_add_.data(); }
  const double* var_adds() const { return var_add_.data(); }
  const double* det_adds() const { return det_add_.data(); }

  // Verified monotone segments of the candidate moments: all three arrays
  // are non-decreasing on [0, rise_end] and non-increasing on
  // [fall_begin, n] (checked element-wise in Reset, not assumed from the
  // min-of-normals shape).  Within those segments link feasibility is
  // monotone, which is what licenses the allocators' frontier binary
  // search; indices in (rise_end, fall_begin) must be probed directly.
  int rise_end() const { return rise_end_; }
  int fall_begin() const { return fall_begin_; }

 private:
  int n_ = 0;
  bool deterministic_ = false;
  int rise_end_ = 0;
  int fall_begin_ = 0;
  std::vector<stats::Normal> table_;  // index m = 0..n
  std::vector<double> mean_add_;
  std::vector<double> var_add_;
  std::vector<double> det_add_;
};

}  // namespace svc::core
