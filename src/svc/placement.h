// The result of a VM allocation: which machine hosts each VM.
#pragma once

#include <string>
#include <vector>

#include "topology/topology.h"

namespace svc::core {

struct Placement {
  // vm_machine[i] is the machine hosting VM i (0-based VM index; for
  // homogeneous requests the index carries no meaning beyond identity).
  std::vector<topology::VertexId> vm_machine;

  // Root of the lowest subtree the allocation fits in (locality witness).
  topology::VertexId subtree_root = topology::kNoVertex;

  // The allocator's objective value: the maximum bandwidth-occupancy ratio
  // over the affected links *after* this placement is committed.  Filled by
  // optimizing allocators; NaN for allocators that do not track it.
  double max_occupancy = 0;

  // Survivable admission (docs/ROBUSTNESS.md "Survivability"): a backup slot
  // group of `backup_slots` empty slots on `backup_machine`, sized to absorb
  // the largest per-machine VM group of the primary placement, plus the
  // shared backup bandwidth the manager derives from it.  kNoVertex when the
  // placement carries no protection.
  topology::VertexId backup_machine = topology::kNoVertex;
  int backup_slots = 0;

  bool survivable() const { return backup_machine != topology::kNoVertex; }

  int total_vms() const { return static_cast<int>(vm_machine.size()); }

  // Slots per machine, in machine order, INCLUDING the backup slot group —
  // this is what slot occupancy / release and shard-touch computations key
  // on.  Primary-only counts come from iterating vm_machine.
  std::vector<std::pair<topology::VertexId, int>> MachineCounts() const;

  std::string Describe() const;
};

}  // namespace svc::core
