// NetworkManager: the paper's admission-control component.
//
// "A network manager, upon receiving a tenant request, performs admission
// control and VM allocation in the datacenter with physical links satisfying
// the bandwidth requirements in terms of the probabilistic constraint (1)."
//
// The manager owns the authoritative datacenter state (LinkLedger +
// SlotMap), delegates placement search to an Allocator, re-validates the
// returned placement (defense in depth against allocator bugs), and commits
// it atomically: VM slots are occupied and per-link demand records are
// written in one step, and Release() undoes exactly that step.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link_ledger.h"
#include "svc/allocator.h"
#include "svc/placement.h"
#include "svc/request.h"
#include "svc/slot_map.h"
#include "util/result.h"

namespace svc::core {

// One link demand a committed request induces.
struct LinkDemand {
  topology::VertexId link;
  double mean;         // stochastic mean (0 for deterministic requests)
  double variance;     // stochastic variance (0 for deterministic requests)
  double deterministic;  // rate-limited reservation (0 for stochastic)
};

class NetworkManager {
 public:
  NetworkManager(const topology::Topology& topo, double epsilon);

  const topology::Topology& topo() const { return *topo_; }
  const net::LinkLedger& ledger() const { return ledger_; }
  const SlotMap& slots() const { return slots_; }
  double epsilon() const { return ledger_.epsilon(); }

  // Runs the allocator and, on success, commits the placement.  Errors pass
  // through from the allocator; a placement that fails re-validation is
  // reported as kFailedPrecondition (an allocator bug, surfaced loudly).
  util::Result<Placement> Admit(const Request& request,
                                const Allocator& allocator);

  // Validates and commits an externally produced placement (snapshot
  // restore, external placement services).  Same checks as Admit's
  // re-validation; on any failure nothing is committed.
  util::Result<Placement> AdmitPlacement(const Request& request,
                                         Placement placement);

  // Releases every slot and demand record of the request.  Unknown ids are
  // ignored (idempotent).
  void Release(RequestId id);

  bool IsLive(RequestId id) const { return live_.count(id) > 0; }
  size_t live_count() const { return live_.size(); }
  const Placement* placement_of(RequestId id) const;
  const Request* request_of(RequestId id) const;

  // Visits every live tenant (iteration order unspecified).  Used by the
  // snapshot writer and diagnostics.
  void ForEachLive(
      const std::function<void(const Request&, const Placement&)>& visit)
      const;

  // The per-link demands a placement induces — exposed for tests and for
  // callers that want to inspect a placement without committing it.
  std::vector<LinkDemand> ComputeLinkDemands(const Request& request,
                                             const Placement& placement) const;

  // True iff condition (4) holds on every link with no additions — the
  // global invariant Admit/Release maintain.
  bool StateValid() const;

  // Maximum occupancy ratio over all links (Fig. 9's sample statistic).
  double MaxOccupancy() const { return ledger_.MaxOccupancy(); }

 private:
  struct LiveRequest {
    Request request;
    Placement placement;
  };

  const topology::Topology* topo_;
  net::LinkLedger ledger_;
  SlotMap slots_;
  std::unordered_map<RequestId, LiveRequest> live_;
};

}  // namespace svc::core
