// NetworkManager: the paper's admission-control component.
//
// "A network manager, upon receiving a tenant request, performs admission
// control and VM allocation in the datacenter with physical links satisfying
// the bandwidth requirements in terms of the probabilistic constraint (1)."
//
// The manager owns the authoritative datacenter state (LinkLedger +
// SlotMap), delegates placement search to an Allocator, re-validates the
// returned placement (defense in depth against allocator bugs), and commits
// it atomically: VM slots are occupied and per-link demand records are
// written in one step, and Release() undoes exactly that step.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ledger_view.h"
#include "net/link_ledger.h"
#include "net/shard_map.h"
#include "obs/decision_log.h"
#include "svc/allocator.h"
#include "svc/placement.h"
#include "svc/request.h"
#include "svc/slot_map.h"
#include "util/result.h"

namespace svc::core {

// One link demand a committed request induces.
struct LinkDemand {
  topology::VertexId link;
  double mean;         // stochastic mean (0 for deterministic requests)
  double variance;     // stochastic variance (0 for deterministic requests)
  double deterministic;  // rate-limited reservation (0 for stochastic)
  // kNoVertex: an always-on primary demand.  Otherwise a shared-backup
  // demand active only in the post-failure state of this machine
  // (docs/ROBUSTNESS.md "Survivability").
  topology::VertexId domain = topology::kNoVertex;
};

// Admission-wide policy knobs (NetworkManager::set_admission_options).
struct AdmissionOptions {
  // Survivable admission: every admitted placement must carry a backup slot
  // group plus shared backup bandwidth covering the failure of any single
  // primary machine; requests for which no backup fits are rejected.
  bool survivability = false;
};

// --- Concurrent admission pipeline (docs/CONCURRENCY.md) ---

class NetworkManager;

// Epoch-stamped immutable snapshot of the books an allocator reads: the
// ledger's per-link aggregates (net::LedgerView) plus a copy of the
// free-slot map.  Captured on the pipeline's commit thread, read by any
// number of speculation workers without locks.
struct AdmissionSnapshot {
  AdmissionSnapshot(const topology::Topology& topo, double epsilon);

  // Re-captures the manager's current aggregates and epoch.  Reuses the
  // snapshot's storage; must not run concurrently with readers of this
  // same snapshot (publish a fresh one instead).  On a sharded manager the
  // caller must have drained every shard commit queue (the rows of every
  // bucket are read).
  void Capture(const NetworkManager& manager);

  // Sharded partial re-capture: copies only the buckets whose epoch moved
  // since this snapshot's own capture (StaleBuckets), leaving the others'
  // rows as-is — by the per-bucket epoch invariant they are still equal to
  // the books'.  The caller must have drained the stale buckets' commit
  // queues.  Falls back to a full Capture when the manager is unsharded or
  // the bucket layout changed.
  void CaptureStale(const NetworkManager& manager);

  // Buckets whose epoch differs from this snapshot's recorded one (the
  // re-capture set), as a bit mask.
  uint64_t StaleBuckets(const NetworkManager& manager) const;

  uint64_t epoch() const { return view.epoch(); }

  net::LedgerView view;
  SlotMap slots;
  // Per-bucket epochs at capture time (one entry when unsharded).
  std::vector<uint64_t> shard_epochs;
};

// One speculative admission outcome: what the allocator decided against a
// snapshot, plus everything the commit stage needs to validate that
// decision against the authoritative books — the induced per-link demands
// and the epoch the speculation read.
struct AdmissionProposal {
  bool ok = false;       // the allocator returned a placement
  Placement placement;   // valid when ok
  util::Status status = util::Status::Ok();  // allocator error when !ok
  std::vector<LinkDemand> demands;  // induced demands of `placement`
  uint64_t epoch = 0;    // snapshot epoch the speculation read
  // Buckets the placement writes (demand links + host machines' shards);
  // bit 0 when unsharded.  The conflict-aware scheduler routes single-shard
  // masks to that shard's commit queue.
  uint64_t touched_mask = 1;
  // Buckets whose freshness the decision depends on: touched_mask plus the
  // core stripe (the zero-demand links on the hosts' root paths live in the
  // hosts' own buckets or the core).  Used by the monotone-placements
  // shard-freshness fast path.
  uint64_t fresh_mask = 1;
  // Per-bucket epochs the speculation read (filled for ok proposals).
  std::vector<uint64_t> shard_epochs;
  // For !ok proposals: whether this rejection is monotone in load — i.e.
  // guaranteed to repeat against any MORE-loaded books — so the pipeline may
  // absorb it without a serial re-run.  Allocator rejections inherit
  // Allocator::monotone_rejections(); survivable backup-planning rejections
  // are never monotone (a different primary on fuller books can rescue the
  // backup).
  bool rejection_monotone = false;
};

// --- Fault plane ---

// What physically failed.  A machine fault takes the machine's VM slots
// and its uplink down together; a link fault takes only the uplink of the
// named vertex down (the subtree below keeps its internal connectivity).
enum class FaultKind { kMachine, kLink };

// What the manager does with tenants stranded by a fault.
enum class RecoveryPolicy {
  kReallocate,  // release and re-admit the whole tenant via the allocator
  kPatch,       // keep surviving VMs, re-place only the lost ones
  kEvict,       // release and do not re-admit
  kSwitchover,  // activate the tenant's pre-reserved backup group; falls
                // back to kReallocate when no backup covers the fault
};

// Why a tenant was evicted during fault handling.
enum class EvictReason {
  kNone,                 // not evicted (recovered)
  kPolicy,               // RecoveryPolicy::kEvict
  kReallocationFailed,   // allocator found no valid placement post-fault
  kPatchFailed,          // no Lemma-1-consistent patch onto survivors
};

const char* ToString(RecoveryPolicy policy);
const char* ToString(EvictReason reason);
// Parses "reallocate" | "patch" | "evict" | "switchover"; false on unknown
// names.
bool ParseRecoveryPolicy(std::string_view name, RecoveryPolicy* out);

// Per-tenant outcome of one fault event.
struct TenantOutcome {
  net::RequestId id = 0;
  bool recovered = false;             // re-admitted (whole or patched)
  bool switched_over = false;         // recovered via its backup group
  EvictReason evict_reason = EvictReason::kNone;
};

// Everything one HandleFault call did, in deterministic (ascending
// request-id) order — replayable byte for byte under a fixed seed.
struct FaultOutcome {
  topology::VertexId vertex = topology::kNoVertex;
  FaultKind kind = FaultKind::kLink;
  std::vector<TenantOutcome> tenants;

  int recovered() const;
  int evicted() const;
  int switched() const;
};

class NetworkManager {
 public:
  NetworkManager(const topology::Topology& topo, double epsilon);

  // Movable (benchmarks build a pre-loaded manager and return it by value).
  // The epoch/in-flight atomics are copied by value: moving a manager with
  // proposals in flight is not supported.
  NetworkManager(NetworkManager&& other) noexcept
      : topo_(other.topo_),
        ledger_(std::move(other.ledger_)),
        slots_(std::move(other.slots_)),
        live_(std::move(other.live_)),
        failed_(std::move(other.failed_)),
        shards_(std::move(other.shards_)),
        shard_epochs_(std::move(other.shard_epochs_)),
        epoch_(other.epoch_.load(std::memory_order_acquire)),
        in_flight_(other.in_flight_.load(std::memory_order_acquire)),
        options_(other.options_) {
    assert(in_flight_.load(std::memory_order_relaxed) == 0);
  }

  const topology::Topology& topo() const { return *topo_; }
  const net::LinkLedger& ledger() const { return ledger_; }
  const SlotMap& slots() const { return slots_; }
  double epsilon() const { return ledger_.epsilon(); }

  // Admission-wide policy knobs.  Changing them does not touch committed
  // state; with a pipeline running, change only between windows (the knobs
  // are read during Propose/Admit).
  void set_admission_options(const AdmissionOptions& options) {
    options_ = options;
  }
  const AdmissionOptions& admission_options() const { return options_; }

  // Runs the allocator and, on success, commits the placement.  Errors pass
  // through from the allocator; a placement that fails re-validation is
  // reported as kFailedPrecondition (an allocator bug, surfaced loudly).
  // `decision_path` tags the decision-provenance record this call publishes
  // when obs::DecisionsEnabled() — kSerial for direct callers; the pipeline
  // passes kStaleRerun for its drained serial re-runs.
  util::Result<Placement> Admit(
      const Request& request, const Allocator& allocator,
      obs::CommitPath decision_path = obs::CommitPath::kSerial);

  // Validates and commits an externally produced placement (snapshot
  // restore, external placement services).  Same checks as Admit's
  // re-validation; on any failure nothing is committed.
  util::Result<Placement> AdmitPlacement(const Request& request,
                                         Placement placement);

  // Releases every slot and demand record of the request.  Unknown ids are
  // ignored (idempotent), but logged and counted under
  // `manager/release_unknown` so double-release bugs surface.
  void Release(RequestId id);

  // --- Sharding (docs/CONCURRENCY.md "Sharded fabric commit") ---

  // Installs an aggregation-level shard partition: per-bucket touched-link
  // bookkeeping in the ledger plus one epoch per bucket here, enabling the
  // pipeline's per-shard commit workers and scoped invalidation.  Requires
  // a quiesced pipeline (no in-flight proposals).  nullptr reverts to the
  // single-bucket layout.  Existing snapshots become stale (global bump).
  void ConfigureSharding(std::shared_ptr<const net::ShardMap> shards);
  const net::ShardMap* shard_map() const { return shards_.get(); }
  int num_shards() const { return shards_ ? shards_->num_shards() : 1; }

  // First-touch re-homing of the ledger's row storage onto the shard
  // workers' NUMA nodes (see net::LinkLedger::RehomeRows for the protocol
  // and docs/PERFORMANCE.md §7 for why).  Pure storage migration: no
  // aggregate, record, or epoch changes, so decisions are unaffected.
  // Requires a quiesced pipeline, same as ConfigureSharding.
  void RehomeLedgerRows(const net::LinkLedger::RowToucher& touch) {
    assert(InFlightProposals() == 0);
    ledger_.RehomeRows(touch);
  }

  // Per-bucket epochs (shards plus core stripe; one entry when unsharded).
  // Commit-thread state, like the books themselves: each entry records the
  // global epoch at the bucket's last mutation, so a bucket whose entry is
  // unchanged has bit-identical rows to any snapshot of it at that epoch.
  const std::vector<uint64_t>& shard_epochs() const { return shard_epochs_; }

  // Buckets a placement writes: its demand links' buckets plus its host
  // machines' shards.  Bit 0 when unsharded.
  uint64_t TouchedBuckets(const Placement& placement,
                          const std::vector<LinkDemand>& demands) const;

  // True iff every bucket in `mask` has the same epoch now as `epochs`
  // recorded (a layout mismatch counts as stale).
  bool BucketsFresh(uint64_t mask, const std::vector<uint64_t>& epochs) const;

  // --- Split commit (the pipeline's per-shard commit workers) ---
  //
  // A single-shard commit is split in two so the apply half can run on the
  // shard's worker while the sequencer moves on: PrepareShardCommit (commit
  // thread) does the live_-dependent half — duplicate-id/shape check, live
  // registration, epoch bumps — establishing the commit's place in request
  // order; ApplyShardCommit (any thread) re-validates capacity on exactly
  // the touched links/machines and writes the rows.  ApplyShardCommit is
  // safe concurrently with other Apply calls whose touched buckets are
  // disjoint, and with commit-thread work that stays off those buckets'
  // rows.  If the apply half fails (an allocator bug: epoch-fresh yet
  // invalid), nothing was written and the sequencer must undo the
  // registration with AbandonShardCommit.
  util::Status PrepareShardCommit(const Request& request,
                                  const AdmissionProposal& proposal);
  util::Result<Placement> ApplyShardCommit(const Request& request,
                                           AdmissionProposal&& proposal);
  void AbandonShardCommit(RequestId id);

  // --- Propose / commit (the concurrent admission pipeline) ---

  // Monotone version of the authoritative books, bumped by every mutation
  // (commit, release, fault, recovery).  A proposal whose epoch still
  // equals epoch() at commit time speculated against fresh state, so its
  // decision is exactly what a serial Admit would have produced.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Stage-2 speculation: runs `allocator` against the snapshot and derives
  // the induced link demands.  Writes nothing — safe to call from any
  // thread, concurrently with other Propose calls and with commit-thread
  // mutations.  Does NOT check for duplicate ids (live_ belongs to the
  // commit thread); CommitProposal catches those.
  AdmissionProposal Propose(const Request& request, const Allocator& allocator,
                            const AdmissionSnapshot& snapshot) const;

  // Stage-3 commit: re-validates the proposal against the authoritative
  // books — duplicate id, placement shape, slot counts, and condition (4)
  // on exactly the links the placement touches — and commits on success.
  // A kFailedPrecondition means the proposal no longer fits: a conflict
  // when its epoch is stale, an allocator bug when it is current.
  util::Result<Placement> CommitProposal(const Request& request,
                                         AdmissionProposal&& proposal);

  // In-flight speculation registration.  While the count is non-zero the
  // commit thread may keep committing, but checkpointing (snapshot
  // save/restore) and the fault-plane entry points refuse with
  // kFailedPrecondition — the pipeline must quiesce first.  Begin/End
  // pairing is the pipeline's responsibility.
  void BeginProposal() { in_flight_.fetch_add(1, std::memory_order_acq_rel); }
  void EndProposal() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
  int64_t InFlightProposals() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  // --- Fault plane ---

  // Takes the element at `vertex` down, releases every affected tenant
  // atomically (all releases precede all recoveries, so recovery sees the
  // full freed capacity), then drives `policy` per tenant in ascending
  // request-id order.  StateValid() holds on return — and at every point
  // in between, because the element is drained before anything else
  // happens, so no re-admission can land on it.  Errors: vertex out of
  // range / not a machine for kMachine / already failed.
  util::Result<FaultOutcome> HandleFault(FaultKind kind,
                                         topology::VertexId vertex,
                                         RecoveryPolicy policy,
                                         const Allocator& allocator);

  // Brings a failed element back up (capacity and, for machines, VM slots
  // are restored).  Surviving tenants are untouched; freed capacity simply
  // becomes admissible again.  Error if the vertex is not currently failed.
  util::Status HandleRecovery(topology::VertexId vertex);

  // Planned drain: cordons `machine` (slots close, link stays up — no
  // outage) and migrates its tenants off in ascending request-id order,
  // preferring a backup switchover when one covers the machine, else a full
  // reallocation.  A tenant that can move nowhere is restored in place and
  // reported unrecovered with EvictReason::kNone — the caller decides
  // whether to proceed with the teardown (which then strands it).  The
  // machine stays cordoned on return; follow with HandleFault to take it
  // down or UncordonMachine to reopen it.  Errors mirror HandleFault's
  // guards (range / kind / already failed / pipeline not quiesced).
  util::Result<FaultOutcome> DrainMachine(topology::VertexId machine,
                                          const Allocator& allocator);

  // Reopens a machine cordoned by DrainMachine (no-op if it is open; error
  // if it is actually failed).
  util::Status UncordonMachine(topology::VertexId machine);

  // Whether `vertex` is currently failed (as a machine or a link).
  bool IsFailed(topology::VertexId vertex) const {
    return failed_.count(vertex) > 0;
  }
  // Currently-failed vertices with their kinds, ascending by vertex id.
  const std::map<topology::VertexId, FaultKind>& Faults() const {
    return failed_;
  }

  bool IsLive(RequestId id) const { return live_.count(id) > 0; }
  size_t live_count() const { return live_.size(); }
  const Placement* placement_of(RequestId id) const;
  const Request* request_of(RequestId id) const;

  // Visits every live tenant (iteration order unspecified).  Used by the
  // snapshot writer and diagnostics.
  void ForEachLive(
      const std::function<void(const Request&, const Placement&)>& visit)
      const;

  // The per-link demands a placement induces — exposed for tests and for
  // callers that want to inspect a placement without committing it.
  std::vector<LinkDemand> ComputeLinkDemands(const Request& request,
                                             const Placement& placement) const;

  // Decision provenance (docs/OBSERVABILITY.md "Decision records"): builds
  // and publishes one obs::DecisionRecord for an admission decision.  When
  // the placement is known, binding links are the `demands` links with the
  // lowest condition-(4) slack evaluated on `books` at call time; for
  // rejections (`demands` null or empty) the record instead carries the
  // most-loaded root-to-leaf path of `books` — a greedy descent picking
  // the tightest child link per level, O(fanout along one path), so
  // recording a rejection never scans the fabric.  `books` is the ledger
  // the decision was taken against: the authoritative one for serial
  // admits and commits, the speculation snapshot's for pipeline
  // rejections (reading the authoritative rows there could race shard
  // appliers).  No-op unless obs::DecisionsEnabled().
  void RecordAdmissionDecision(
      const Request& request, std::string_view allocator_name, bool admitted,
      std::string_view reason, obs::CommitPath path, int shard,
      uint64_t epoch_delta, const net::LinkLedger& books,
      const std::vector<LinkDemand>* demands,
      const obs::DecisionRecord::StageLatencies& stages) const;

  // True iff condition (4) holds on every link with no additions — the
  // global invariant Admit/Release maintain.
  bool StateValid() const;

  // Maximum occupancy ratio over all links (Fig. 9's sample statistic).
  double MaxOccupancy() const { return ledger_.MaxOccupancy(); }

 private:
  struct LiveRequest {
    Request request;
    Placement placement;
  };

  // Structural half of admission validation: duplicate id, VM count, and
  // machine-vertex validity.  Must pass before ComputeLinkDemands may run.
  util::Status CheckPlacementShape(const Request& request,
                                   const Placement& placement) const;
  // Capacity half: free slots per machine plus condition (4) on each
  // touched link.  `demands` must be ComputeLinkDemands(request, placement).
  util::Status CheckCapacity(const Placement& placement,
                             const std::vector<LinkDemand>& demands) const;
  // Applies a fully validated placement: occupies slots, writes demand
  // records, registers the live tenant, bumps the touched buckets' epochs.
  void CommitPrepared(const Request& request, const Placement& placement,
                      const std::vector<LinkDemand>& demands);
  // Advances the global epoch and stamps every bucket in `mask` with the
  // new value — the scoped invalidation that keeps speculations against
  // untouched shards fresh.
  void BumpBuckets(uint64_t mask);
  void BumpEpoch() { BumpBuckets(~uint64_t{0}); }

  // True iff `machine`'s path to the root passes through `vertex`.
  bool MachineBelow(topology::VertexId machine,
                    topology::VertexId vertex) const;

  // Patch recovery: re-places only the VMs lost to the fault (machines
  // down, or below a failed link) onto surviving machines, greedily
  // minimizing the target machine-uplink occupancy.  The returned placement
  // still goes through AdmitPlacement, which recomputes the
  // Lemma-1-consistent split demands and re-validates condition (4).
  util::Result<Placement> TryPatch(const Request& request, Placement placement,
                                   topology::VertexId fault, FaultKind kind);

  // Switchover recovery: moves the VMs lost to the fault onto the tenant's
  // pre-reserved backup group, then re-protects the switched placement with
  // a fresh backup when one fits (returned unprotected otherwise).  Errors
  // when the tenant has no backup, the backup itself is down or lost to the
  // same fault, or the lost VMs span more than one machine (a backup group
  // covers exactly one failure domain).
  util::Result<Placement> TrySwitchover(const Request& request,
                                        const Placement& placement,
                                        topology::VertexId fault,
                                        FaultKind kind) const;

  const topology::Topology* topo_;
  net::LinkLedger ledger_;
  SlotMap slots_;
  std::unordered_map<RequestId, LiveRequest> live_;
  // Fault-plane state; ordered so Faults() listings are deterministic.
  std::map<topology::VertexId, FaultKind> failed_;
  // Shard partition (nullptr = unsharded) and per-bucket epochs; see
  // shard_epochs().  Written only on the commit thread.
  std::shared_ptr<const net::ShardMap> shards_;
  std::vector<uint64_t> shard_epochs_{0};
  // Books version + speculation registration (see epoch()/BeginProposal).
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int64_t> in_flight_{0};
  AdmissionOptions options_;
};

}  // namespace svc::core
