// NetworkManager: the paper's admission-control component.
//
// "A network manager, upon receiving a tenant request, performs admission
// control and VM allocation in the datacenter with physical links satisfying
// the bandwidth requirements in terms of the probabilistic constraint (1)."
//
// The manager owns the authoritative datacenter state (LinkLedger +
// SlotMap), delegates placement search to an Allocator, re-validates the
// returned placement (defense in depth against allocator bugs), and commits
// it atomically: VM slots are occupied and per-link demand records are
// written in one step, and Release() undoes exactly that step.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/link_ledger.h"
#include "svc/allocator.h"
#include "svc/placement.h"
#include "svc/request.h"
#include "svc/slot_map.h"
#include "util/result.h"

namespace svc::core {

// One link demand a committed request induces.
struct LinkDemand {
  topology::VertexId link;
  double mean;         // stochastic mean (0 for deterministic requests)
  double variance;     // stochastic variance (0 for deterministic requests)
  double deterministic;  // rate-limited reservation (0 for stochastic)
};

// --- Fault plane ---

// What physically failed.  A machine fault takes the machine's VM slots
// and its uplink down together; a link fault takes only the uplink of the
// named vertex down (the subtree below keeps its internal connectivity).
enum class FaultKind { kMachine, kLink };

// What the manager does with tenants stranded by a fault.
enum class RecoveryPolicy {
  kReallocate,  // release and re-admit the whole tenant via the allocator
  kPatch,       // keep surviving VMs, re-place only the lost ones
  kEvict,       // release and do not re-admit
};

// Why a tenant was evicted during fault handling.
enum class EvictReason {
  kNone,                 // not evicted (recovered)
  kPolicy,               // RecoveryPolicy::kEvict
  kReallocationFailed,   // allocator found no valid placement post-fault
  kPatchFailed,          // no Lemma-1-consistent patch onto survivors
};

const char* ToString(RecoveryPolicy policy);
const char* ToString(EvictReason reason);
// Parses "reallocate" | "patch" | "evict"; false on unknown names.
bool ParseRecoveryPolicy(std::string_view name, RecoveryPolicy* out);

// Per-tenant outcome of one fault event.
struct TenantOutcome {
  net::RequestId id = 0;
  bool recovered = false;             // re-admitted (whole or patched)
  EvictReason evict_reason = EvictReason::kNone;
};

// Everything one HandleFault call did, in deterministic (ascending
// request-id) order — replayable byte for byte under a fixed seed.
struct FaultOutcome {
  topology::VertexId vertex = topology::kNoVertex;
  FaultKind kind = FaultKind::kLink;
  std::vector<TenantOutcome> tenants;

  int recovered() const;
  int evicted() const;
};

class NetworkManager {
 public:
  NetworkManager(const topology::Topology& topo, double epsilon);

  const topology::Topology& topo() const { return *topo_; }
  const net::LinkLedger& ledger() const { return ledger_; }
  const SlotMap& slots() const { return slots_; }
  double epsilon() const { return ledger_.epsilon(); }

  // Runs the allocator and, on success, commits the placement.  Errors pass
  // through from the allocator; a placement that fails re-validation is
  // reported as kFailedPrecondition (an allocator bug, surfaced loudly).
  util::Result<Placement> Admit(const Request& request,
                                const Allocator& allocator);

  // Validates and commits an externally produced placement (snapshot
  // restore, external placement services).  Same checks as Admit's
  // re-validation; on any failure nothing is committed.
  util::Result<Placement> AdmitPlacement(const Request& request,
                                         Placement placement);

  // Releases every slot and demand record of the request.  Unknown ids are
  // ignored (idempotent), but logged and counted under
  // `manager/release_unknown` so double-release bugs surface.
  void Release(RequestId id);

  // --- Fault plane ---

  // Takes the element at `vertex` down, releases every affected tenant
  // atomically (all releases precede all recoveries, so recovery sees the
  // full freed capacity), then drives `policy` per tenant in ascending
  // request-id order.  StateValid() holds on return — and at every point
  // in between, because the element is drained before anything else
  // happens, so no re-admission can land on it.  Errors: vertex out of
  // range / not a machine for kMachine / already failed.
  util::Result<FaultOutcome> HandleFault(FaultKind kind,
                                         topology::VertexId vertex,
                                         RecoveryPolicy policy,
                                         const Allocator& allocator);

  // Brings a failed element back up (capacity and, for machines, VM slots
  // are restored).  Surviving tenants are untouched; freed capacity simply
  // becomes admissible again.  Error if the vertex is not currently failed.
  util::Status HandleRecovery(topology::VertexId vertex);

  // Whether `vertex` is currently failed (as a machine or a link).
  bool IsFailed(topology::VertexId vertex) const {
    return failed_.count(vertex) > 0;
  }
  // Currently-failed vertices with their kinds, ascending by vertex id.
  const std::map<topology::VertexId, FaultKind>& Faults() const {
    return failed_;
  }

  bool IsLive(RequestId id) const { return live_.count(id) > 0; }
  size_t live_count() const { return live_.size(); }
  const Placement* placement_of(RequestId id) const;
  const Request* request_of(RequestId id) const;

  // Visits every live tenant (iteration order unspecified).  Used by the
  // snapshot writer and diagnostics.
  void ForEachLive(
      const std::function<void(const Request&, const Placement&)>& visit)
      const;

  // The per-link demands a placement induces — exposed for tests and for
  // callers that want to inspect a placement without committing it.
  std::vector<LinkDemand> ComputeLinkDemands(const Request& request,
                                             const Placement& placement) const;

  // True iff condition (4) holds on every link with no additions — the
  // global invariant Admit/Release maintain.
  bool StateValid() const;

  // Maximum occupancy ratio over all links (Fig. 9's sample statistic).
  double MaxOccupancy() const { return ledger_.MaxOccupancy(); }

 private:
  struct LiveRequest {
    Request request;
    Placement placement;
  };

  // True iff `machine`'s path to the root passes through `vertex`.
  bool MachineBelow(topology::VertexId machine,
                    topology::VertexId vertex) const;

  // Patch recovery: re-places only the VMs lost to the fault (machines
  // down, or below a failed link) onto surviving machines, greedily
  // minimizing the target machine-uplink occupancy.  The returned placement
  // still goes through AdmitPlacement, which recomputes the
  // Lemma-1-consistent split demands and re-validates condition (4).
  util::Result<Placement> TryPatch(const Request& request, Placement placement,
                                   topology::VertexId fault, FaultKind kind);

  const topology::Topology* topo_;
  net::LinkLedger ledger_;
  SlotMap slots_;
  std::unordered_map<RequestId, LiveRequest> live_;
  // Fault-plane state; ordered so Faults() listings are deterministic.
  std::map<topology::VertexId, FaultKind> failed_;
};

}  // namespace svc::core
