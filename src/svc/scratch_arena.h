// Per-thread recycling pool for placement result buffers.
//
// Allocators return a Placement whose vm_machine vector must be freshly
// owned by the caller, which normally forces one heap allocation per
// Allocate() call even when every DP table lives in a reusable arena.  A
// caller that consumes placements in a loop (the simulator engine, the
// admission microbenchmarks) can close that loop: recycle the buffer of a
// placement it has finished reading, and the next Allocate() on the same
// thread reuses the capacity instead of allocating.
//
// The pool is thread-local, so allocators shared across sweep-runner
// replicas stay data-race free with zero synchronization.  Recycling is
// strictly optional — allocators fall back to a fresh vector when the pool
// is empty, so callers that never recycle see the old behavior.
#pragma once

#include <vector>

#include "topology/topology.h"

namespace svc::core {

// Pops a recycled buffer from the calling thread's pool (cleared, capacity
// preserved), or returns a fresh empty vector when the pool is empty.
std::vector<topology::VertexId> TakeVmBuffer();

// Returns a vm_machine buffer to the calling thread's pool.  The pool is
// bounded; excess buffers are simply freed.
void RecycleVmBuffer(std::vector<topology::VertexId>&& buffer);

}  // namespace svc::core
