#include "svc/allocator_registry.h"

#include "svc/first_fit.h"
#include "svc/hetero_exact.h"
#include "svc/hetero_heuristic.h"
#include "svc/homogeneous_search.h"

namespace svc::core {

std::unique_ptr<Allocator> MakeAllocatorByName(const std::string& name) {
  if (name == "svc-dp") return std::make_unique<HomogeneousDpAllocator>();
  if (name == "tivc-adapted") return std::make_unique<TivcAdaptedAllocator>();
  if (name == "oktopus") return std::make_unique<OktopusAllocator>();
  if (name == "global-minmax") {
    return std::make_unique<HomogeneousSearchAllocator>(
        HomogeneousSearchOptions{.optimize_occupancy = true,
                                 .lowest_subtree_first = false},
        "global-minmax");
  }
  if (name == "hetero-exact") return std::make_unique<HeteroExactAllocator>();
  if (name == "hetero-heuristic") {
    return std::make_unique<HeteroHeuristicAllocator>();
  }
  if (name == "first-fit") return std::make_unique<FirstFitAllocator>();
  return nullptr;
}

const std::vector<std::string>& KnownAllocatorNames() {
  static const std::vector<std::string> kNames = {
      "svc-dp",       "tivc-adapted",     "oktopus",  "global-minmax",
      "hetero-exact", "hetero-heuristic", "first-fit"};
  return kNames;
}

std::string KnownAllocatorNamesText() {
  std::string text;
  for (const std::string& name : KnownAllocatorNames()) {
    if (!text.empty()) text += " | ";
    text += name;
  }
  return text;
}

}  // namespace svc::core
