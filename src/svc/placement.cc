#include "svc/placement.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace svc::core {

std::vector<std::pair<topology::VertexId, int>> Placement::MachineCounts()
    const {
  std::map<topology::VertexId, int> counts;
  for (topology::VertexId machine : vm_machine) ++counts[machine];
  return {counts.begin(), counts.end()};
}

std::string Placement::Describe() const {
  std::ostringstream out;
  out << total_vms() << " VMs under vertex " << subtree_root << " {";
  bool first = true;
  for (const auto& [machine, count] : MachineCounts()) {
    if (!first) out << ", ";
    out << "m" << machine << ":" << count;
    first = false;
  }
  out << "}";
  return out.str();
}

}  // namespace svc::core
