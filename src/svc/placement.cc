#include "svc/placement.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace svc::core {

std::vector<std::pair<topology::VertexId, int>> Placement::MachineCounts()
    const {
  std::map<topology::VertexId, int> counts;
  for (topology::VertexId machine : vm_machine) ++counts[machine];
  if (survivable()) counts[backup_machine] += backup_slots;
  return {counts.begin(), counts.end()};
}

std::string Placement::Describe() const {
  std::ostringstream out;
  out << total_vms() << " VMs under vertex " << subtree_root << " {";
  bool first = true;
  for (const auto& [machine, count] : MachineCounts()) {
    if (!first) out << ", ";
    out << "m" << machine << ":" << count;
    first = false;
  }
  out << "}";
  if (survivable()) {
    out << " backup m" << backup_machine << ":" << backup_slots;
  }
  return out.str();
}

}  // namespace svc::core
