// First-fit baseline for heterogeneous requests (paper Section V-B).
//
// VMs are sorted ascending by bandwidth demand (95th percentile for
// stochastic demands) and placed sequentially: a cursor walks the machines
// in topology order and each VM goes onto the first machine, at or after the
// cursor, with a free slot whose path links remain valid under the demand
// the partially placed request induces.  The cursor never moves backwards,
// so each machine (and hence each subtree) receives a contiguous substring
// of the sorted sequence — exactly the structure the paper's heuristic
// generalizes and optimizes over.
//
// Because the min() split demand of a *partial* placement is not monotone in
// the VMs still to be placed, a placement that passed every incremental
// check is re-validated as a whole at the end; if that fails the allocation
// is rejected.  This conservatism is inherent to first-fit and is part of
// why the paper's heuristic outperforms it.
#pragma once

#include "svc/allocator.h"

namespace svc::core {

class FirstFitAllocator : public Allocator {
 public:
  std::string_view name() const override { return "first-fit"; }

  util::Result<Placement> Allocate(const Request& request,
                                   const net::LinkLedger& ledger,
                                   const SlotMap& slots) const override;
};

}  // namespace svc::core
