#include "svc/scratch_arena.h"

#include <utility>

namespace svc::core {
namespace {

// Enough for any realistic caller (one or two placements in flight per
// thread); keeps a leaky caller from hoarding memory.
constexpr size_t kMaxPooledBuffers = 64;

std::vector<std::vector<topology::VertexId>>& Pool() {
  thread_local std::vector<std::vector<topology::VertexId>> pool;
  return pool;
}

}  // namespace

std::vector<topology::VertexId> TakeVmBuffer() {
  auto& pool = Pool();
  if (pool.empty()) return {};
  std::vector<topology::VertexId> buffer = std::move(pool.back());
  pool.pop_back();
  buffer.clear();
  return buffer;
}

void RecycleVmBuffer(std::vector<topology::VertexId>&& buffer) {
  auto& pool = Pool();
  if (pool.size() >= kMaxPooledBuffers) return;  // drop: frees the buffer
  pool.push_back(std::move(buffer));
}

}  // namespace svc::core
