// Command interpreter behind the `svcctl` tool: a scriptable network
// manager.  Operators (or tests) drive admission control with a simple
// line-oriented language:
//
//   # comments and blank lines are ignored
//   admit 1 homogeneous 10 200 120      # <id> <N> <mu> <sigma>
//   admit 2 deterministic 6 150         # <id> <N> <B>
//   admit 3 heterogeneous 300:150 20:5  # <id> <mu:sigma>...
//   batch 4 50 10 homogeneous 8 200 120 # <workers> <count> <first-id>
//                                       #   <kind args>: admit `count`
//                                       #   identical tenants through the
//                                       #   concurrent admission pipeline
//   release 1
//   show slots                          # free/total VM slots
//   show occupancy [k]                  # k worst links (default 5)
//   show placement 2
//   show tenants
//   assert valid                        # fail unless condition (4) holds
//   assert live 2                       # fail unless tenant 2 is admitted
//   allocator svc-dp                    # switch placement algorithm
//   policy reallocate|patch|evict|switchover  # recovery policy for faults
//   survivable on|off                   # survivable admission (backups)
//   fail machine 7                      # failure drill: take machine down
//   fail link 3                         # drain the uplink of vertex 3
//   recover 7                           # bring a failed element back
//   drain 7                             # planned drain: cordon machine 7
//                                       #   and migrate its tenants off
//                                       #   (backup switchover preferred)
//   uncordon 7                          # reopen a drained machine
//   drill rack 2                        # correlated drill: fail every
//                                       #   machine under the ToR, report
//                                       #   switchover vs reactive vs
//                                       #   evicted, then recover all
//   faults                              # list currently-failed elements
//   metrics                             # dump the obs metrics registry
//   health                              # one-line summary + Prometheus
//                                       #   exposition of the registry
//   tail [n]                            # last n decision records (def. 10)
//   explain 2                           # newest decision record for the
//                                       #   tenant: outcome, commit path,
//                                       #   binding links with (4)-slack
//   snapshot save state.txt             # persist live tenants
//   snapshot load state.txt             # replay into an empty manager
//
// Each command writes a one-line result to the output stream; errors are
// reported per line (the interpreter keeps going) and counted.  Exit
// status of `svcctl` is nonzero if any command failed.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "svc/allocator.h"
#include "svc/manager.h"

namespace svc::cli {

class Interpreter {
 public:
  // Borrows the topology (must outlive the interpreter).
  Interpreter(const topology::Topology& topo, double epsilon);
  ~Interpreter();

  // Executes one command line; returns false if the command failed
  // (parse error or failed assertion/admission).  Output (including error
  // text) goes to `out`.
  bool Execute(const std::string& line, std::ostream& out);

  // Runs a whole script; returns the number of failed lines.
  int Run(std::istream& in, std::ostream& out);

  // Selects the allocator by name (core::MakeAllocatorByName — see
  // svc/allocator_registry.h for the known names); returns false for
  // unknown names.  Instances are built on first use and cached.
  bool SelectAllocator(const std::string& name);

  const core::NetworkManager& manager() const { return manager_; }
  core::NetworkManager& manager() { return manager_; }
  const std::string& allocator_name() const {
    return current_allocator_name_;
  }
  const core::Allocator& allocator() const { return *current_allocator_; }
  core::RecoveryPolicy recovery_policy() const { return recovery_policy_; }

 private:
  bool CmdAdmit(const std::vector<std::string>& args, std::ostream& out);
  bool CmdBatch(const std::vector<std::string>& args, std::ostream& out);
  bool CmdRelease(const std::vector<std::string>& args, std::ostream& out);
  bool CmdShow(const std::vector<std::string>& args, std::ostream& out);
  bool CmdAssert(const std::vector<std::string>& args, std::ostream& out);
  bool CmdSnapshot(const std::vector<std::string>& args, std::ostream& out);
  bool CmdMetrics(const std::vector<std::string>& args, std::ostream& out);
  bool CmdFail(const std::vector<std::string>& args, std::ostream& out);
  bool CmdRecover(const std::vector<std::string>& args, std::ostream& out);
  bool CmdDrain(const std::vector<std::string>& args, std::ostream& out);
  bool CmdUncordon(const std::vector<std::string>& args, std::ostream& out);
  bool CmdDrill(const std::vector<std::string>& args, std::ostream& out);
  bool CmdFaults(const std::vector<std::string>& args, std::ostream& out);
  bool CmdHealth(const std::vector<std::string>& args, std::ostream& out);
  bool CmdTail(const std::vector<std::string>& args, std::ostream& out);
  bool CmdExplain(const std::vector<std::string>& args, std::ostream& out);

  core::NetworkManager manager_;
  std::map<std::string, std::unique_ptr<core::Allocator>> allocators_;
  core::Allocator* current_allocator_;  // points into allocators_
  std::string current_allocator_name_;
  core::RecoveryPolicy recovery_policy_ = core::RecoveryPolicy::kReallocate;
};

}  // namespace svc::cli
