#include "cli/daemon.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "cli/interpreter.h"
#include "obs/metrics.h"
#include "svc/snapshot.h"
#include "topology/builders.h"
#include "util/json.h"
#include "util/json_reader.h"

namespace svc::cli {
namespace {

using util::ErrorCode;
using util::Status;

// Commands that change manager or session state and therefore advance the
// checkpoint clock.  Read-only commands (show/health/metrics/tail/explain/
// assert/faults) never trigger a checkpoint write.
bool IsMutating(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  return verb == "admit" || verb == "batch" || verb == "release" ||
         verb == "fail" || verb == "recover" || verb == "drain" ||
         verb == "uncordon" || verb == "policy" || verb == "survivable" ||
         verb == "allocator" || verb == "snapshot";
}

// Blocking line reader over a stream socket.  Returns false on EOF or a
// read error; the trailing '\n' is stripped.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool Next(std::string* line) {
    line->clear();
    for (;;) {
      const size_t newline = buffer_.find('\n', scanned_);
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        scanned_ = 0;
        return true;
      }
      scanned_ = buffer_.size();
      char chunk[4096];
      const ssize_t n = read(fd_, chunk, sizeof chunk);
      if (n <= 0) {
        // A non-empty unterminated tail still counts as a final line.
        if (!buffer_.empty()) {
          line->swap(buffer_);
          scanned_ = 0;
          return true;
        }
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t scanned_ = 0;
};

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

Status Errno(const std::string& what) {
  return {ErrorCode::kFailedPrecondition, what + ": " + std::strerror(errno)};
}

// Runs one interpreter line with output captured; wraps the daemon-level
// session state the checkpoint needs to reconstruct.
struct Session {
  Interpreter* interpreter = nullptr;
  const sim::Scenario* scenario = nullptr;
  std::string scenario_hash;

  // Failed and cordoned elements, from the manager's own books.
  void CollectFaultState(std::vector<std::pair<int64_t, bool>>* failed,
                         std::vector<int64_t>* cordoned) const {
    const core::NetworkManager& manager = interpreter->manager();
    for (const auto& [vertex, kind] : manager.Faults()) {
      failed->emplace_back(vertex, kind == core::FaultKind::kMachine);
    }
    for (topology::VertexId m : manager.topo().machines()) {
      if (!manager.slots().machine_up(m) && !manager.IsFailed(m)) {
        cordoned->push_back(m);
      }
    }
  }
};

std::string SerializeCheckpoint(const Session& session) {
  const core::NetworkManager& manager = session.interpreter->manager();
  std::vector<std::pair<int64_t, bool>> failed;
  std::vector<int64_t> cordoned;
  session.CollectFaultState(&failed, &cordoned);
  std::ostringstream snapshot;
  const Status saved = core::SaveSnapshot(manager, snapshot);
  util::JsonWriter w;
  w.BeginObject();
  w.Member("scenario_hash", session.scenario_hash);
  w.Member("allocator", session.interpreter->allocator_name());
  w.Member("policy",
           std::string(core::ToString(session.interpreter->recovery_policy())));
  w.Member("survivable", manager.admission_options().survivability);
  w.Key("failed");
  w.BeginArray();
  for (const auto& [vertex, is_machine] : failed) {
    w.BeginObject();
    w.Member("vertex", vertex);
    w.Member("kind", is_machine ? "machine" : "link");
    w.EndObject();
  }
  w.EndArray();
  w.Key("cordoned");
  w.BeginArray();
  for (int64_t m : cordoned) w.Value(m);
  w.EndArray();
  w.Member("snapshot_ok", saved.ok());
  w.Member("snapshot", snapshot.str());
  w.EndObject();
  return w.str() + "\n";
}

Status WriteCheckpoint(const Session& session, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return {ErrorCode::kFailedPrecondition, "cannot open " + tmp};
    out << SerializeCheckpoint(session);
    if (!out.flush()) return {ErrorCode::kFailedPrecondition, "cannot write " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp + " -> " + path);
  }
  SVC_METRIC_INC("daemon/checkpoints");
  return Status::Ok();
}

Status RestoreCheckpoint(const Session& session, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Ok();  // no checkpoint — fresh start
  std::ostringstream buffer;
  buffer << in.rdbuf();
  util::Result<util::JsonValue> doc = util::ParseJson(buffer.str());
  if (!doc) {
    return {ErrorCode::kInvalidArgument,
            "corrupt checkpoint " + path + ": " + doc.status().message()};
  }
  const util::JsonValue* hash = doc->Find("scenario_hash");
  if (hash == nullptr || !hash->is_string() ||
      hash->AsString() != session.scenario_hash) {
    return {ErrorCode::kFailedPrecondition,
            "checkpoint " + path + " was written for a different scenario "
            "config (hash " +
                (hash != nullptr && hash->is_string() ? hash->AsString()
                                                      : "<missing>") +
                ", serving " + session.scenario_hash + ")"};
  }
  Interpreter& interp = *session.interpreter;
  std::ostringstream sink;
  const util::JsonValue* allocator = doc->Find("allocator");
  if (allocator != nullptr && allocator->is_string() &&
      !interp.SelectAllocator(allocator->AsString())) {
    return {ErrorCode::kInvalidArgument,
            "checkpoint allocator unknown: " + allocator->AsString()};
  }
  const util::JsonValue* policy = doc->Find("policy");
  if (policy != nullptr && policy->is_string() &&
      !interp.Execute("policy " + policy->AsString(), sink)) {
    return {ErrorCode::kInvalidArgument,
            "checkpoint policy unknown: " + policy->AsString()};
  }
  const util::JsonValue* survivable = doc->Find("survivable");
  if (survivable != nullptr && survivable->is_bool()) {
    interp.Execute(
        std::string("survivable ") + (survivable->AsBool() ? "on" : "off"),
        sink);
  }
  const util::JsonValue* snapshot = doc->Find("snapshot");
  if (snapshot != nullptr && snapshot->is_string()) {
    std::istringstream text(snapshot->AsString());
    const Status restored =
        core::RestoreSnapshot(text, interp.manager());
    if (!restored.ok()) {
      return {ErrorCode::kInvalidArgument,
              "checkpoint snapshot replay failed: " + restored.message()};
    }
  }
  // Re-apply the fault plane AFTER the tenant replay: at checkpoint time
  // no live placement touched a failed element, so each HandleFault here
  // affects zero tenants and only takes the capacity down, exactly as it
  // was.  Cordons likewise re-drain empty machines.
  const util::JsonValue* failed = doc->Find("failed");
  if (failed != nullptr && failed->is_array()) {
    for (const util::JsonValue& entry : failed->items()) {
      const util::JsonValue* vertex = entry.Find("vertex");
      const util::JsonValue* kind = entry.Find("kind");
      if (vertex == nullptr || !vertex->is_number()) continue;
      const bool is_machine = kind != nullptr && kind->is_string() &&
                              kind->AsString() == "machine";
      auto outcome = interp.manager().HandleFault(
          is_machine ? core::FaultKind::kMachine : core::FaultKind::kLink,
          static_cast<topology::VertexId>(vertex->AsInt()),
          interp.recovery_policy(), interp.allocator());
      if (!outcome) {
        return {ErrorCode::kInvalidArgument,
                "checkpoint fault replay failed: " +
                    outcome.status().message()};
      }
    }
  }
  const util::JsonValue* cordoned = doc->Find("cordoned");
  if (cordoned != nullptr && cordoned->is_array()) {
    for (const util::JsonValue& entry : cordoned->items()) {
      if (!entry.is_number()) continue;
      auto outcome = interp.manager().DrainMachine(
          static_cast<topology::VertexId>(entry.AsInt()),
          interp.allocator());
      if (!outcome) {
        return {ErrorCode::kInvalidArgument,
                "checkpoint cordon replay failed: " +
                    outcome.status().message()};
      }
    }
  }
  return Status::Ok();
}

// One NDJSON response line.
std::string Response(const util::JsonValue* id, bool ok,
                     const std::string& output_key,
                     const std::string& output) {
  util::JsonWriter w;
  w.BeginObject();
  if (id != nullptr && id->is_number()) w.Member("id", id->AsInt());
  w.Member("ok", ok);
  w.Member(output_key, output);
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {}

Daemon::~Daemon() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) close(fd);
}

void Daemon::Stop() {
  stop_.store(true);
  const int fd = listen_fd_.load();
  // Unblocks a pending accept(); the fd itself is closed by Serve()/dtor.
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
}

util::Status Daemon::Serve() {
  const Status valid = sim::ValidateScenario(config_.scenario);
  if (!valid.ok()) return valid;
  if (config_.socket_path.empty()) {
    return {ErrorCode::kInvalidArgument, "socket path is empty"};
  }

  const topology::Topology topo =
      topology::BuildThreeTier(config_.scenario.topology);
  Interpreter interpreter(topo, config_.scenario.admission.epsilon);
  std::ostringstream sink;
  if (!interpreter.SelectAllocator(
          sim::ScenarioAllocatorName(config_.scenario))) {
    return {ErrorCode::kInvalidArgument,
            "scenario allocator unknown: " +
                sim::ScenarioAllocatorName(config_.scenario)};
  }
  interpreter.Execute("policy " + config_.scenario.faults.policy, sink);
  if (config_.scenario.admission.survivability) {
    interpreter.Execute("survivable on", sink);
  }

  Session session;
  session.interpreter = &interpreter;
  session.scenario = &config_.scenario;
  session.scenario_hash = sim::ScenarioConfigHash(config_.scenario);
  if (!config_.checkpoint_path.empty()) {
    const Status restored =
        RestoreCheckpoint(session, config_.checkpoint_path);
    if (!restored.ok()) return restored;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) {
    return {ErrorCode::kInvalidArgument,
            "socket path too long: " + config_.socket_path};
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  unlink(config_.socket_path.c_str());  // stale socket from a killed run
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status = Errno("bind " + config_.socket_path);
    close(fd);
    return status;
  }
  if (listen(fd, 8) != 0) {
    const Status status = Errno("listen " + config_.socket_path);
    close(fd);
    return status;
  }
  listen_fd_.store(fd);

  int64_t mutations_since_checkpoint = 0;
  while (!stop_.load()) {
    const int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (stop_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener shut down underneath us
    }
    SVC_METRIC_INC("daemon/connections");
    LineReader reader(conn);
    std::string line;
    while (!stop_.load() && reader.Next(&line)) {
      if (line.empty()) continue;
      ++requests_served_;
      SVC_METRIC_INC("daemon/requests");
      util::Result<util::JsonValue> request = util::ParseJson(line);
      const util::JsonValue* cmd =
          request ? request->Find("cmd") : nullptr;
      if (!request || cmd == nullptr || !cmd->is_string()) {
        SVC_METRIC_INC("daemon/request_errors");
        const std::string what =
            !request ? request.status().message()
                     : "request needs a string \"cmd\" member";
        WriteAll(conn, Response(nullptr, false, "error", what));
        continue;
      }
      const util::JsonValue* id = request->Find("id");
      if (cmd->AsString() == "shutdown") {
        WriteAll(conn, Response(id, true, "output", "shutting down\n"));
        stop_.store(true);
        break;
      }
      if (cmd->AsString() == "checkpoint") {
        if (config_.checkpoint_path.empty()) {
          WriteAll(conn, Response(id, false, "error",
                                  "checkpointing is not configured"));
          continue;
        }
        const Status written =
            WriteCheckpoint(session, config_.checkpoint_path);
        mutations_since_checkpoint = 0;
        WriteAll(conn,
                 written.ok()
                     ? Response(id, true, "output",
                                "checkpoint " + config_.checkpoint_path +
                                    "\n")
                     : Response(id, false, "error", written.message()));
        continue;
      }
      std::ostringstream output;
      const bool ok = interpreter.Execute(cmd->AsString(), output);
      if (!ok) SVC_METRIC_INC("daemon/request_errors");
      if (ok && !config_.checkpoint_path.empty() &&
          IsMutating(cmd->AsString())) {
        if (++mutations_since_checkpoint >= config_.checkpoint_every) {
          WriteCheckpoint(session, config_.checkpoint_path);
          mutations_since_checkpoint = 0;
        }
      }
      if (!WriteAll(conn, Response(id, ok, "output", output.str()))) break;
    }
    close(conn);
  }

  if (!config_.checkpoint_path.empty()) {
    WriteCheckpoint(session, config_.checkpoint_path);
  }
  const int closing = listen_fd_.exchange(-1);
  if (closing >= 0) close(closing);
  unlink(config_.socket_path.c_str());
  return Status::Ok();
}

int RunClient(const std::string& socket_path, std::istream& in,
              std::ostream& out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path) {
    out << "error: bad socket path '" << socket_path << "'\n";
    return 2;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    out << "error: socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    out << "error: connect " << socket_path << ": " << std::strerror(errno)
        << "\n";
    close(fd);
    return 2;
  }
  LineReader reader(fd);
  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    // Blank lines and comments never reach the daemon (same as the local
    // interpreter, which would ignore them anyway).
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    util::JsonWriter w;
    w.BeginObject();
    w.Member("cmd", line);
    w.EndObject();
    if (!WriteAll(fd, w.str() + "\n")) {
      out << "error: daemon closed the connection\n";
      close(fd);
      return 2;
    }
    std::string reply;
    if (!reader.Next(&reply)) {
      out << "error: daemon closed the connection\n";
      close(fd);
      return 2;
    }
    util::Result<util::JsonValue> response = util::ParseJson(reply);
    if (!response) {
      out << "error: bad response: " << response.status().message() << "\n";
      ++failures;
      continue;
    }
    const util::JsonValue* ok = response->Find("ok");
    const util::JsonValue* output = response->Find("output");
    const util::JsonValue* error = response->Find("error");
    if (output != nullptr && output->is_string()) out << output->AsString();
    if (error != nullptr && error->is_string()) {
      out << "error: " << error->AsString() << "\n";
    }
    if (ok == nullptr || !ok->is_bool() || !ok->AsBool()) ++failures;
  }
  close(fd);
  return failures > 0 ? 1 : 0;
}

}  // namespace svc::cli
