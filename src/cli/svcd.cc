// svcd — the SVC network manager as a persistent daemon.
//
//   build/src/cli/svcd --socket /tmp/svcd.sock &
//   build/src/cli/svcd --scenario fig7 --socket /tmp/svcd.sock
//       --checkpoint /var/tmp/svcd.ckpt &
//   echo "admit 1 homogeneous 10 200 120
//         health" | build/src/cli/svcctl --connect /tmp/svcd.sock
//
// The scenario (registry name via --scenario, or a JSON file via
// --scenario-file) defines the fabric, epsilon, and admission discipline;
// tenants then arrive over the socket instead of from a workload
// generator.  With --checkpoint set, the daemon persists its state after
// every --checkpoint-every mutating commands and resumes from the
// checkpoint on restart — kill -9 mid-soak, restart, and the admission
// state (and therefore every subsequent decision) is bit-identical.  See
// cli/daemon.h for the NDJSON protocol.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/daemon.h"
#include "obs/decision_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "util/flags.h"

namespace {

svc::cli::Daemon* g_daemon = nullptr;

void HandleSignal(int) {
  if (g_daemon != nullptr) g_daemon->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("svcd: persistent SVC network manager daemon");
  std::string& scenario_name = flags.String(
      "scenario", "daemon_default",
      "registry scenario defining the fabric and admission discipline "
      "(bench/scenario_run --list)");
  std::string& scenario_file = flags.String(
      "scenario-file", "", "scenario JSON file (overrides --scenario)");
  std::string& socket_path =
      flags.String("socket", "svcd.sock", "UNIX-domain socket to bind");
  std::string& checkpoint = flags.String(
      "checkpoint", "", "checkpoint file; resume from it when it exists "
      "('' = checkpointing off)");
  int64_t& checkpoint_every = flags.Int(
      "checkpoint-every", 1, "mutating commands between checkpoints");
  std::string& flight_dir = flags.String(
      "flight-dir", "", "arm the flight recorder to dump bundles here");
  flags.Parse(argc, argv);

  // A control-plane service is never on a simulation hot path, so
  // collection is always on — health/metrics/tail/explain then reflect
  // everything the daemon did.
  obs::SetMetricsEnabled(true);
  obs::SetDecisionsEnabled(true);
  if (!flight_dir.empty()) {
    obs::FlightRecorderConfig flight;
    flight.dir = flight_dir;
    obs::FlightRecorder::Global().Configure(flight);
  }

  cli::DaemonConfig config;
  if (!scenario_file.empty()) {
    std::ifstream in(scenario_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", scenario_file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    util::Result<sim::Scenario> parsed = sim::ParseScenario(buffer.str());
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", scenario_file.c_str(),
                   parsed.status().ToText().c_str());
      return 2;
    }
    config.scenario = std::move(*parsed);
  } else {
    const sim::Scenario* s = sim::FindScenario(scenario_name);
    if (s == nullptr) {
      std::fprintf(stderr,
                   "unknown scenario '%s' (bench/scenario_run --list)\n",
                   scenario_name.c_str());
      return 2;
    }
    config.scenario = *s;
  }
  config.socket_path = socket_path;
  config.checkpoint_path = checkpoint;
  config.checkpoint_every = checkpoint_every;

  cli::Daemon daemon(std::move(config));
  g_daemon = &daemon;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("svcd: serving scenario '%s' on %s%s\n", scenario_name.c_str(),
              socket_path.c_str(),
              checkpoint.empty() ? ""
                                 : (" (checkpoint " + checkpoint + ")").c_str());
  std::fflush(stdout);
  const util::Status status = daemon.Serve();
  g_daemon = nullptr;
  if (!status.ok()) {
    std::fprintf(stderr, "svcd: %s\n", status.ToText().c_str());
    return 1;
  }
  std::printf("svcd: stopped after %lld request(s)\n",
              static_cast<long long>(daemon.requests_served()));
  return 0;
}
