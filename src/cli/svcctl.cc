// svcctl — scriptable SVC network manager.
//
//   build/src/cli/svcctl --racks 4 --machines-per-rack 5 < scenario.txt
//   echo "admit 1 homogeneous 10 200 120
//         show occupancy" | build/src/cli/svcctl
//
// Reads commands from stdin (or --script FILE), executes them against a
// fresh datacenter, exits nonzero if any command failed.  See
// cli/interpreter.h for the command language.
//
// With --connect SOCKET the same commands drive a running svcd instead of
// a local in-process manager: each line is sent over the daemon's NDJSON
// protocol and the response output is printed.  Exit codes: 2 when the
// connection fails (daemon not running), 1 when any command failed, 0
// otherwise.
#include <fstream>
#include <iostream>

#include "cli/daemon.h"
#include "cli/interpreter.h"
#include "obs/decision_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "topology/builders.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("svcctl: scriptable SVC network manager");
  int64_t& racks = flags.Int("racks", 4, "racks");
  int64_t& machines = flags.Int("machines-per-rack", 5, "machines per rack");
  int64_t& slots = flags.Int("slots", 4, "VM slots per machine");
  double& oversub = flags.Double("oversub", 2.0, "oversubscription");
  double& epsilon = flags.Double("epsilon", 0.05, "risk factor");
  std::string& allocator =
      flags.String("allocator", "svc-dp",
                   "svc-dp | tivc-adapted | oktopus | hetero-exact | "
                   "hetero-heuristic | first-fit");
  std::string& script =
      flags.String("script", "", "command file (default: stdin)");
  std::string& connect = flags.String(
      "connect", "",
      "drive a running svcd over this UNIX socket instead of a local "
      "manager (fabric flags are then the daemon's, not ours)");
  std::string& flight_dir = flags.String(
      "flight-dir", "", "arm the flight recorder to dump bundles here");
  flags.Parse(argc, argv);

  if (!connect.empty()) {
    if (script.empty()) return cli::RunClient(connect, std::cin, std::cout);
    std::ifstream in(script);
    if (!in) {
      std::cerr << "cannot open script '" << script << "'\n";
      return 2;
    }
    return cli::RunClient(connect, in, std::cout);
  }

  // An interactive tool is never on a hot path, so collection is always on:
  // the `metrics`/`health`/`tail`/`explain` commands then reflect whatever
  // the session did.
  obs::SetMetricsEnabled(true);
  obs::SetDecisionsEnabled(true);
  if (!flight_dir.empty()) {
    obs::FlightRecorderConfig flight;
    flight.dir = flight_dir;
    obs::FlightRecorder::Global().Configure(flight);
  }

  topology::ThreeTierConfig config;
  config.racks = static_cast<int>(racks);
  config.machines_per_rack = static_cast<int>(machines);
  config.slots_per_machine = static_cast<int>(slots);
  config.racks_per_agg = std::max(1, static_cast<int>(racks) / 2);
  config.oversubscription = oversub;
  const topology::Topology topo = topology::BuildThreeTier(config);
  std::cout << "datacenter: " << topo.Describe() << ", epsilon " << epsilon
            << "\n";

  cli::Interpreter interpreter(topo, epsilon);
  if (!interpreter.SelectAllocator(allocator)) {
    std::cerr << "unknown allocator '" << allocator << "'\n";
    return 2;
  }

  int failures = 0;
  if (script.empty()) {
    failures = interpreter.Run(std::cin, std::cout);
  } else {
    std::ifstream in(script);
    if (!in) {
      std::cerr << "cannot open script '" << script << "'\n";
      return 2;
    }
    failures = interpreter.Run(in, std::cout);
  }
  if (failures > 0) {
    std::cout << failures << " command(s) failed\n";
    return 1;
  }
  return 0;
}
