// svcd — the SVC network manager as a long-running service.
//
// A Daemon loads one scenario (the fabric, epsilon, and admission
// discipline; the workload/sweep sections are ignored — tenants arrive
// over the wire), binds a UNIX-domain stream socket, and serves the
// interpreter command language (cli/interpreter.h: admit / release /
// fail / recover / drain / uncordon / health / explain / ...) over a
// newline-delimited JSON protocol:
//
//   request:   {"cmd": "admit 1 homogeneous 10 200 120"}        (+ opt "id")
//   response:  {"ok": true, "output": "admit 1: placed ...\n"}  (id echoed)
//
// Two requests are handled by the daemon itself rather than the
// interpreter: "checkpoint" forces a checkpoint now, "shutdown" stops the
// serve loop after responding.  A malformed request line yields
// {"ok": false, "error": ...} and the connection keeps serving.
//
// Checkpointing: after every `checkpoint_every` successful state-mutating
// commands (and at shutdown), the daemon writes its full state to
// `checkpoint_path` — the scenario config hash, the selected allocator /
// recovery policy / survivability toggle, the failed and cordoned
// elements, and the tenant snapshot (svc/snapshot.h) — atomically
// (tmp + rename).  The daemon is single-threaded, so every checkpoint
// happens at a quiesced point by construction.  On startup, an existing
// checkpoint whose config hash matches the loaded scenario is restored:
// tenants are replayed through AdmitPlacement and the fault/cordon set is
// re-applied, so a killed daemon resumes with bit-identical admission
// state — the acceptance drill in tests/daemon_test.cc kills a daemon
// mid-soak and diffs the decisions of the resumed run against an
// uninterrupted one.  A hash mismatch is an error: serving a different
// scenario against restored state would corrupt silently.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/scenario.h"
#include "util/result.h"

namespace svc::cli {

struct DaemonConfig {
  sim::Scenario scenario;        // fabric + admission discipline to serve
  std::string socket_path;       // UNIX-domain socket to bind
  std::string checkpoint_path;   // empty = checkpointing off
  int64_t checkpoint_every = 1;  // mutating commands per checkpoint
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Validates the scenario, restores the checkpoint if one exists, binds
  // the socket, and serves connections until Stop() is called or a client
  // sends "shutdown".  Writes a final checkpoint (when configured) and
  // unlinks the socket on the way out.  Returns the first fatal error
  // (bad scenario, unusable socket path, corrupt checkpoint); per-request
  // errors are reported to the client and never end the loop.
  util::Status Serve();

  // Ends the serve loop from another thread (or a signal handler's
  // deferred context): the listener is shut down, so a blocked accept
  // returns and Serve() exits after its current connection.
  void Stop();

  // How many requests this instance has served (tests).
  int64_t requests_served() const { return requests_served_; }

 private:
  DaemonConfig config_;
  std::atomic<int> listen_fd_{-1};
  int64_t requests_served_ = 0;
  std::atomic<bool> stop_{false};
};

// Drives a running daemon: connects to `socket_path`, sends each line read
// from `in` as a {"cmd": ...} request, and prints every response's output
// to `out`.  Exit-code contract (svcctl --connect):
//   2  connection failure (daemon not running / bad socket)
//   1  at least one command failed
//   0  every command succeeded
int RunClient(const std::string& socket_path, std::istream& in,
              std::ostream& out);

}  // namespace svc::cli
