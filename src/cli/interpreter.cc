#include "cli/interpreter.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/decision_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "svc/admission_pipeline.h"
#include "svc/allocator_registry.h"
#include "svc/snapshot.h"
#include "util/strings.h"

namespace svc::cli {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseDouble(const std::string& text, double& value) {
  try {
    size_t used = 0;
    value = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseInt(const std::string& text, int64_t& value) {
  try {
    size_t used = 0;
    value = std::stoll(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Interpreter::Interpreter(const topology::Topology& topo, double epsilon)
    : manager_(topo, epsilon) {
  SelectAllocator("svc-dp");
}

Interpreter::~Interpreter() = default;

bool Interpreter::SelectAllocator(const std::string& name) {
  auto it = allocators_.find(name);
  if (it == allocators_.end()) {
    std::unique_ptr<core::Allocator> built = core::MakeAllocatorByName(name);
    if (built == nullptr) return false;
    it = allocators_.emplace(name, std::move(built)).first;
  }
  current_allocator_ = it->second.get();
  current_allocator_name_ = name;
  return true;
}

bool Interpreter::CmdAdmit(const std::vector<std::string>& args,
                           std::ostream& out) {
  // admit <id> homogeneous <n> <mu> <sigma>
  // admit <id> deterministic <n> <B>
  // admit <id> heterogeneous <mu:sigma>...
  if (args.size() < 3) {
    out << "error: admit needs <id> <kind> ...\n";
    return false;
  }
  int64_t id = 0;
  if (!ParseInt(args[1], id)) {
    out << "error: bad tenant id '" << args[1] << "'\n";
    return false;
  }
  const std::string& kind = args[2];
  std::unique_ptr<core::Request> request;
  if (kind == "homogeneous" && args.size() == 6) {
    int64_t n;
    double mu, sigma;
    if (!ParseInt(args[3], n) || !ParseDouble(args[4], mu) ||
        !ParseDouble(args[5], sigma) || n < 1) {
      out << "error: admit homogeneous <n> <mu> <sigma>\n";
      return false;
    }
    request = std::make_unique<core::Request>(
        core::Request::Homogeneous(id, static_cast<int>(n), mu, sigma));
  } else if (kind == "deterministic" && args.size() == 5) {
    int64_t n;
    double bandwidth;
    if (!ParseInt(args[3], n) || !ParseDouble(args[4], bandwidth) || n < 1) {
      out << "error: admit deterministic <n> <B>\n";
      return false;
    }
    request = std::make_unique<core::Request>(
        core::Request::Deterministic(id, static_cast<int>(n), bandwidth));
  } else if (kind == "heterogeneous" && args.size() >= 4) {
    std::vector<stats::Normal> demands;
    for (size_t i = 3; i < args.size(); ++i) {
      const auto parts = util::Split(args[i], ':');
      double mu, sigma;
      if (parts.size() != 2 || !ParseDouble(parts[0], mu) ||
          !ParseDouble(parts[1], sigma)) {
        out << "error: bad demand '" << args[i] << "' (want mu:sigma)\n";
        return false;
      }
      demands.push_back({mu, sigma * sigma});
    }
    request = std::make_unique<core::Request>(
        core::Request::Heterogeneous(id, std::move(demands)));
  } else {
    out << "error: unknown admit form\n";
    return false;
  }

  auto placement = manager_.Admit(*request, *current_allocator_);
  if (!placement) {
    out << "admit " << id << ": REJECTED (" << placement.status().ToText()
        << ")\n";
    return false;
  }
  out << "admit " << id << ": placed " << placement->Describe()
      << " max-occupancy " << placement->max_occupancy << "\n";
  return true;
}

bool Interpreter::CmdBatch(const std::vector<std::string>& args,
                           std::ostream& out) {
  // batch <workers> <count> <first-id> homogeneous <n> <mu> <sigma>
  // batch <workers> <count> <first-id> deterministic <n> <B>
  constexpr const char* kUsage =
      "error: batch <workers> <count> <first-id> homogeneous <n> <mu> "
      "<sigma> | deterministic <n> <B>\n";
  if (args.size() < 5) {
    out << kUsage;
    return false;
  }
  int64_t workers = 0, count = 0, first_id = 0;
  if (!ParseInt(args[1], workers) || !ParseInt(args[2], count) ||
      !ParseInt(args[3], first_id) || workers < 1 || count < 1) {
    out << kUsage;
    return false;
  }
  const std::string& kind = args[4];
  std::vector<core::Request> requests;
  requests.reserve(count);
  if (kind == "homogeneous" && args.size() == 8) {
    int64_t n;
    double mu, sigma;
    if (!ParseInt(args[5], n) || !ParseDouble(args[6], mu) ||
        !ParseDouble(args[7], sigma) || n < 1) {
      out << kUsage;
      return false;
    }
    for (int64_t i = 0; i < count; ++i) {
      requests.push_back(core::Request::Homogeneous(
          first_id + i, static_cast<int>(n), mu, sigma));
    }
  } else if (kind == "deterministic" && args.size() == 7) {
    int64_t n;
    double bandwidth;
    if (!ParseInt(args[5], n) || !ParseDouble(args[6], bandwidth) || n < 1) {
      out << kUsage;
      return false;
    }
    for (int64_t i = 0; i < count; ++i) {
      requests.push_back(core::Request::Deterministic(
          first_id + i, static_cast<int>(n), bandwidth));
    }
  } else {
    out << kUsage;
    return false;
  }

  core::PipelineConfig config;
  config.workers = static_cast<int>(workers);
  core::AdmissionPipeline pipeline(manager_, config);
  const auto decisions =
      pipeline.AdmitBatch(requests, *current_allocator_);
  int64_t admitted = 0;
  for (const auto& decision : decisions) {
    if (decision.ok()) ++admitted;
  }
  const core::PipelineStats& stats = pipeline.stats();
  out << "batch: " << admitted << " admitted, "
      << (count - admitted) << " rejected (proposed " << stats.proposed
      << ", conflicts " << stats.conflicts << ", retries " << stats.retries
      << ", fallbacks " << stats.fallbacks << ")\n";
  return true;
}

bool Interpreter::CmdRelease(const std::vector<std::string>& args,
                             std::ostream& out) {
  int64_t id = 0;
  if (args.size() != 2 || !ParseInt(args[1], id)) {
    out << "error: release <id>\n";
    return false;
  }
  if (!manager_.IsLive(id)) {
    out << "release " << id << ": not live (no-op)\n";
    return true;
  }
  manager_.Release(id);
  out << "release " << id << ": done\n";
  return true;
}

bool Interpreter::CmdShow(const std::vector<std::string>& args,
                          std::ostream& out) {
  if (args.size() < 2) {
    out << "error: show slots|occupancy|placement|tenants\n";
    return false;
  }
  const std::string& what = args[1];
  if (what == "slots") {
    out << "slots: " << manager_.slots().total_free() << " free of "
        << manager_.topo().total_slots() << "\n";
    return true;
  }
  if (what == "occupancy") {
    int64_t k = 5;
    if (args.size() >= 3 && !ParseInt(args[2], k)) {
      out << "error: show occupancy [k]\n";
      return false;
    }
    std::vector<std::pair<double, topology::VertexId>> ranked;
    const auto& topo = manager_.topo();
    for (topology::VertexId v = 1; v < topo.num_vertices(); ++v) {
      ranked.emplace_back(manager_.ledger().Occupancy(v), v);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    out << "occupancy (top " << k << "):";
    for (int64_t i = 0; i < k && i < static_cast<int64_t>(ranked.size());
         ++i) {
      out << " link" << ranked[i].second << "=" << ranked[i].first;
    }
    out << "\n";
    return true;
  }
  if (what == "placement") {
    int64_t id = 0;
    if (args.size() != 3 || !ParseInt(args[2], id)) {
      out << "error: show placement <id>\n";
      return false;
    }
    const core::Placement* placement = manager_.placement_of(id);
    if (placement == nullptr) {
      out << "placement " << id << ": not live\n";
      return false;
    }
    out << "placement " << id << ": " << placement->Describe() << "\n";
    return true;
  }
  if (what == "tenants") {
    out << "tenants: " << manager_.live_count() << " live\n";
    return true;
  }
  out << "error: unknown show target '" << what << "'\n";
  return false;
}

bool Interpreter::CmdAssert(const std::vector<std::string>& args,
                            std::ostream& out) {
  if (args.size() >= 2 && args[1] == "valid") {
    if (manager_.StateValid()) {
      out << "assert valid: ok\n";
      return true;
    }
    out << "assert valid: FAILED — condition (4) violated\n";
    return false;
  }
  if (args.size() == 3 && args[1] == "live") {
    int64_t id = 0;
    if (!ParseInt(args[2], id)) {
      out << "error: assert live <id>\n";
      return false;
    }
    if (manager_.IsLive(id)) {
      out << "assert live " << id << ": ok\n";
      return true;
    }
    out << "assert live " << id << ": FAILED\n";
    return false;
  }
  out << "error: assert valid | assert live <id>\n";
  return false;
}

bool Interpreter::CmdSnapshot(const std::vector<std::string>& args,
                              std::ostream& out) {
  if (args.size() != 3 || (args[1] != "save" && args[1] != "load")) {
    out << "error: snapshot save|load <file>\n";
    return false;
  }
  if (args[1] == "save") {
    const util::Status status = core::SaveSnapshotToFile(manager_, args[2]);
    if (!status.ok()) {
      out << "snapshot save: " << status.ToText() << "\n";
      return false;
    }
    out << "snapshot save: " << manager_.live_count() << " tenant(s) -> "
        << args[2] << "\n";
    return true;
  }
  const util::Status status =
      core::RestoreSnapshotFromFile(args[2], manager_);
  if (!status.ok()) {
    out << "snapshot load: " << status.ToText() << "\n";
    return false;
  }
  out << "snapshot load: " << manager_.live_count() << " tenant(s) restored\n";
  return true;
}

bool Interpreter::CmdMetrics(const std::vector<std::string>& args,
                             std::ostream& out) {
  if (args.size() != 1) {
    out << "error: metrics takes no arguments\n";
    return false;
  }
  if (!obs::MetricsEnabled()) {
    out << "metrics: collection disabled (svcctl enables it at startup; "
           "library embedders call obs::SetMetricsEnabled)\n";
    return true;
  }
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Collect();
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    out << "metrics: registry empty\n";
    return true;
  }
  for (const auto& c : snapshot.counters) {
    out << "counter " << c.name << " = " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "gauge " << g.name << " = " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "histogram " << h.name << ": count=" << h.count
        << " p50=" << h.p50 << " p90=" << h.p90 << " p99=" << h.p99
        << " max=" << h.max << "\n";
  }
  return true;
}

bool Interpreter::CmdFail(const std::vector<std::string>& args,
                          std::ostream& out) {
  int64_t vertex = 0;
  if (args.size() != 3 || (args[1] != "machine" && args[1] != "link") ||
      !ParseInt(args[2], vertex)) {
    out << "error: fail machine|link <vertex>\n";
    return false;
  }
  const core::FaultKind kind = args[1] == "machine"
                                   ? core::FaultKind::kMachine
                                   : core::FaultKind::kLink;
  auto outcome = manager_.HandleFault(
      kind, static_cast<topology::VertexId>(vertex), recovery_policy_,
      *current_allocator_);
  if (!outcome) {
    out << "fail " << args[1] << " " << vertex << ": "
        << outcome.status().ToText() << "\n";
    return false;
  }
  out << "fail " << args[1] << " " << vertex << ": "
      << outcome->tenants.size() << " affected, " << outcome->recovered()
      << " recovered, " << outcome->evicted() << " evicted (policy "
      << core::ToString(recovery_policy_) << ")";
  for (const core::TenantOutcome& tenant : outcome->tenants) {
    if (!tenant.recovered) {
      out << " evict:" << tenant.id << ":"
          << core::ToString(tenant.evict_reason);
    }
  }
  out << "\n";
  return true;
}

bool Interpreter::CmdDrill(const std::vector<std::string>& args,
                           std::ostream& out) {
  // drill rack <vertex>: correlated failure drill — fail every machine
  // under the ToR (ascending id, like a rack power event), report how the
  // current policy fared, then recover everything.
  int64_t vertex = 0;
  if (args.size() != 3 || args[1] != "rack" || !ParseInt(args[2], vertex)) {
    out << "error: drill rack <vertex>\n";
    return false;
  }
  const auto& topo = manager_.topo();
  if (vertex <= 0 || vertex >= topo.num_vertices() ||
      topo.is_machine(static_cast<topology::VertexId>(vertex))) {
    out << "error: drill rack needs a non-root switch vertex\n";
    return false;
  }
  std::vector<topology::VertexId> machines =
      topo.MachinesUnder(static_cast<topology::VertexId>(vertex));
  std::sort(machines.begin(), machines.end());
  int64_t affected = 0, switched = 0, reactive = 0, evicted = 0;
  std::vector<topology::VertexId> downed;
  for (topology::VertexId machine : machines) {
    auto outcome = manager_.HandleFault(core::FaultKind::kMachine, machine,
                                        recovery_policy_,
                                        *current_allocator_);
    if (!outcome) {
      out << "drill: machine " << machine << " skipped ("
          << outcome.status().ToText() << ")\n";
      continue;
    }
    downed.push_back(machine);
    affected += static_cast<int64_t>(outcome->tenants.size());
    for (const core::TenantOutcome& tenant : outcome->tenants) {
      if (!tenant.recovered) {
        ++evicted;
      } else if (tenant.switched_over) {
        ++switched;
      } else {
        ++reactive;
      }
    }
  }
  for (topology::VertexId machine : downed) {
    const util::Status status = manager_.HandleRecovery(machine);
    if (!status.ok()) {
      out << "drill: recover " << machine << " failed ("
          << status.ToText() << ")\n";
    }
  }
  out << "drill rack " << vertex << ": " << downed.size() << " machine(s) "
      << "failed, " << affected << " tenant-fault(s), " << switched
      << " switchover, " << reactive << " reactive, " << evicted
      << " evicted (policy " << core::ToString(recovery_policy_)
      << "), state " << (manager_.StateValid() ? "valid" : "INVALID")
      << "\n";
  return manager_.StateValid();
}

bool Interpreter::CmdDrain(const std::vector<std::string>& args,
                           std::ostream& out) {
  // drain <machine>: outage-free planned drain — cordon the machine and
  // migrate its tenants off (backup switchover preferred).  The machine
  // stays cordoned; `uncordon` reopens it, `fail machine` takes it down.
  int64_t vertex = 0;
  if (args.size() != 2 || !ParseInt(args[1], vertex)) {
    out << "error: drain <machine>\n";
    return false;
  }
  auto outcome = manager_.DrainMachine(
      static_cast<topology::VertexId>(vertex), *current_allocator_);
  if (!outcome) {
    out << "drain " << vertex << ": " << outcome.status().ToText() << "\n";
    return false;
  }
  int64_t stranded = 0;
  for (const core::TenantOutcome& tenant : outcome->tenants) {
    if (!tenant.recovered) ++stranded;
  }
  out << "drain " << vertex << ": " << outcome->tenants.size()
      << " affected, " << outcome->recovered() << " migrated ("
      << outcome->switched() << " via backup), " << stranded
      << " stranded in place; machine cordoned\n";
  return stranded == 0;
}

bool Interpreter::CmdUncordon(const std::vector<std::string>& args,
                              std::ostream& out) {
  int64_t vertex = 0;
  if (args.size() != 2 || !ParseInt(args[1], vertex)) {
    out << "error: uncordon <machine>\n";
    return false;
  }
  const util::Status status =
      manager_.UncordonMachine(static_cast<topology::VertexId>(vertex));
  if (!status.ok()) {
    out << "uncordon " << vertex << ": " << status.ToText() << "\n";
    return false;
  }
  out << "uncordon " << vertex << ": open\n";
  return true;
}

bool Interpreter::CmdRecover(const std::vector<std::string>& args,
                             std::ostream& out) {
  int64_t vertex = 0;
  if (args.size() != 2 || !ParseInt(args[1], vertex)) {
    out << "error: recover <vertex>\n";
    return false;
  }
  const util::Status status =
      manager_.HandleRecovery(static_cast<topology::VertexId>(vertex));
  if (!status.ok()) {
    out << "recover " << vertex << ": " << status.ToText() << "\n";
    return false;
  }
  out << "recover " << vertex << ": done\n";
  return true;
}

bool Interpreter::CmdFaults(const std::vector<std::string>& args,
                            std::ostream& out) {
  if (args.size() != 1) {
    out << "error: faults takes no arguments\n";
    return false;
  }
  if (manager_.Faults().empty()) {
    out << "faults: none\n";
    return true;
  }
  out << "faults:";
  for (const auto& [vertex, kind] : manager_.Faults()) {
    out << " " << (kind == core::FaultKind::kMachine ? "machine" : "link")
        << ":" << vertex;
  }
  out << "\n";
  return true;
}

bool Interpreter::CmdHealth(const std::vector<std::string>& args,
                            std::ostream& out) {
  if (args.size() != 1) {
    out << "error: health takes no arguments\n";
    return false;
  }
  out << "health: " << manager_.live_count() << " tenant(s) live, "
      << manager_.slots().total_free() << "/" << manager_.topo().total_slots()
      << " slots free, max-occupancy " << manager_.MaxOccupancy()
      << ", faults " << manager_.Faults().size() << ", decisions "
      << obs::DecisionCount() << ", flight-bundles "
      << obs::FlightRecorder::Global().bundles_written() << ", state "
      << (manager_.StateValid() ? "valid" : "INVALID") << "\n";
  // Prometheus-style exposition of everything the session recorded so far
  // (metrics registry including the per-shard pipeline gauges).
  if (obs::MetricsEnabled()) out << obs::ExportPrometheus();
  return manager_.StateValid();
}

bool Interpreter::CmdTail(const std::vector<std::string>& args,
                          std::ostream& out) {
  int64_t n = 10;
  if (args.size() > 2 || (args.size() == 2 && (!ParseInt(args[1], n) ||
                                               n < 1))) {
    out << "error: tail [n]\n";
    return false;
  }
  if (!obs::DecisionsEnabled()) {
    out << "tail: decision logging disabled (svcctl enables it at startup; "
           "library embedders call obs::SetDecisionsEnabled)\n";
    return true;
  }
  const std::vector<obs::DecisionRecord> decisions = obs::CollectDecisions();
  if (decisions.empty()) {
    out << "tail: no decisions recorded\n";
    return true;
  }
  const size_t start = decisions.size() > static_cast<size_t>(n)
                           ? decisions.size() - static_cast<size_t>(n)
                           : 0;
  for (size_t i = start; i < decisions.size(); ++i) {
    out << obs::FormatDecision(decisions[i]) << "\n";
  }
  return true;
}

bool Interpreter::CmdExplain(const std::vector<std::string>& args,
                             std::ostream& out) {
  int64_t id = 0;
  if (args.size() != 2 || !ParseInt(args[1], id)) {
    out << "error: explain <tenant>\n";
    return false;
  }
  obs::DecisionRecord record;
  if (!obs::FindDecision(id, &record)) {
    out << "explain " << id << ": no decision recorded (ring may have "
        << "wrapped, or decision logging was off)\n";
    return false;
  }
  out << "explain " << obs::FormatDecision(record) << "\n";
  return true;
}

bool Interpreter::Execute(const std::string& line, std::ostream& out) {
  const std::vector<std::string> args = Tokenize(line);
  if (args.empty()) return true;  // blank / comment
  const std::string& command = args[0];
  if (command == "admit") return CmdAdmit(args, out);
  if (command == "batch") return CmdBatch(args, out);
  if (command == "release") return CmdRelease(args, out);
  if (command == "show") return CmdShow(args, out);
  if (command == "assert") return CmdAssert(args, out);
  if (command == "snapshot") return CmdSnapshot(args, out);
  if (command == "metrics") return CmdMetrics(args, out);
  if (command == "fail") return CmdFail(args, out);
  if (command == "recover") return CmdRecover(args, out);
  if (command == "drain") return CmdDrain(args, out);
  if (command == "uncordon") return CmdUncordon(args, out);
  if (command == "drill") return CmdDrill(args, out);
  if (command == "faults") return CmdFaults(args, out);
  if (command == "health") return CmdHealth(args, out);
  if (command == "tail") return CmdTail(args, out);
  if (command == "explain") return CmdExplain(args, out);
  if (command == "policy") {
    core::RecoveryPolicy policy;
    if (args.size() != 2 || !core::ParseRecoveryPolicy(args[1], &policy)) {
      out << "error: policy reallocate|patch|evict|switchover\n";
      return false;
    }
    recovery_policy_ = policy;
    out << "policy: " << args[1] << "\n";
    return true;
  }
  if (command == "survivable") {
    if (args.size() != 2 || (args[1] != "on" && args[1] != "off")) {
      out << "error: survivable on|off\n";
      return false;
    }
    core::AdmissionOptions options = manager_.admission_options();
    options.survivability = args[1] == "on";
    manager_.set_admission_options(options);
    out << "survivable: " << args[1] << "\n";
    return true;
  }
  if (command == "allocator") {
    if (args.size() != 2 || !SelectAllocator(args[1])) {
      out << "error: unknown allocator\n";
      return false;
    }
    out << "allocator: " << args[1] << "\n";
    return true;
  }
  out << "error: unknown command '" << command << "'\n";
  return false;
}

int Interpreter::Run(std::istream& in, std::ostream& out) {
  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!Execute(line, out)) ++failures;
  }
  return failures;
}

}  // namespace svc::cli
