// Tenant-job workload model (paper Section VI-A).
//
// "Each job is modeled as a set of tasks to be run on individual VMs and a
// set of flows of uniform length between tasks.  Each task is a source and a
// destination for one flow.  The completion time of a job is max(Tc, Tn)."
//
// Distributions, matching the paper:
//   * job size N        ~ exponential around mean 49 (clamped);
//   * compute time Tc   ~ U[200, 500] s;
//   * rate mean mu_d    ~ uniform over {100, 200, 300, 400, 500} Mbps;
//   * rate stddev       sigma_d = rho * mu_d, rho ~ U(0, 1) by default, or a
//     fixed deviation coefficient for the Fig. 6 sweep;
//   * arrivals          Poisson with rate lambda = load * M / (mean_N * mean_Tc)
//     for the online scenario (paper's load definition).
//
// The paper leaves the uniform flow length L unspecified; we draw
// L = mu_d * U[flow_time_lo, flow_time_hi] Mbit so the network time at the
// mean rate is comparable to the compute time (documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "svc/request.h"

namespace svc::workload {

// Shape of the per-second data-generation rate distribution.  The SVC
// request always carries just (mean, variance); the shape matters to the
// simulator's draws and to the percentile-VC reservation, and is how the
// robustness of the two-moment framework to heavy tails is evaluated.
enum class RateDistribution {
  kNormal,     // N(mu_d, sigma_d^2) rectified at 0 (the paper's model)
  kLogNormal,  // lognormal with the same mean and variance (heavy-tailed)
};

struct JobSpec {
  int64_t id = 0;
  int size = 0;              // N, number of VMs / tasks
  double compute_time = 0;   // Tc, seconds
  double rate_mean = 0;      // mu_d, Mbps
  double rate_stddev = 0;    // sigma_d, Mbps
  double flow_mbits = 0;     // uniform flow length L, Mbit
  double arrival_time = 0;   // seconds (0 for batch scenarios)
  RateDistribution rate_distribution = RateDistribution::kNormal;
  // Heterogeneous jobs (paper Section V): per-VM rate distributions.  When
  // non-empty (size `size`), these override rate_mean/rate_stddev for both
  // the SVC request and the per-task generation rates.
  std::vector<stats::Normal> vm_demands;
};

struct WorkloadConfig {
  int num_jobs = 500;
  double mean_job_size = 49;
  int min_job_size = 2;
  int max_job_size = 400;
  double compute_time_lo = 200;
  double compute_time_hi = 500;
  std::vector<double> rate_means = {100, 200, 300, 400, 500};
  // sigma_d = rho * mu_d.  fixed_deviation >= 0 pins rho; otherwise rho is
  // drawn uniformly from (deviation_lo, deviation_hi).
  double deviation_lo = 0.0;
  double deviation_hi = 1.0;
  double fixed_deviation = -1;
  // Flow length L = mu_d * U[flow_time_lo, flow_time_hi].
  double flow_time_lo = 200;
  double flow_time_hi = 500;
  // Heterogeneous mode: each VM draws its own mu_i from rate_means and its
  // own rho_i, instead of one (mu_d, sigma_d) per job.
  bool heterogeneous = false;
  RateDistribution rate_distribution = RateDistribution::kNormal;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, uint64_t seed);

  // Jobs with arrival_time 0, for the batched-FIFO scenario.
  std::vector<JobSpec> GenerateBatch();

  // Jobs with Poisson arrival times calibrated so the offered load is
  // `load` (fraction of the datacenter's `total_slots` VM slots busy in
  // steady state, using the paper's lambda * mean_N * mean_Tc / M formula).
  std::vector<JobSpec> GenerateOnline(double load, int total_slots);

  const WorkloadConfig& config() const { return config_; }

 private:
  JobSpec NextJob();

  WorkloadConfig config_;
  stats::Rng rng_;
  int64_t next_id_ = 1;
};

// The three network abstractions the evaluation compares.
enum class Abstraction {
  kSvc,           // stochastic virtual cluster <N, mu_d, sigma_d>
  kMeanVc,        // deterministic VC with B = mu_d
  kPercentileVc,  // deterministic VC with B = a percentile of the rate
                  // (the paper's 95th by default; see vc_quantile below)
};

const char* ToString(Abstraction abstraction);

// Derives the tenant request a job submits under the given abstraction
// ("Our SVC is derived from the distribution of the data generation rate").
// `vc_quantile` selects the reserved percentile for kPercentileVc —
// q = 0.5 degenerates to mean-VC (for a symmetric distribution) and
// q -> 1 to worst-case provisioning; the paper uses 0.95.
core::Request MakeRequest(const JobSpec& job, Abstraction abstraction,
                          double vc_quantile = 0.95);

// The per-VM rate cap the hypervisor enforces under the abstraction:
// deterministic VCs are rate-limited to their reserved bandwidth, SVC VMs
// are not limited (statistical sharing).  Returns +infinity for kSvc.
double RateCap(const JobSpec& job, Abstraction abstraction,
               double vc_quantile = 0.95);

// p-quantile of the job's per-second rate distribution (respects
// rate_distribution; the percentile-VC reservation is RatePercentile(0.95)).
double RatePercentile(const JobSpec& job, double p);

}  // namespace svc::workload
