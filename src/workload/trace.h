// Workload persistence: save/load a generated job stream so an experiment
// can be replayed bit-for-bit elsewhere (or against a different allocator)
// without carrying the generator's seed and config around.
//
// Line-oriented text format, one job per line after the header:
//
//   svc-workload v1
//   jobs <count>
//   job <id> <size> <compute> <mu> <sigma> <flow_mbits> <arrival> <dist>
//       [<mu_i>:<var_i> ...]          (per-VM demands, heterogeneous only)
//
// <dist> is "normal" or "lognormal".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.h"
#include "workload/workload.h"

namespace svc::workload {

void SaveJobs(const std::vector<JobSpec>& jobs, std::ostream& out);
util::Result<std::vector<JobSpec>> LoadJobs(std::istream& in);

util::Status SaveJobsToFile(const std::vector<JobSpec>& jobs,
                            const std::string& path);
util::Result<std::vector<JobSpec>> LoadJobsFromFile(const std::string& path);

}  // namespace svc::workload
