#include "workload/trace.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace svc::workload {
namespace {

constexpr char kMagic[] = "svc-workload v1";

const char* DistName(RateDistribution distribution) {
  return distribution == RateDistribution::kLogNormal ? "lognormal"
                                                      : "normal";
}

}  // namespace

void SaveJobs(const std::vector<JobSpec>& jobs, std::ostream& out) {
  out.precision(17);
  out << kMagic << "\n";
  out << "jobs " << jobs.size() << "\n";
  for (const JobSpec& job : jobs) {
    out << "job " << job.id << " " << job.size << " " << job.compute_time
        << " " << job.rate_mean << " " << job.rate_stddev << " "
        << job.flow_mbits << " " << job.arrival_time << " "
        << DistName(job.rate_distribution);
    for (const stats::Normal& d : job.vm_demands) {
      out << " " << d.mean << ":" << d.variance;
    }
    out << "\n";
  }
}

util::Result<std::vector<JobSpec>> LoadJobs(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "not a workload file (bad magic line)"};
  }
  std::string keyword;
  size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "jobs") {
    return util::Status{util::ErrorCode::kInvalidArgument, "bad jobs line"};
  }
  std::getline(in, line);  // consume the rest of the header line

  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  for (size_t j = 0; j < count; ++j) {
    if (!std::getline(in, line)) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "truncated at job " + std::to_string(j)};
    }
    std::istringstream fields(line);
    JobSpec job;
    std::string tag, dist;
    if (!(fields >> tag >> job.id >> job.size >> job.compute_time >>
          job.rate_mean >> job.rate_stddev >> job.flow_mbits >>
          job.arrival_time >> dist) ||
        tag != "job" || job.size < 1 || job.rate_mean < 0 ||
        job.rate_stddev < 0 || job.compute_time < 0) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "malformed job line: '" + line + "'"};
    }
    if (dist == "lognormal") {
      job.rate_distribution = RateDistribution::kLogNormal;
    } else if (dist == "normal") {
      job.rate_distribution = RateDistribution::kNormal;
    } else {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "unknown distribution '" + dist + "'"};
    }
    std::string pair_text;
    while (fields >> pair_text) {
      const auto parts = util::Split(pair_text, ':');
      if (parts.size() != 2) {
        return util::Status{util::ErrorCode::kInvalidArgument,
                            "bad VM demand '" + pair_text + "'"};
      }
      try {
        job.vm_demands.push_back(
            {std::stod(parts[0]), std::stod(parts[1])});
      } catch (const std::exception&) {
        return util::Status{util::ErrorCode::kInvalidArgument,
                            "unparsable VM demand '" + pair_text + "'"};
      }
    }
    if (!job.vm_demands.empty() &&
        static_cast<int>(job.vm_demands.size()) != job.size) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "job " + std::to_string(job.id) + " has " +
                              std::to_string(job.vm_demands.size()) +
                              " VM demands for size " +
                              std::to_string(job.size)};
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

util::Status SaveJobsToFile(const std::vector<JobSpec>& jobs,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return {util::ErrorCode::kInvalidArgument, "cannot open " + path};
  }
  SaveJobs(jobs, out);
  out.flush();
  if (!out) {
    return {util::ErrorCode::kInvalidArgument, "write failed: " + path};
  }
  return util::Status::Ok();
}

util::Result<std::vector<JobSpec>> LoadJobsFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status{util::ErrorCode::kNotFound, "cannot open " + path};
  }
  return LoadJobs(in);
}

}  // namespace svc::workload
