#include "workload/workload.h"

#include <cassert>
#include <limits>

#include "stats/distributions.h"
#include "stats/lognormal.h"
#include "stats/normal.h"

namespace svc::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  assert(config_.num_jobs > 0);
  assert(!config_.rate_means.empty());
  assert(config_.min_job_size >= 1 &&
         config_.min_job_size <= config_.max_job_size);
}

JobSpec WorkloadGenerator::NextJob() {
  JobSpec job;
  job.id = next_id_++;
  job.size = static_cast<int>(stats::SampleExponentialInt(
      rng_, config_.mean_job_size, config_.min_job_size,
      config_.max_job_size));
  job.compute_time =
      rng_.Uniform(config_.compute_time_lo, config_.compute_time_hi);
  const size_t pick = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(config_.rate_means.size()) - 1));
  job.rate_mean = config_.rate_means[pick];
  const double rho = config_.fixed_deviation >= 0
                         ? config_.fixed_deviation
                         : rng_.Uniform(config_.deviation_lo,
                                        config_.deviation_hi);
  job.rate_stddev = rho * job.rate_mean;
  job.rate_distribution = config_.rate_distribution;
  job.flow_mbits =
      job.rate_mean * rng_.Uniform(config_.flow_time_lo, config_.flow_time_hi);
  if (config_.heterogeneous) {
    job.vm_demands.reserve(job.size);
    double mean_sum = 0;
    for (int i = 0; i < job.size; ++i) {
      const size_t vm_pick = static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(config_.rate_means.size()) - 1));
      const double mu = config_.rate_means[vm_pick];
      const double vm_rho = config_.fixed_deviation >= 0
                                ? config_.fixed_deviation
                                : rng_.Uniform(config_.deviation_lo,
                                               config_.deviation_hi);
      const double sigma = vm_rho * mu;
      job.vm_demands.push_back({mu, sigma * sigma});
      mean_sum += mu;
    }
    // Keep the flow length tied to the job's average rate so network time
    // stays comparable to compute time.
    job.rate_mean = mean_sum / job.size;
    job.flow_mbits = job.rate_mean *
                     rng_.Uniform(config_.flow_time_lo, config_.flow_time_hi);
  }
  return job;
}

std::vector<JobSpec> WorkloadGenerator::GenerateBatch() {
  std::vector<JobSpec> jobs;
  jobs.reserve(config_.num_jobs);
  for (int i = 0; i < config_.num_jobs; ++i) jobs.push_back(NextJob());
  return jobs;
}

std::vector<JobSpec> WorkloadGenerator::GenerateOnline(double load,
                                                       int total_slots) {
  assert(load > 0);
  assert(total_slots > 0);
  const double mean_compute =
      0.5 * (config_.compute_time_lo + config_.compute_time_hi);
  // Paper: load = lambda * mean_N * mean_Tc / M  =>  lambda as below.
  const double lambda =
      load * total_slots / (config_.mean_job_size * mean_compute);
  std::vector<JobSpec> jobs;
  jobs.reserve(config_.num_jobs);
  double t = 0;
  for (int i = 0; i < config_.num_jobs; ++i) {
    t += rng_.Exponential(1.0 / lambda);
    JobSpec job = NextJob();
    job.arrival_time = t;
    jobs.push_back(job);
  }
  return jobs;
}

const char* ToString(Abstraction abstraction) {
  switch (abstraction) {
    case Abstraction::kSvc: return "SVC";
    case Abstraction::kMeanVc: return "mean-VC";
    case Abstraction::kPercentileVc: return "percentile-VC";
  }
  return "?";
}

core::Request MakeRequest(const JobSpec& job, Abstraction abstraction,
                          double vc_quantile) {
  switch (abstraction) {
    case Abstraction::kSvc:
      if (!job.vm_demands.empty()) {
        return core::Request::Heterogeneous(job.id, job.vm_demands);
      }
      return core::Request::Homogeneous(job.id, job.size, job.rate_mean,
                                        job.rate_stddev);
    case Abstraction::kMeanVc:
      return core::Request::Deterministic(job.id, job.size, job.rate_mean);
    case Abstraction::kPercentileVc:
      return core::Request::Deterministic(
          job.id, job.size, RatePercentile(job, vc_quantile));
  }
  assert(false && "unknown abstraction");
  return core::Request::Deterministic(job.id, job.size, job.rate_mean);
}

double RatePercentile(const JobSpec& job, double p) {
  if (job.rate_stddev == 0) return job.rate_mean;
  switch (job.rate_distribution) {
    case RateDistribution::kNormal: {
      const stats::Normal rate{job.rate_mean,
                               job.rate_stddev * job.rate_stddev};
      return rate.Quantile(p);
    }
    case RateDistribution::kLogNormal:
      return stats::LogNormal::FromMeanVariance(
                 job.rate_mean, job.rate_stddev * job.rate_stddev)
          .Quantile(p);
  }
  return job.rate_mean;
}

double RateCap(const JobSpec& job, Abstraction abstraction,
               double vc_quantile) {
  switch (abstraction) {
    case Abstraction::kSvc:
      return std::numeric_limits<double>::infinity();
    case Abstraction::kMeanVc:
      return job.rate_mean;
    case Abstraction::kPercentileVc:
      return RatePercentile(job, vc_quantile);
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace svc::workload
