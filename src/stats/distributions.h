// Derived distributions used by the workload model.
//
// The paper draws per-second data-generation rates from N(mu_d, sigma_d^2)
// with sigma_d up to mu_d, so negative draws occur; physical rates are the
// rectification max(0, X).  RectifiedNormalMean/Variance give the exact
// moments of that rectified variable, which the tests use to validate the
// simulator's effective throughput.
#pragma once

#include "stats/normal.h"
#include "stats/rng.h"

namespace svc::stats {

// E[max(0, X)] for X ~ N(mean, stddev^2).
double RectifiedNormalMean(double mean, double stddev);

// Var[max(0, X)] for X ~ N(mean, stddev^2).
double RectifiedNormalVariance(double mean, double stddev);

// Samples max(0, N(mean, stddev^2)) — the paper's data-generation rate.
double SampleRectifiedNormal(Rng& rng, double mean, double stddev);

// Samples an exponential clamped to [lo, hi] by re-drawing (used for job
// sizes: "exponentially distributed around a mean of 49", clamped to at
// least 2 VMs and at most the cluster slot count).
int64_t SampleExponentialInt(Rng& rng, double mean, int64_t lo, int64_t hi);

}  // namespace svc::stats
