// Lognormal distribution, parameterized for the SVC use case.
//
// The paper assumes normal bandwidth demands "for simplicity" and notes
// SVC "can straightforwardly use other types of probability distributions":
// the admission framework only consumes each demand's first two moments
// (everything downstream is the CLT aggregate).  The lognormal is the
// canonical heavy-tailed alternative observed in datacenter traffic; this
// class converts between (mean, variance) — what the SVC request carries —
// and the underlying (mu_log, sigma_log) needed for sampling and quantiles.
#pragma once

#include "stats/normal.h"
#include "stats/rng.h"

namespace svc::stats {

class LogNormal {
 public:
  // From the underlying normal's parameters: X = exp(N(mu_log, sigma_log^2)).
  LogNormal(double mu_log, double sigma_log);

  // The lognormal with the given arithmetic mean and variance
  // (mean > 0, variance >= 0; variance == 0 degenerates to a constant).
  static LogNormal FromMeanVariance(double mean, double variance);

  double mu_log() const { return mu_log_; }
  double sigma_log() const { return sigma_log_; }

  // Arithmetic moments.
  double mean() const;
  double variance() const;

  // p-quantile, p in (0, 1).
  double Quantile(double p) const;

  double Sample(Rng& rng) const;

  // The two-moment summary an SVC request carries.
  Normal MomentSummary() const { return Normal{mean(), variance()}; }

 private:
  double mu_log_;
  double sigma_log_;
};

}  // namespace svc::stats
