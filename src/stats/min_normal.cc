#include "stats/min_normal.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace svc::stats {

Normal MinOfNormals(const Normal& a, const Normal& b) {
  assert(a.variance >= 0 && b.variance >= 0);
  if (a.variance == 0 && b.variance == 0) {
    return Normal{std::min(a.mean, b.mean), 0.0};
  }
  const double theta = std::sqrt(a.variance + b.variance);
  const double alpha = (b.mean - a.mean) / theta;
  const double cdf_pos = NormalCdf(alpha);
  const double cdf_neg = NormalCdf(-alpha);
  const double pdf = NormalPdf(alpha);

  const double mean =
      a.mean * cdf_pos + b.mean * cdf_neg - theta * pdf;
  const double second_moment = (a.variance + a.mean * a.mean) * cdf_pos +
                               (b.variance + b.mean * b.mean) * cdf_neg -
                               (a.mean + b.mean) * theta * pdf;
  // Guard against a tiny negative variance from cancellation when one input
  // dominates (alpha far in a tail).
  const double variance = std::max(0.0, second_moment - mean * mean);
  return Normal{mean, variance};
}

}  // namespace svc::stats
