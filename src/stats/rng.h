// Deterministic, seedable pseudo-random number generator.
//
// The simulator needs reproducible runs across platforms, so we implement
// xoshiro256++ (Blackman & Vigna, public domain) seeded via SplitMix64
// instead of relying on implementation-defined std::mt19937 distributions.
// All variate transforms (normal, exponential, Poisson) are implemented here
// so results are bit-identical for a given seed everywhere.
#pragma once

#include <array>
#include <cstdint>

namespace svc::stats {

class Rng {
 public:
  // Seeds the state via SplitMix64 so that nearby seeds give uncorrelated
  // streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Core generator: uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via the Marsaglia polar method (one spare cached).
  double StandardNormal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Exponential with the given mean (= 1/rate).
  double Exponential(double mean);

  // Poisson-distributed count.  Knuth's method for small means, normal
  // approximation (rounded, clamped at 0) for mean > 64.
  int64_t Poisson(double mean);

  // Splits off an independent child stream (for per-job randomness).
  Rng Split();

 private:
  std::array<uint64_t, 4> state_;
  double spare_normal_ = 0;
  bool has_spare_ = false;
};

}  // namespace svc::stats
