#include "stats/rng.h"

#include <cassert>
#include <cmath>

namespace svc::stats {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * UniformDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::StandardNormal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * StandardNormal();
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  // 1 - U in (0,1] avoids log(0).
  return -mean * std::log(1.0 - UniformDouble());
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  if (mean > 64.0) {
    const double draw = Normal(mean, std::sqrt(mean));
    return draw < 0 ? 0 : static_cast<int64_t>(std::llround(draw));
  }
  // Knuth: multiply uniforms until below exp(-mean).
  const double threshold = std::exp(-mean);
  int64_t count = 0;
  double product = UniformDouble();
  while (product > threshold) {
    ++count;
    product *= UniformDouble();
  }
  return count;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace svc::stats
