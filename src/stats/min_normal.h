// Lemma 1 of the paper: exact mean and variance of min(X1, X2) for
// independent normals X1 ~ N(m1, s1^2), X2 ~ N(m2, s2^2).
//
// With theta = sqrt(s1^2 + s2^2) and alpha = (m2 - m1) / theta:
//   E[min]   = m1*Phi(alpha) + m2*Phi(-alpha) - theta*phi(alpha)
//   E[min^2] = (s1^2+m1^2)*Phi(alpha) + (s2^2+m2^2)*Phi(-alpha)
//              - (m1+m2)*theta*phi(alpha)
//   Var[min] = E[min^2] - E[min]^2
//
// This is the classical Clark/Nadarajah-Kotz result; the paper uses it to
// model the demand a link carries when it splits a homogeneous SVC into m
// and N-m VMs: B_r^L(m) = min(B(m), B(N-m)).
#pragma once

#include "stats/normal.h"

namespace svc::stats {

// Moments of min(X1, X2) for independent X1 ~ a and X2 ~ b.  The result is
// reported as a Normal for uniform bookkeeping even though the true min of
// two normals is not normal; the framework only consumes its first two
// moments (the central-limit aggregation across requests justifies this —
// see paper Section IV-B).
//
// Degenerate cases are handled exactly: if both variances are 0 the result
// is the deterministic min; if exactly one variance is 0 the formulas still
// apply (theta > 0).
Normal MinOfNormals(const Normal& a, const Normal& b);

}  // namespace svc::stats
