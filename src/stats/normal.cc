#include "stats/normal.h"

#include <cassert>
#include <limits>

namespace svc::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014326779399461;
constexpr double kInvSqrt2 = 0.7071067811865475244008444;

// Coefficients of Acklam's rational approximation to the normal quantile.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00, 2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

double AcklamQuantile(double p) {
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1 - p_low;
  if (p < p_low) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
            kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
            kA[5]) *
           q /
           (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
            1);
  }
  const double q = std::sqrt(-2 * std::log(1 - p));
  return -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
           kC[5]) /
         ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1);
}

}  // namespace

double NormalPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

double NormalQuantile(double p) {
  assert(p >= 0 && p <= 1);
  if (p <= 0) return -std::numeric_limits<double>::infinity();
  if (p >= 1) return std::numeric_limits<double>::infinity();
  double x = AcklamQuantile(p);
  // One Halley refinement step against the high-accuracy Cdf.
  const double e = NormalCdf(x) - p;
  const double u = e / NormalPdf(x);          // Newton step
  x -= u / (1 + 0.5 * x * u);                 // Halley correction
  return x;
}

double Normal::Quantile(double q) const {
  assert(variance >= 0);
  if (variance == 0) return mean;
  return mean + stddev() * NormalQuantile(q);
}

}  // namespace svc::stats
