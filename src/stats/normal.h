// Standard-normal pdf/cdf/quantile and the Normal value type.
//
// The SVC admission condition (paper Eq. 4) needs Phi^{-1}(1 - epsilon); the
// quantile is implemented with Acklam's rational approximation refined by one
// Halley step against our own Cdf, giving ~1e-15 relative accuracy — far
// beyond what the model needs, but cheap.
#pragma once

#include <cmath>

namespace svc::stats {

// A normal distribution summarized by mean and variance.  variance == 0
// denotes a deterministic (degenerate) "distribution", which the framework
// uses to model Oktopus-style deterministic virtual clusters.
struct Normal {
  double mean = 0;
  double variance = 0;

  double stddev() const { return std::sqrt(variance); }

  // The q-quantile (e.g. q = 0.95 for the 95th percentile used to order
  // heterogeneous VMs and to derive percentile-VC requests).
  double Quantile(double q) const;

  friend bool operator==(const Normal&, const Normal&) = default;
};

// Standard normal probability density phi(x).
double NormalPdf(double x);

// Standard normal cumulative distribution Phi(x), accurate over the full
// double range (implemented via erfc to avoid cancellation in the tails).
double NormalCdf(double x);

// Inverse of NormalCdf on (0, 1).  Returns -inf / +inf at the endpoints.
double NormalQuantile(double p);

}  // namespace svc::stats
