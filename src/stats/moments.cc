#include "stats/moments.h"

#include <algorithm>

namespace svc::stats {

void RunningMoments::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) * other.count_ / total);
  mean_ += delta * other.count_ / static_cast<double>(total);
  sum_ += other.sum_;
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace svc::stats
