#include "stats/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace svc::stats {

double RectifiedNormalMean(double mean, double stddev) {
  assert(stddev >= 0);
  if (stddev == 0) return std::max(0.0, mean);
  const double z = mean / stddev;
  return mean * NormalCdf(z) + stddev * NormalPdf(z);
}

double RectifiedNormalVariance(double mean, double stddev) {
  assert(stddev >= 0);
  if (stddev == 0) return 0.0;
  const double z = mean / stddev;
  const double first = RectifiedNormalMean(mean, stddev);
  // E[max(0,X)^2] = (mean^2 + stddev^2) * Phi(z) + mean*stddev*phi(z).
  const double second = (mean * mean + stddev * stddev) * NormalCdf(z) +
                        mean * stddev * NormalPdf(z);
  return std::max(0.0, second - first * first);
}

double SampleRectifiedNormal(Rng& rng, double mean, double stddev) {
  return std::max(0.0, rng.Normal(mean, stddev));
}

int64_t SampleExponentialInt(Rng& rng, double mean, int64_t lo, int64_t hi) {
  assert(lo <= hi);
  assert(mean > 0);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int64_t draw =
        static_cast<int64_t>(std::llround(rng.Exponential(mean)));
    if (draw >= lo && draw <= hi) return draw;
  }
  // Extremely unlikely unless [lo, hi] has negligible mass; clamp.
  return std::clamp(static_cast<int64_t>(std::llround(mean)), lo, hi);
}

}  // namespace svc::stats
