#include "stats/lognormal.h"

#include <cassert>
#include <cmath>

namespace svc::stats {

LogNormal::LogNormal(double mu_log, double sigma_log)
    : mu_log_(mu_log), sigma_log_(sigma_log) {
  assert(sigma_log >= 0);
}

LogNormal LogNormal::FromMeanVariance(double mean, double variance) {
  assert(mean > 0);
  assert(variance >= 0);
  // mean = exp(mu + s^2/2), var = (exp(s^2) - 1) * mean^2.
  const double s2 = std::log1p(variance / (mean * mean));
  const double mu = std::log(mean) - 0.5 * s2;
  return LogNormal(mu, std::sqrt(s2));
}

double LogNormal::mean() const {
  return std::exp(mu_log_ + 0.5 * sigma_log_ * sigma_log_);
}

double LogNormal::variance() const {
  const double m = mean();
  return (std::exp(sigma_log_ * sigma_log_) - 1.0) * m * m;
}

double LogNormal::Quantile(double p) const {
  assert(p > 0 && p < 1);
  return std::exp(mu_log_ + sigma_log_ * NormalQuantile(p));
}

double LogNormal::Sample(Rng& rng) const {
  return std::exp(rng.Normal(mu_log_, sigma_log_));
}

}  // namespace svc::stats
