// Online (single-pass) descriptive statistics via Welford's algorithm.
//
// Used by the simulator's metric collectors and by the Monte-Carlo property
// tests that validate Lemma 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace svc::stats {

class RunningMoments {
 public:
  // Adds one observation.
  void Add(double x);

  // Merges another accumulator (parallel-safe combination rule).
  void Merge(const RunningMoments& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  // Population variance (divides by n).
  double variance() const { return count_ > 0 ? m2_ / count_ : 0.0; }

  // Sample variance (divides by n-1); 0 for fewer than two samples.
  double sample_variance() const {
    return count_ > 1 ? m2_ / (count_ - 1) : 0.0;
  }

  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace svc::stats
