// Empirical cumulative distribution over a collected sample.
//
// Fig. 9 of the paper plots the empirical CDF of the maximum bandwidth-
// occupancy ratio sampled at every job arrival; this class reproduces that
// computation and also provides percentile queries used elsewhere.
#pragma once

#include <cstddef>
#include <vector>

namespace svc::stats {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void Add(double sample);

  // Fraction of samples <= x (0 for an empty sample).
  double CdfAt(double x) const;

  // p-quantile with linear interpolation between order statistics,
  // p in [0, 1].  Precondition: at least one sample.
  double Percentile(double p) const;

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Sorted view of the sample (sorts lazily).
  const std::vector<double>& sorted() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace svc::stats
