#include "stats/ecdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace svc::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalCdf::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::CdfAt(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0 && p <= 1);
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  const double position = p * static_cast<double>(samples_.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = std::min(lower + 1, samples_.size() - 1);
  const double weight = position - static_cast<double>(lower);
  return samples_[lower] * (1 - weight) + samples_[upper] * weight;
}

const std::vector<double>& EmpiricalCdf::sorted() const {
  EnsureSorted();
  return samples_;
}

}  // namespace svc::stats
