// Aggregation-level partition of a finalized topology for sharded commits.
//
// The paper's condition (4) is purely per-link, so two committed placements
// interact only where their touched link sets overlap.  In a tree every
// link below a given child-of-the-root stays inside that child's subtree,
// which makes the root's children natural commit shards: bookkeeping for
// links (and machines) in different top-level subtrees can mutate
// concurrently, and only the root uplinks — the core stripe — are shared.
//
// A ShardMap groups the root's children into `num_shards` contiguous
// groups (adjacent aggregation switches share a shard, preserving vertex-id
// locality for range copies) and classifies every vertex and link:
//
//   * shard_of_vertex(v) — the shard owning the top-level subtree
//     containing v.  Machines, ToRs and aggregation switches all map here.
//   * bucket_of_link(v)  — the *bucket* owning the uplink of v: the core
//     stripe (a pseudo-shard with its own epoch) when v is a child of the
//     root, otherwise shard_of_vertex(v).
//
// Buckets are numbered 0..num_shards()-1 for the shards plus
// core_stripe() == num_shards() for the core, so a touched-bucket set fits
// one uint64_t bit mask (num_shards() is capped at kMaxShards).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.h"

namespace svc::net {

class ShardMap {
 public:
  // Bit masks over buckets must fit uint64_t together with the core bit.
  static constexpr int kMaxShards = 32;

  // Partitions `topo` (which must outlive the map) into at most
  // `num_shards` shards.  The count is clamped to [1, min(kMaxShards,
  // number of root children)] — asking for more shards than top-level
  // subtrees cannot buy more commit parallelism.
  ShardMap(const topology::Topology& topo, int num_shards);

  const topology::Topology& topo() const { return *topo_; }

  int num_shards() const { return num_shards_; }
  // The core stripe's bucket id (root uplinks; guarded by its own epoch).
  int core_stripe() const { return num_shards_; }
  // Shards plus the core stripe — the size of per-bucket epoch arrays.
  int bucket_count() const { return num_shards_ + 1; }

  // Shard owning the top-level subtree containing v.  The root itself maps
  // to the core stripe (it belongs to no subtree).
  int shard_of_vertex(topology::VertexId v) const { return shard_[v]; }

  // Bucket owning the uplink of v (v must not be the root).
  int bucket_of_link(topology::VertexId v) const {
    return topo_->parent(v) == topo_->root() ? num_shards_ : shard_[v];
  }

  // All link ids (child-vertex ids) in a bucket, ascending.  The union over
  // buckets is exactly the link set; buckets are disjoint.
  const std::vector<topology::VertexId>& links_in_bucket(int bucket) const {
    return links_[bucket];
  }

  // All machine ids in a shard, ascending.  The core stripe owns no
  // machines (every machine lives in some top-level subtree).
  const std::vector<topology::VertexId>& machines_in_shard(int shard) const {
    return machines_[shard];
  }

  uint64_t BucketBit(int bucket) const { return uint64_t{1} << bucket; }
  // Mask with every bucket bit set (shards + core stripe).
  uint64_t AllBuckets() const {
    return (uint64_t{1} << bucket_count()) - 1;
  }

 private:
  const topology::Topology* topo_;
  int num_shards_ = 1;
  std::vector<int> shard_;  // indexed by vertex id
  std::vector<std::vector<topology::VertexId>> links_;     // per bucket
  std::vector<std::vector<topology::VertexId>> machines_;  // per shard
};

}  // namespace svc::net
