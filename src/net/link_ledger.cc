#include "net/link_ledger.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace svc::net {

namespace {
// Demands smaller than this (Mbps / Mbps^2) are treated as absent.
constexpr double kNegligible = 1e-12;

// Condition (4) across the no-failure state and every post-failure (domain)
// state of the link.  Domain states are only enforced on up links: a drained
// link's backup records are unenforceable until switchover re-validates them.
bool ValidAllStates(const LinkState& s, double mean_add, double var_add,
                    double det_add, double c) {
  if (!SatisfiesGuarantee(s.capacity, s.deterministic + det_add,
                          s.mean_sum + mean_add, s.var_sum + var_add, c)) {
    return false;
  }
  if (s.capacity <= 0) return true;
  for (const BackupDomainSums& g : s.backup_domains) {
    if (!SatisfiesGuarantee(s.capacity, s.deterministic + det_add + g.det_sum,
                            s.mean_sum + mean_add + g.mean_sum,
                            s.var_sum + var_add + g.var_sum, c)) {
      return false;
    }
  }
  return true;
}

// Fused worst-case kernel: max occupancy over the no-failure state and every
// post-failure state (the max propagates a condition-(4) violation's +inf).
double WorstOccupancyIfValid(const LinkState& s, double mean_add,
                             double var_add, double det_add, double c) {
  double worst =
      OccupancyRatioIfValid(s.capacity, s.deterministic + det_add,
                            s.mean_sum + mean_add, s.var_sum + var_add, c);
  if (s.capacity <= 0) return worst;
  for (const BackupDomainSums& g : s.backup_domains) {
    worst = std::max(
        worst, OccupancyRatioIfValid(s.capacity,
                                     s.deterministic + det_add + g.det_sum,
                                     s.mean_sum + mean_add + g.mean_sum,
                                     s.var_sum + var_add + g.var_sum, c));
  }
  return worst;
}

// Adds one backup record's moments into the per-domain sums, keeping the
// vector sorted by domain id.
void AccumulateDomain(std::vector<BackupDomainSums>& sums,
                      topology::VertexId domain, double mean, double variance,
                      double deterministic) {
  auto it = std::lower_bound(
      sums.begin(), sums.end(), domain,
      [](const BackupDomainSums& g, topology::VertexId d) {
        return g.domain < d;
      });
  if (it == sums.end() || it->domain != domain) {
    it = sums.insert(it, BackupDomainSums{domain, 0, 0, 0});
  }
  it->mean_sum += mean;
  it->var_sum += variance;
  it->det_sum += deterministic;
}
}  // namespace

LinkLedger::LinkLedger(const topology::Topology& topo, double epsilon)
    : topo_(&topo), epsilon_(epsilon), c_(GuaranteeQuantile(epsilon)),
      touched_(1) {
  assert(topo.finalized());
  links_.resize(topo.num_vertices());
  rows_ = links_.data();
  num_rows_ = links_.size();
  for (topology::VertexId v = 1; v < topo.num_vertices(); ++v) {
    rows_[v].capacity = topo.uplink_capacity(v);
  }
}

LinkLedger::~LinkLedger() { DestroyRehomedRows(); }

void LinkLedger::DestroyRehomedRows() {
  if (!rehomed_) return;
  for (size_t v = 0; v < num_rows_; ++v) rows_[v].~LinkState();
}

LinkLedger::LinkLedger(const LinkLedger& other)
    : topo_(other.topo_), epsilon_(other.epsilon_), c_(other.c_),
      shards_(other.shards_), touched_(other.touched_) {
  links_.assign(other.rows_, other.rows_ + other.num_rows_);
  rows_ = links_.data();
  num_rows_ = links_.size();
}

LinkLedger& LinkLedger::operator=(const LinkLedger& other) {
  if (this == &other) return *this;
  DestroyRehomedRows();
  rehomed_.Reset();
  topo_ = other.topo_;
  epsilon_ = other.epsilon_;
  c_ = other.c_;
  shards_ = other.shards_;
  touched_ = other.touched_;
  links_.assign(other.rows_, other.rows_ + other.num_rows_);
  rows_ = links_.data();
  num_rows_ = links_.size();
  return *this;
}

LinkLedger::LinkLedger(LinkLedger&& other) noexcept
    : topo_(other.topo_), epsilon_(other.epsilon_), c_(other.c_),
      shards_(other.shards_), links_(std::move(other.links_)),
      rehomed_(std::move(other.rehomed_)), rows_(other.rows_),
      num_rows_(other.num_rows_), touched_(std::move(other.touched_)) {
  // rows_ stays valid across the move: a vector move keeps its heap block
  // and a FirstTouchBuffer move keeps its mapping.
  other.rows_ = nullptr;
  other.num_rows_ = 0;
}

LinkLedger& LinkLedger::operator=(LinkLedger&& other) noexcept {
  if (this == &other) return *this;
  DestroyRehomedRows();
  topo_ = other.topo_;
  epsilon_ = other.epsilon_;
  c_ = other.c_;
  shards_ = other.shards_;
  links_ = std::move(other.links_);
  rehomed_ = std::move(other.rehomed_);
  rows_ = other.rows_;
  num_rows_ = other.num_rows_;
  touched_ = std::move(other.touched_);
  other.rows_ = nullptr;
  other.num_rows_ = 0;
  return *this;
}

void LinkLedger::RehomeRows(const RowToucher& touch) {
  util::FirstTouchBuffer fresh(num_rows_ * sizeof(LinkState));
  LinkState* dst = static_cast<LinkState*>(fresh.data());
  LinkState* src = rows_;
  // Bucket by bucket, the owning worker faults the bucket's pages in by
  // move-constructing its rows (touch runs init on that worker and waits).
  // Bucket row ranges are contiguous-ish by construction (ShardMap groups
  // each aggregation subtree's vertex-id range), so per-bucket touches
  // mostly fault whole pages, not interleaved cache lines.
  std::vector<char> moved(num_rows_, 0);
  if (shards_ != nullptr) {
    for (int b = 0; b < shards_->bucket_count(); ++b) {
      const std::vector<topology::VertexId>& links = shards_->links_in_bucket(b);
      touch(b, [&] {
        for (topology::VertexId v : links) {
          ::new (dst + v) LinkState(std::move(src[v]));
          moved[v] = 1;
        }
      });
    }
  }
  // Rows no bucket owns — the root row, every row when unsharded — belong
  // to the calling (sequencer) thread.
  for (size_t v = 0; v < num_rows_; ++v) {
    if (!moved[v]) ::new (dst + v) LinkState(std::move(src[v]));
  }
  // Swap the new storage in and dispose of the moved-from husks.
  if (rehomed_) {
    for (size_t v = 0; v < num_rows_; ++v) src[v].~LinkState();
  } else {
    links_.clear();
    links_.shrink_to_fit();
  }
  rehomed_ = std::move(fresh);
  rows_ = dst;
}

void LinkLedger::SetShardMap(const ShardMap* shards) {
  assert(shards == nullptr || &shards->topo() == topo_);
  // Re-bucket the existing touched lists under the new partition.
  std::vector<TouchedMap> old = std::move(touched_);
  shards_ = shards;
  touched_.assign(shards_ == nullptr ? 1 : shards_->bucket_count(),
                  TouchedMap{});
  for (TouchedMap& map : old) {
    for (auto& [req, links] : map) {
      for (topology::VertexId v : links) Touch(req, v);
    }
  }
}

double LinkLedger::SharingBandwidth(topology::VertexId v) const {
  assert(v != topo_->root());
  return rows_[v].capacity - rows_[v].deterministic;
}

double LinkLedger::Occupancy(topology::VertexId v) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  return OccupancyRatio(s.capacity, s.deterministic, s.mean_sum, s.var_sum,
                        c_);
}

double LinkLedger::Slack(topology::VertexId v) const {
  return std::max(-1.0, 1.0 - Occupancy(v));
}

double LinkLedger::OccupancyWith(topology::VertexId v, double mean_add,
                                 double var_add, double det_add) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  if (s.backup_domains.empty()) {
    return OccupancyRatioIfValid(s.capacity, s.deterministic + det_add,
                                 s.mean_sum + mean_add, s.var_sum + var_add,
                                 c_);
  }
  return WorstOccupancyIfValid(s, mean_add, var_add, det_add, c_);
}

bool LinkLedger::ValidWith(topology::VertexId v, double mean_add,
                           double var_add, double det_add) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  if (s.backup_domains.empty()) {
    return SatisfiesGuarantee(s.capacity, s.deterministic + det_add,
                              s.mean_sum + mean_add, s.var_sum + var_add, c_);
  }
  return ValidAllStates(s, mean_add, var_add, det_add, c_);
}

double LinkLedger::OccupancyWithDomain(topology::VertexId v,
                                       topology::VertexId domain,
                                       double mean_add, double var_add,
                                       double det_add) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  double gm = 0, gv = 0, gd = 0;
  for (const BackupDomainSums& g : s.backup_domains) {
    if (g.domain == domain) {
      gm = g.mean_sum;
      gv = g.var_sum;
      gd = g.det_sum;
      break;
    }
    if (g.domain > domain) break;  // sorted by domain id
  }
  return OccupancyRatioIfValid(s.capacity, s.deterministic + det_add + gd,
                               s.mean_sum + mean_add + gm,
                               s.var_sum + var_add + gv, c_);
}

bool LinkLedger::ValidWithDomain(topology::VertexId v,
                                 topology::VertexId domain, double mean_add,
                                 double var_add, double det_add) const {
  return OccupancyWithDomain(v, domain, mean_add, var_add, det_add) !=
         std::numeric_limits<double>::infinity();
}

double LinkLedger::BackupShare(topology::VertexId v) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  if (s.backup_domains.empty() || s.capacity <= 0) return 0;
  const double base =
      OccupancyRatio(s.capacity, s.deterministic, s.mean_sum, s.var_sum, c_);
  double worst = base;
  for (const BackupDomainSums& g : s.backup_domains) {
    worst = std::max(worst,
                     OccupancyRatio(s.capacity, s.deterministic + g.det_sum,
                                    s.mean_sum + g.mean_sum,
                                    s.var_sum + g.var_sum, c_));
  }
  if (!std::isfinite(worst) || !std::isfinite(base)) return 0;
  return std::clamp(worst - base, 0.0, 1.0);
}

double LinkLedger::MaxBackupShare() const {
  double result = 0;
  for (topology::VertexId v = 1; v < topo_->num_vertices(); ++v) {
    result = std::max(result, BackupShare(v));
  }
  return result;
}

void LinkLedger::OccupancyWithBatch(topology::VertexId v,
                                    const double* mean_add,
                                    const double* var_add,
                                    const double* det_add, int count,
                                    double* out) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  const double capacity = s.capacity;
  const double slack = 1e-9 * capacity;
  const double d0 = s.deterministic;
  const double m0 = s.mean_sum;
  const double v0 = s.var_sum;
  const double c = c_;
  const double inf = std::numeric_limits<double>::infinity();
  if (capacity <= 0) {
    // Failed (drained) link — hoisted out of the hot loop so the nominal
    // path stays branch-free.  Matches OccupancyRatioIfValid cell by cell.
    for (int i = 0; i < count; ++i) {
      const double demand = d0 + det_add[i] + m0 + mean_add[i] + v0 +
                            var_add[i];
      out[i] = demand <= 0 ? 0.0 : inf;
    }
    return;
  }
  // Mirrors OccupancyRatioIfValid cell by cell — same operand order, so the
  // finite values are bit-identical to the scalar path.  No branches, no
  // loads of shared state inside the loop.
  for (int i = 0; i < count; ++i) {
    const double det = d0 + det_add[i];
    const double mean = m0 + mean_add[i];
    const double var = v0 + var_add[i];
    const double root = c * std::sqrt(var);
    const bool valid = var <= 0 ? det + mean <= capacity + slack
                                : capacity - det - mean > root - slack;
    out[i] = valid ? (det + mean + root) / capacity : inf;
  }
  // Shared-backup class: fold in each post-failure state.  Links without
  // backup records (every link unless survivability is on) skip this pass,
  // keeping the legacy loop's output bit-identical.
  for (const BackupDomainSums& g : s.backup_domains) {
    for (int i = 0; i < count; ++i) {
      out[i] = std::max(
          out[i], OccupancyRatioIfValid(capacity, d0 + det_add[i] + g.det_sum,
                                        m0 + mean_add[i] + g.mean_sum,
                                        v0 + var_add[i] + g.var_sum, c));
    }
  }
}

int LinkLedger::FeasibleFrontier(topology::VertexId v, const double* mean_add,
                                 const double* var_add, const double* det_add,
                                 int lo, int hi) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  // Invariant: every index < lo is feasible, every index > hi infeasible
  // (once one candidate violates (4), every larger-moment candidate does:
  // the slack side shrinks while the quantile side grows; an AND over the
  // link's post-failure states preserves this, since each state's verdict
  // is monotone in the candidate's moments).
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    const bool valid = s.backup_domains.empty()
                           ? SatisfiesGuarantee(
                                 s.capacity, s.deterministic + det_add[mid],
                                 s.mean_sum + mean_add[mid],
                                 s.var_sum + var_add[mid], c_)
                           : ValidAllStates(s, mean_add[mid], var_add[mid],
                                            det_add[mid], c_);
    if (valid) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int LinkLedger::FeasibleFrontierDescending(topology::VertexId v,
                                           const double* mean_add,
                                           const double* var_add,
                                           const double* det_add, int lo,
                                           int hi) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  // Invariant: every index < lo is infeasible, every index > hi feasible.
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    const bool valid = s.backup_domains.empty()
                           ? SatisfiesGuarantee(
                                 s.capacity, s.deterministic + det_add[mid],
                                 s.mean_sum + mean_add[mid],
                                 s.var_sum + var_add[mid], c_)
                           : ValidAllStates(s, mean_add[mid], var_add[mid],
                                            det_add[mid], c_);
    if (valid) {
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double LinkLedger::MaxOccupancy() const {
  double result = 0;
  for (topology::VertexId v = 1; v < topo_->num_vertices(); ++v) {
    result = std::max(result, Occupancy(v));
  }
  return result;
}

void LinkLedger::SetLinkState(topology::VertexId v, bool up) {
  assert(v != topo_->root());
  LinkState& s = rows_[v];
  if (s.up == up) return;
  s.up = up;
  // Transactional drain/restore: the single capacity write is what makes
  // every subsequent condition-(4) / occupancy-(6) evaluation see the
  // outage — no per-record rewrite, so it cannot partially apply.
  s.capacity = up ? topo_->uplink_capacity(v) : 0.0;
}

std::vector<RequestId> LinkLedger::AffectedRequests(
    topology::VertexId v) const {
  assert(v != topo_->root());
  const LinkState& s = rows_[v];
  std::vector<RequestId> ids;
  ids.reserve(s.stochastic.size() + s.reserved.size());
  for (const StochasticDemand& d : s.stochastic) ids.push_back(d.request);
  for (const DeterministicDemand& d : s.reserved) ids.push_back(d.request);
  // Backup records deliberately excluded: a tenant whose BACKUP routes
  // through v keeps its primary placement intact — its protection is
  // degraded, not its service, and switchover re-validates before use.
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void LinkLedger::Touch(RequestId req, topology::VertexId v) {
  std::vector<topology::VertexId>& list = touched_[bucket_of(v)][req];
  if (std::find(list.begin(), list.end(), v) == list.end()) {
    list.push_back(v);
  }
}

void LinkLedger::AddStochastic(topology::VertexId v, RequestId req,
                               double mean, double variance) {
  assert(v != topo_->root());
  assert(mean >= 0 && variance >= 0);
  if (mean < kNegligible && variance < kNegligible) return;
  LinkState& s = rows_[v];
  s.stochastic.push_back({req, mean, variance});
  s.mean_sum += mean;
  s.var_sum += variance;
  // Post-admission occupancy ratio of the touched link (Fig. 9's per-link
  // statistic, here sampled continuously instead of only at arrivals).
  SVC_METRIC_HIST("net/occupancy_ratio", Occupancy(v));
  Touch(req, v);
}

void LinkLedger::AddDeterministic(topology::VertexId v, RequestId req,
                                  double amount) {
  assert(v != topo_->root());
  assert(amount >= 0);
  if (amount < kNegligible) return;
  LinkState& s = rows_[v];
  s.reserved.push_back({req, amount});
  s.deterministic += amount;
  SVC_METRIC_HIST("net/occupancy_ratio", Occupancy(v));
  Touch(req, v);
}

void LinkLedger::AddBackup(topology::VertexId v, RequestId req,
                           topology::VertexId domain, double mean,
                           double variance, double deterministic) {
  assert(v != topo_->root());
  assert(domain != topology::kNoVertex);
  assert(mean >= 0 && variance >= 0 && deterministic >= 0);
  if (mean < kNegligible && variance < kNegligible &&
      deterministic < kNegligible) {
    return;
  }
  LinkState& s = rows_[v];
  s.backup.push_back({req, domain, mean, variance, deterministic});
  AccumulateDomain(s.backup_domains, domain, mean, variance, deterministic);
  Touch(req, v);
}

void LinkLedger::RebuildSums(topology::VertexId v) {
  LinkState& s = rows_[v];
  s.mean_sum = 0;
  s.var_sum = 0;
  s.deterministic = 0;
  for (const auto& d : s.stochastic) {
    s.mean_sum += d.mean;
    s.var_sum += d.variance;
  }
  for (const auto& d : s.reserved) s.deterministic += d.amount;
  s.backup_domains.clear();
  for (const auto& b : s.backup) {
    AccumulateDomain(s.backup_domains, b.domain, b.mean, b.variance,
                     b.deterministic);
  }
}

void LinkLedger::AssignAggregatesFrom(const LinkLedger& other) {
  assert(topo_ == other.topo_);
  assert(num_rows_ == other.num_rows_);
  epsilon_ = other.epsilon_;
  c_ = other.c_;
  for (size_t v = 0; v < num_rows_; ++v) {
    LinkState& dst = rows_[v];
    const LinkState& src = other.rows_[v];
    dst.capacity = src.capacity;
    dst.deterministic = src.deterministic;
    dst.mean_sum = src.mean_sum;
    dst.var_sum = src.var_sum;
    dst.up = src.up;
    // Backup-domain sums are aggregates too: snapshots must see reserved
    // backup bandwidth or speculative admission would over-commit the
    // post-failure states.  The emptiness guard keeps the legacy
    // (no-survivability) capture allocation-free.
    if (!src.backup_domains.empty() || !dst.backup_domains.empty()) {
      dst.backup_domains = src.backup_domains;
    }
    // A view carries no records; clears are free once the lists are empty.
    dst.stochastic.clear();
    dst.reserved.clear();
    dst.backup.clear();
  }
  for (TouchedMap& map : touched_) map.clear();
}

void LinkLedger::AssignAggregatesFromLinks(
    const LinkLedger& other, const std::vector<topology::VertexId>& links) {
  assert(topo_ == other.topo_);
  for (topology::VertexId v : links) {
    LinkState& dst = rows_[v];
    const LinkState& src = other.rows_[v];
    assert(dst.stochastic.empty() && dst.reserved.empty() &&
           dst.backup.empty() &&
           "partial capture is a shadow-ledger operation");
    dst.capacity = src.capacity;
    dst.deterministic = src.deterministic;
    dst.mean_sum = src.mean_sum;
    dst.var_sum = src.var_sum;
    dst.up = src.up;
    if (!src.backup_domains.empty() || !dst.backup_domains.empty()) {
      dst.backup_domains = src.backup_domains;
    }
  }
}

void LinkLedger::RemoveRequest(RequestId req) { RemoveRequest(req, nullptr); }

void LinkLedger::RemoveRequest(RequestId req, uint64_t* touched_buckets) {
  for (size_t bucket = 0; bucket < touched_.size(); ++bucket) {
    auto it = touched_[bucket].find(req);
    if (it == touched_[bucket].end()) continue;
    if (touched_buckets != nullptr) *touched_buckets |= uint64_t{1} << bucket;
    RemoveRecords(req, it->second);
    touched_[bucket].erase(it);
  }
}

void LinkLedger::RemoveRecords(RequestId req,
                               const std::vector<topology::VertexId>& links) {
  // Each touched list names a link at most once (Touch dedupes on insert),
  // so this visits every record of the request exactly once.  Sums are
  // restored by direct subtraction — no scan of the surviving records —
  // and record order is not preserved (swap-remove); nothing keys on it.
  for (topology::VertexId v : links) {
    LinkState& s = rows_[v];
    for (size_t i = 0; i < s.stochastic.size();) {
      if (s.stochastic[i].request == req) {
        s.mean_sum -= s.stochastic[i].mean;
        s.var_sum -= s.stochastic[i].variance;
        s.stochastic[i] = s.stochastic.back();
        s.stochastic.pop_back();
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < s.reserved.size();) {
      if (s.reserved[i].request == req) {
        s.deterministic -= s.reserved[i].amount;
        s.reserved[i] = s.reserved.back();
        s.reserved.pop_back();
      } else {
        ++i;
      }
    }
    // Snap empty links to exactly zero so subtraction drift cannot
    // accumulate across tenant churn on a link that fully drains.
    if (s.stochastic.empty()) {
      s.mean_sum = 0;
      s.var_sum = 0;
    }
    if (s.reserved.empty()) s.deterministic = 0;
    bool backup_removed = false;
    for (size_t i = 0; i < s.backup.size();) {
      if (s.backup[i].request == req) {
        s.backup[i] = s.backup.back();
        s.backup.pop_back();
        backup_removed = true;
      } else {
        ++i;
      }
    }
    if (backup_removed) {
      // Rebuild the per-domain sums from the surviving records: exact (a
      // domain whose records drain disappears entirely, so stale near-zero
      // sums cannot linger in the worst-case kernels) and O(records).
      s.backup_domains.clear();
      for (const BackupDemand& b : s.backup) {
        AccumulateDomain(s.backup_domains, b.domain, b.mean, b.variance,
                         b.deterministic);
      }
    }
  }
}

size_t LinkLedger::TotalRecords() const {
  size_t total = 0;
  for (size_t v = 0; v < num_rows_; ++v) {
    total += rows_[v].stochastic.size() + rows_[v].reserved.size() +
             rows_[v].backup.size();
  }
  return total;
}

}  // namespace svc::net
