#include "net/admission.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "stats/normal.h"

namespace svc::net {

double GuaranteeQuantile(double epsilon) {
  assert(epsilon > 0 && epsilon < 1);
  return stats::NormalQuantile(1.0 - epsilon);
}

double EffectiveBandwidth(double mu_i, double var_i, double var_total,
                          double c) {
  assert(var_total >= var_i && var_i >= 0);
  if (var_total <= 0) return mu_i;
  return mu_i + c * var_i / std::sqrt(var_total);
}

double OccupancyRatio(double capacity, double deterministic, double mean_sum,
                      double var_sum, double c) {
  assert(var_sum >= 0);
  if (capacity <= 0) {
    // Failed (drained) link: empty is vacuously fine, any demand overflows.
    return deterministic + mean_sum + var_sum <= 0
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  return (deterministic + mean_sum + c * std::sqrt(var_sum)) / capacity;
}

bool SatisfiesGuarantee(double capacity, double deterministic,
                        double mean_sum, double var_sum, double c) {
  // Tolerate accumulated floating-point drift at the feasibility boundary;
  // 1e-9 of relative capacity is far below any physically meaningful rate.
  const double slack = 1e-9 * capacity;
  if (var_sum <= 0) {
    return deterministic + mean_sum <= capacity + slack;
  }
  return capacity - deterministic - mean_sum >
         c * std::sqrt(var_sum) - slack;
}

double OccupancyRatioIfValid(double capacity, double deterministic,
                             double mean_sum, double var_sum, double c) {
  assert(var_sum >= 0);
  if (capacity <= 0) {
    // Failed (drained) link: only the empty link passes condition (4); the
    // guard sits outside the division so the capacity > 0 path is untouched.
    return deterministic + mean_sum + var_sum <= 0
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  const double slack = 1e-9 * capacity;
  const double root = c * std::sqrt(var_sum);
  // Same predicates as SatisfiesGuarantee, with the sqrt hoisted so it is
  // shared with the occupancy numerator (root == 0 when var_sum == 0).
  const bool valid = var_sum <= 0
                         ? deterministic + mean_sum <= capacity + slack
                         : capacity - deterministic - mean_sum > root - slack;
  if (!valid) return std::numeric_limits<double>::infinity();
  return (deterministic + mean_sum + root) / capacity;
}

}  // namespace svc::net
