// The paper's probabilistic-guarantee algebra (Eqs. 1, 4, 5, 6).
//
// A link with capacity C carries a deterministic reservation D (rate-limited
// Oktopus-style requests) and K stochastic demands B_i with means mu_i and
// variances var_i.  The residual S = C - D is statistically shared by the
// stochastic demands; the guarantee is Pr(sum B_i > S) < epsilon.  By the
// central-limit approximation sum B_i ~ N(sum mu_i, sum var_i), which gives:
//
//   condition (4):   S - sum(mu_i) > c * sqrt(sum(var_i)),
//                    c = Phi^{-1}(1 - epsilon)
//   effective bw (5): E_i = mu_i + c * var_i / sqrt(sum(var_i))
//   occupancy (6):   O = (D + sum(mu_i) + c*sqrt(sum(var_i))) / C
//
// O < 1 is exactly condition (4); for an all-deterministic link the
// condition degrades to D <= C (equality allowed, matching Oktopus).
#pragma once

namespace svc::net {

// Phi^{-1}(1 - epsilon); cached by callers that evaluate many links.
double GuaranteeQuantile(double epsilon);

// Effective amount of bandwidth attributed to one stochastic demand
// (Eq. 5).  `var_total` must include `var_i`; returns `mu_i` when the link
// carries no variance at all.
double EffectiveBandwidth(double mu_i, double var_i, double var_total,
                          double c);

// Occupancy ratio O (Eq. 6).  A link drained to capacity <= 0 (failed
// element, see LinkLedger::SetLinkState) is vacuously empty at zero demand
// and infinitely occupied otherwise.
double OccupancyRatio(double capacity, double deterministic, double mean_sum,
                      double var_sum, double c);

// Validity test for one link (Eq. 4).  Strict when any variance is present;
// allows equality for the purely deterministic case.
bool SatisfiesGuarantee(double capacity, double deterministic,
                        double mean_sum, double var_sum, double c);

// Fused conditions (4) + (6): the occupancy ratio when the guarantee holds,
// +inf when it does not.  Shares the single sqrt between the two checks, so
// allocator DP cells pay one quantile evaluation instead of two.  The
// finite values and the validity verdict are bit-identical to calling
// SatisfiesGuarantee and OccupancyRatio separately.
double OccupancyRatioIfValid(double capacity, double deterministic,
                             double mean_sum, double var_sum, double c);

}  // namespace svc::net
