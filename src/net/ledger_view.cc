#include "net/ledger_view.h"

namespace svc::net {

LedgerView::LedgerView(const topology::Topology& topo, double epsilon)
    : shadow_(topo, epsilon) {}

void LedgerView::Capture(const LinkLedger& ledger, uint64_t epoch) {
  shadow_.AssignAggregatesFrom(ledger);
  epoch_ = epoch;
}

void LedgerView::CaptureLinks(const LinkLedger& ledger,
                              const std::vector<topology::VertexId>& links,
                              uint64_t epoch) {
  shadow_.AssignAggregatesFromLinks(ledger, links);
  epoch_ = epoch;
}

}  // namespace svc::net
