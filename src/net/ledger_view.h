// Epoch-versioned immutable read view of a LinkLedger.
//
// The admission pipeline's stage-1 snapshot: the commit thread captures the
// ledger's per-link aggregates (C_L, D_L, running moment sums, up/down
// state) into a shadow ledger and stamps it with the books' epoch at
// capture time.  The per-request demand records are NOT copied — every
// read-side kernel the allocators use (OccupancyWith / ValidWith /
// OccupancyWithBatch / FeasibleFrontier) is a pure function of the
// aggregates, so allocators run unmodified against the view while the
// authoritative ledger keeps mutating on the commit thread.
//
// A captured view never changes, which is what makes it safe to read from
// any number of speculation workers without locks.  To move a view forward,
// publish a freshly captured one; never recapture a view other threads may
// still be reading.
#pragma once

#include <cstdint>

#include "net/link_ledger.h"

namespace svc::net {

class LedgerView {
 public:
  LedgerView(const topology::Topology& topo, double epsilon);

  // Copies `ledger`'s aggregates into the shadow and stamps the view with
  // `epoch`.  Reuses the shadow's storage, so steady-state captures touch
  // no heap.  Must not run concurrently with readers of this same view.
  void Capture(const LinkLedger& ledger, uint64_t epoch);

  // Partial re-capture: refreshes only the listed links' aggregates (rows
  // outside the list keep their previously captured values) and stamps the
  // view with `epoch`.  The sharded snapshot refresh calls this once per
  // stale bucket, skipping the O(links) copy for buckets that did not move.
  // Same concurrency rule as Capture.
  void CaptureLinks(const LinkLedger& ledger,
                    const std::vector<topology::VertexId>& links,
                    uint64_t epoch);

  // The books' version this view was captured at.
  uint64_t epoch() const { return epoch_; }

  // Read-only kernel access.  The shadow's record lists are empty by
  // construction; record-based queries (AffectedRequests, TotalRecords)
  // are meaningless on a view.
  const LinkLedger& ledger() const { return shadow_; }

 private:
  LinkLedger shadow_;
  uint64_t epoch_ = 0;
};

}  // namespace svc::net
