#include "net/shard_map.h"

#include <algorithm>
#include <cassert>

namespace svc::net {

ShardMap::ShardMap(const topology::Topology& topo, int num_shards)
    : topo_(&topo) {
  assert(topo.finalized());
  const topology::VertexId root = topo.root();
  const std::vector<topology::VertexId>& tops = topo.children(root);
  const int n_tops = static_cast<int>(tops.size());
  num_shards_ = std::clamp(num_shards, 1, std::max(1, n_tops));
  num_shards_ = std::min(num_shards_, kMaxShards);

  // Contiguous grouping: top-level subtree i (in child order, which is
  // construction order, so adjacent subtrees occupy adjacent vertex-id
  // ranges) goes to group i * S / n.  Group sizes differ by at most one.
  shard_.assign(topo.num_vertices(), num_shards_);  // root -> core stripe
  for (int i = 0; i < n_tops; ++i) {
    shard_[tops[i]] =
        static_cast<int>(static_cast<int64_t>(i) * num_shards_ / n_tops);
  }
  // Children are always added after their parent (AddVertex names an
  // existing parent), so one ascending pass propagates the labels.
  for (topology::VertexId v = 1; v < topo.num_vertices(); ++v) {
    const topology::VertexId p = topo.parent(v);
    if (p != root) shard_[v] = shard_[p];
  }

  links_.resize(bucket_count());
  for (topology::VertexId v = 1; v < topo.num_vertices(); ++v) {
    links_[bucket_of_link(v)].push_back(v);
  }
  machines_.resize(num_shards_);
  for (topology::VertexId m : topo.machines()) {
    machines_[shard_[m]].push_back(m);
  }
}

}  // namespace svc::net
