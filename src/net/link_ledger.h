// Per-link bandwidth bookkeeping for a finalized topology.
//
// This is the network manager's "up-to-date status of the datacenter
// network" (paper Section III-C): for every physical link it tracks the
// capacity C_L, the deterministic reservation D_L, and the per-request
// stochastic demand records (mu_{i,L}, sigma^2_{i,L}), plus their running
// sums so validity and occupancy checks are O(1).
//
// Links are identified by the child vertex of the link (topology
// convention).  Mutations are grouped per request so a tenant departure
// releases every link it touched in O(records).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/admission.h"
#include "net/shard_map.h"
#include "topology/topology.h"
#include "util/affinity.h"

namespace svc::net {

using RequestId = int64_t;

// One stochastic demand record on a link: request r contributes demand
// B_r^L with the given first two moments.
struct StochasticDemand {
  RequestId request;
  double mean;
  double variance;
};

// One deterministic reservation record (Oktopus-style, rate limited).
struct DeterministicDemand {
  RequestId request;
  double amount;
};

// One shared-backup demand record (docs/ROBUSTNESS.md "Survivability"): the
// demand request r's backup group adds to the link, but only in the
// post-failure state of `domain` (the protected primary machine).  Backups
// protecting different domains never activate together under the
// single-failure assumption, so records of distinct domains SHARE the
// link's headroom instead of summing.
struct BackupDemand {
  RequestId request;
  topology::VertexId domain;
  double mean;
  double variance;
  double deterministic;
};

// Running sums of one domain's backup records on one link — the post-failure
// state of that domain is the link's base sums plus these.  Kept sorted by
// domain id (a handful of entries per link in practice).
struct BackupDomainSums {
  topology::VertexId domain = topology::kNoVertex;
  double mean_sum = 0;
  double var_sum = 0;
  double det_sum = 0;
};

struct LinkState {
  double capacity = 0;       // C_L (0 while the link is down)
  double deterministic = 0;  // D_L
  double mean_sum = 0;       // sum of stochastic means on the link
  double var_sum = 0;        // sum of stochastic variances on the link
  bool up = true;            // fault-plane state; capacity drains to 0 down
  std::vector<StochasticDemand> stochastic;
  std::vector<DeterministicDemand> reserved;
  // Shared-backup class: per-record bookkeeping plus per-domain sums.  Both
  // stay empty unless survivable admission is on, so the legacy read paths
  // below cost one emptiness test.
  std::vector<BackupDemand> backup;
  std::vector<BackupDomainSums> backup_domains;
};

class LinkLedger {
 public:
  // The ledger borrows the topology; it must outlive the ledger.
  // `epsilon` is the SLA risk factor of condition (1).
  LinkLedger(const topology::Topology& topo, double epsilon);
  ~LinkLedger();

  // Copies deep-copy the row array back into ordinary heap storage (a
  // copy is a fresh ledger, not a re-homed one); moves transfer the
  // first-touch mapping intact.
  LinkLedger(const LinkLedger& other);
  LinkLedger& operator=(const LinkLedger& other);
  LinkLedger(LinkLedger&& other) noexcept;
  LinkLedger& operator=(LinkLedger&& other) noexcept;

  // Runs `init` on whichever thread should own bucket `bucket`'s pages;
  // must not return until init has completed.
  using RowToucher = std::function<void(int bucket,
                                        const std::function<void()>& init)>;

  // First-touch re-homing of the row array (docs/PERFORMANCE.md §7): moves
  // every LinkState row into a fresh page-aligned FirstTouchBuffer, with
  // bucket b's rows move-constructed inside `touch(b, init)` — the caller
  // runs init on the shard worker pinned to the node that should own the
  // bucket, so Linux's first-touch policy places those pages node-locally.
  // Rows no bucket owns (the root row; every row when unsharded) are
  // touched by the calling thread.  Ledger contents are unchanged —
  // aggregates, records and touched bookkeeping all survive verbatim, so
  // admission decisions cannot depend on whether re-homing ran.  Requires
  // a quiesced commit plane (no concurrent readers or writers).  NOTE: the
  // per-record heap vectors inside each row keep their old allocations;
  // they drain and refill node-locally through normal churn, since
  // AddStochastic/RemoveRequest run on the owning shard worker.
  void RehomeRows(const RowToucher& touch);

  // True once RehomeRows has replaced the heap vector with a first-touch
  // buffer (diagnostics / tests).
  bool rows_rehomed() const { return static_cast<bool>(rehomed_); }

  // --- Sharding (docs/CONCURRENCY.md "Sharded fabric commit") ---

  // Installs (or, with nullptr, removes) a shard partition.  The per-request
  // touched-link bookkeeping moves into per-bucket storage, so mutations
  // that stay within one bucket — AddStochastic / AddDeterministic /
  // RemoveRequest restricted to that bucket's links — are safe to run
  // concurrently with mutations in *other* buckets: they write disjoint
  // LinkState rows and disjoint touched maps.  The map is borrowed and must
  // outlive the ledger (or the next SetShardMap call).
  void SetShardMap(const ShardMap* shards);
  const ShardMap* shard_map() const { return shards_; }
  // Bucket owning link v (0 when unsharded).
  int bucket_of(topology::VertexId v) const {
    return shards_ == nullptr ? 0 : shards_->bucket_of_link(v);
  }

  double epsilon() const { return epsilon_; }
  // c = Phi^{-1}(1 - epsilon), cached.
  double quantile() const { return c_; }
  const topology::Topology& topo() const { return *topo_; }

  const LinkState& link(topology::VertexId v) const { return rows_[v]; }

  // S_L = C_L - D_L, the stochastic sharing bandwidth.
  double SharingBandwidth(topology::VertexId v) const;

  // Occupancy ratio O_L of the link under current state (Eq. 6).
  double Occupancy(topology::VertexId v) const;

  // Condition-(4) occupancy slack of the link under current state:
  // 1 - O_L.  0 means the link sits exactly at its admissible stochastic
  // load; clamped below at -1 so drained links (O_L = +inf once capacity
  // is zero) stay finite — the decision log serializes this per binding
  // link (docs/OBSERVABILITY.md "Decision records").
  double Slack(topology::VertexId v) const;

  // Occupancy if a candidate demand (stochastic moments + deterministic
  // amount) were added, or +inf when the candidate would violate condition
  // (4).  Validity and occupancy share one quantile evaluation, so the
  // allocators' DP inner loop pays a single sqrt per cell.
  double OccupancyWith(topology::VertexId v, double mean_add, double var_add,
                       double det_add) const;

  // Condition (4) with the candidate included.  Thin shim over the fused
  // OccupancyWith semantics, kept for callers (and tests) that only need
  // the verdict.
  bool ValidWith(topology::VertexId v, double mean_add, double var_add,
                 double det_add) const;

  // Batch kernel over one link: evaluates the fused OccupancyWith for
  // `count` candidate demands given as parallel arrays, writing the
  // occupancy (or +inf on a condition-(4) violation) into out[i].  The
  // link's running sums are loaded once and the loop body is branch-free
  // arithmetic plus one sqrt per cell, so the compiler can vectorize the
  // affine part and batch the sqrts.  Each out[i] is bit-identical to
  // OccupancyWith(v, mean_add[i], var_add[i], det_add[i]).
  void OccupancyWithBatch(topology::VertexId v, const double* mean_add,
                          const double* var_add, const double* det_add,
                          int count, double* out) const;

  // Binary search of the feasibility frontier over candidates whose
  // moments are MONOTONE NON-DECREASING on [lo, hi] (all three arrays).
  // Returns the first index in [lo, hi] whose candidate violates condition
  // (4), or hi + 1 when every candidate is feasible.  Occupancy is
  // monotone in each moment, so the feasible candidates form a prefix and
  // O(log) fused evaluations locate the frontier exactly.
  int FeasibleFrontier(topology::VertexId v, const double* mean_add,
                       const double* var_add, const double* det_add, int lo,
                       int hi) const;

  // Descending counterpart: moments MONOTONE NON-INCREASING on [lo, hi],
  // so infeasible candidates form a prefix.  Returns the first feasible
  // index in [lo, hi], or hi + 1 when every candidate violates (4).
  int FeasibleFrontierDescending(topology::VertexId v, const double* mean_add,
                                 const double* var_add, const double* det_add,
                                 int lo, int hi) const;

  // Maximum occupancy ratio over all links (the Fig. 9 sample statistic).
  double MaxOccupancy() const;

  // --- Shared-backup class (survivable admission) ---
  //
  // Every read kernel above (OccupancyWith / ValidWith / the batch and
  // frontier variants) evaluates the WORST post-failure state of the link:
  // the no-failure state plus, for each protected domain d with backup
  // records here, the state with d's backup sums activated.  Links without
  // backup records take the legacy single-state path bit-identically.
  // Post-failure states are only enforced on up links — a drained link's
  // backup records are unenforceable until switchover re-validates them
  // through AdmitPlacement.

  // Occupancy of link v in the post-failure state of `domain` with a
  // candidate demand added (the candidate is the backup group's own demand
  // plus any primary demand the same placement puts on this link), or +inf
  // when that state would violate condition (4).  Domains with no backup
  // records on v degrade to the plain fused kernel.
  double OccupancyWithDomain(topology::VertexId v, topology::VertexId domain,
                             double mean_add, double var_add,
                             double det_add) const;

  // Verdict-only shim over OccupancyWithDomain.
  bool ValidWithDomain(topology::VertexId v, topology::VertexId domain,
                       double mean_add, double var_add, double det_add) const;

  // Fraction of link v's occupancy held by backup reservations: worst-case
  // occupancy minus no-failure occupancy, clamped to [0, 1] and 0 when
  // either side is non-finite (drained link).  The "backup bandwidth tax"
  // statistic for bench/fault_recovery.
  double BackupShare(topology::VertexId v) const;

  // Maximum BackupShare over all links.
  double MaxBackupShare() const;

  // --- Fault plane ---

  // Whether the link below vertex v is up (new links start up).
  bool link_up(topology::VertexId v) const { return rows_[v].up; }

  // Transactionally drains or restores the link's capacity: down sets
  // C_L = 0 (so condition (4) and occupancy (6) immediately reflect the
  // outage — any remaining demand shows as O_L = +inf), up restores the
  // topology's nominal capacity.  Existing demand records are NOT removed;
  // the manager decides what to do with affected tenants (see
  // AffectedRequests).  Idempotent.
  void SetLinkState(topology::VertexId v, bool up);

  // Request ids with at least one demand record (stochastic or
  // deterministic) on link v, sorted ascending and deduplicated — the
  // tenants whose placements a fault on v strands.
  std::vector<RequestId> AffectedRequests(topology::VertexId v) const;

  // --- Mutations ---

  // Records a stochastic demand of request `req` on link v.  Demands with
  // negligible moments are skipped (links entirely above/below the
  // placement carry none).
  void AddStochastic(topology::VertexId v, RequestId req, double mean,
                     double variance);

  // Records a deterministic reservation.
  void AddDeterministic(topology::VertexId v, RequestId req, double amount);

  // Records a shared-backup demand of request `req` on link v, active only
  // in the post-failure state of `domain` (a protected primary machine of
  // the request).  Negligible demands are skipped like AddStochastic.
  void AddBackup(topology::VertexId v, RequestId req,
                 topology::VertexId domain, double mean, double variance,
                 double deterministic);

  // Removes every record of `req` and restores the running sums by direct
  // subtraction (O(records on touched links), no rebuild scan).  Links
  // whose record lists drain snap their sums to exactly zero, so drift
  // cannot accumulate across tenant churn.  Removing an unknown request is
  // a no-op (idempotent release).
  void RemoveRequest(RequestId req);

  // As above, additionally OR-ing into `touched_buckets` one bit per bucket
  // the request had records in — the scoped-epoch-invalidation input for
  // NetworkManager::Release (an unknown request leaves the mask untouched).
  void RemoveRequest(RequestId req, uint64_t* touched_buckets);

  // Recomputes the running sums of a link from its records (diagnostics /
  // drift audits; the mutation paths maintain the sums directly).
  void RebuildSums(topology::VertexId v);

  // Overwrites this ledger's per-link aggregates (capacity, D_L, moment
  // sums, up state) and risk parameters with `other`'s, WITHOUT copying the
  // per-request demand records — the record lists here are cleared.  Both
  // ledgers must be over the same topology.  This is the LedgerView capture
  // primitive: every read-side kernel above depends only on the aggregates,
  // and reusing this ledger's storage keeps steady-state captures off the
  // heap.
  void AssignAggregatesFrom(const LinkLedger& other);

  // Partial capture: overwrites the aggregates of exactly the listed links
  // with `other`'s, leaving every other row untouched.  Used by the sharded
  // snapshot refresh to re-capture only the buckets whose epoch moved
  // (`links` is typically ShardMap::links_in_bucket).  Unlike the full
  // capture this does NOT clear record lists or touched bookkeeping — it is
  // only meaningful on a shadow ledger, which never holds records.
  void AssignAggregatesFromLinks(const LinkLedger& other,
                                 const std::vector<topology::VertexId>& links);

  // Total number of demand records (diagnostics / tests).
  size_t TotalRecords() const;

 private:
  using TouchedMap =
      std::unordered_map<RequestId, std::vector<topology::VertexId>>;

  const topology::Topology* topo_;
  double epsilon_;
  double c_;
  // Appends v to its bucket's touched list for req unless already present.
  void Touch(RequestId req, topology::VertexId v);
  // Removes req's records on the links of one touched list.
  void RemoveRecords(RequestId req,
                     const std::vector<topology::VertexId>& links);

  // Destroys the placement-new'd rows living in `rehomed_` (no-op while
  // the rows still live in `links_`).
  void DestroyRehomedRows();

  const ShardMap* shards_ = nullptr;  // borrowed; nullptr = unsharded
  // Row storage, indexed by vertex id (root row unused).  `rows_` is the
  // single access path; it aims at `links_.data()` until RehomeRows moves
  // the rows into `rehomed_` (placement-new'd there, destroyed by hand).
  std::vector<LinkState> links_;
  util::FirstTouchBuffer rehomed_;
  LinkState* rows_ = nullptr;
  size_t num_rows_ = 0;
  // Which links each live request touches, for O(records) release, bucketed
  // by shard (one map when unsharded) so same-bucket mutations never share
  // a map with another bucket's.  Each link appears at most once per
  // request per bucket (see Touch).
  std::vector<TouchedMap> touched_;
};

}  // namespace svc::net
