// Small work-stealing thread pool for fanning independent simulation
// replicas across cores.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
// steals FIFO from a victim when its deque drains, so an uneven sweep grid
// (some (parameter, seed) points simulate 10x longer than others) still
// keeps every core busy until the tail.  Submission round-robins across the
// worker deques, which is enough load spreading for the coarse-grained
// replica tasks this pool exists for (milliseconds to seconds each) — the
// stealing path handles the imbalance.
//
// The pool makes no fairness or priority promises and tasks must not block
// on each other (no nested Wait); that keeps the implementation small and
// the failure modes simple.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace svc::util {

// Count-down latch for fan-out/join of a known number of tasks on a
// ThreadPool without using ThreadPool::Wait() (which waits for *every*
// task submitted so far and must not run concurrently with other waiters).
// The submitting thread may keep doing work of its own between Submit()
// and Wait(); it blocks only until the counted tasks retire.  Stack
// allocation is the intended use — a Latch owns no heap state.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  // Called exactly once per counted task, from any thread.
  void CountDown();

  // Blocks until `count` CountDown() calls have happened.
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

class ThreadPool {
 public:
  // `num_threads` == 0 uses the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Safe to call from any thread, including pool workers
  // (a worker submitting pushes onto its own deque).
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.  Must not be
  // called from inside a pool task.
  void Wait();

  // Tasks currently sitting in the worker deques (excludes running tasks):
  // the saturation signal batch submitters throttle on (see
  // sim::SweepRunner) and the source of the `threadpool/queue_depth`
  // gauge.  Approximate by nature — workers drain concurrently.
  int64_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  // std::thread::hardware_concurrency with a sane floor of 1.
  static int HardwareThreads();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);
  // Pops one task — own deque back first, then steals from the other
  // workers' fronts.  Returns false when every deque is empty.
  bool TryTake(int self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Wakes idle workers on submit/stop.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  // Signals Wait() when the last in-flight task retires.
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::atomic<int64_t> queued_{0};   // tasks sitting in deques
  std::atomic<int64_t> pending_{0};  // queued + running
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_worker_{0};  // round-robin submit cursor
};

}  // namespace svc::util
