// Small work-stealing thread pool for fanning independent simulation
// replicas across cores.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
// steals FIFO from a victim when its deque drains, so an uneven sweep grid
// (some (parameter, seed) points simulate 10x longer than others) still
// keeps every core busy until the tail.  Submission round-robins across the
// worker deques, which is enough load spreading for the coarse-grained
// replica tasks this pool exists for (milliseconds to seconds each) — the
// stealing path handles the imbalance.
//
// The pool makes no fairness or priority promises and tasks must not block
// on each other (no nested Wait); that keeps the implementation small and
// the failure modes simple.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/affinity.h"
#include "util/cpu_topology.h"

namespace svc::util {

// Count-down latch for fan-out/join of a known number of tasks on a
// ThreadPool without using ThreadPool::Wait() (which waits for *every*
// task submitted so far and must not run concurrently with other waiters).
// The submitting thread may keep doing work of its own between Submit()
// and Wait(); it blocks only until the counted tasks retire.  Stack
// allocation is the intended use — a Latch owns no heap state.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  // Called exactly once per counted task, from any thread.
  void CountDown();

  // Blocks until `count` CountDown() calls have happened.
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

// Placement-aware construction knobs.  The default is indistinguishable
// from `ThreadPool(n)`: no pinning, OS scheduling.
struct ThreadPoolOptions {
  // 0 uses the hardware concurrency; always clamped to >= 1 even when
  // std::thread::hardware_concurrency() reports 0 (unknown hardware must
  // not yield an empty pool that deadlocks every Submit).
  int num_threads = 0;
  PlacementPolicy placement = PlacementPolicy::kNone;
  // Borrowed; must outlive the constructor call (the plan is computed
  // eagerly).  nullptr + a non-kNone policy detects the host topology.
  const CpuTopology* topology = nullptr;
  // Cpus to fill last — e.g. the pinned shard-commit workers' cores, so
  // speculation workers spread over the *remaining* cores first.
  std::vector<CpuSlot> reserved;
};

class ThreadPool {
 public:
  // `num_threads` == 0 uses the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  explicit ThreadPool(const ThreadPoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // The resolved worker→cpu plan (slot.cpu == -1: unpinned).  Index i is
  // worker i; stable for the pool's lifetime.  Bench snapshots log this so
  // placement-dependent latency outliers can be explained after the fact.
  const std::vector<CpuSlot>& worker_cpus() const { return plan_; }

  // Enqueues a task.  Safe to call from any thread, including pool workers
  // (a worker submitting pushes onto its own deque).
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.  Must not be
  // called from inside a pool task.
  void Wait();

  // Tasks currently sitting in the worker deques (excludes running tasks):
  // the saturation signal batch submitters throttle on (see
  // sim::SweepRunner) and the source of the `threadpool/queue_depth`
  // gauge.  Approximate by nature — workers drain concurrently.
  int64_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  // std::thread::hardware_concurrency with a sane floor of 1.
  static int HardwareThreads();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
    // Victim scan order for this worker: same-node workers first (stealing
    // inside a node moves the task's cache lines across a shared LLC, not
    // the interconnect), rotated so victims spread.
    std::vector<int> victims;
    int node = 0;
  };

  void WorkerLoop(int self);
  // Pops one task — own deque back first, then steals from the other
  // workers' fronts.  Returns false when every deque is empty.
  bool TryTake(int self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::vector<CpuSlot> plan_;  // worker i's pin target (cpu -1: unpinned)

  // Wakes idle workers on submit/stop.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  // Signals Wait() when the last in-flight task retires.
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::atomic<int64_t> queued_{0};   // tasks sitting in deques
  std::atomic<int64_t> pending_{0};  // queued + running
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_worker_{0};  // round-robin submit cursor
};

}  // namespace svc::util
