// Minimal streaming JSON writer for bench output (BENCH_PERF.json and the
// micro-bench --json mode).
//
// Emits compact, valid JSON with keys in insertion order; commas and
// nesting are handled by the writer so call sites read like the document.
// Doubles are printed with enough digits to round-trip (%.17g) and
// non-finite values — which JSON cannot represent — degrade to null.
//
//   util::JsonWriter w;
//   w.BeginObject();
//   w.Key("speedup"); w.Value(3.7);
//   w.Key("series"); w.BeginArray(); w.Value(1.0); w.Value(2.0); w.EndArray();
//   w.EndObject();
//   std::string doc = w.str();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svc::util {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Must be called inside an object, immediately before the member's value.
  void Key(const std::string& key);

  void Value(double v);
  void Value(int64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(uint64_t v);
  void Value(bool v);
  void Value(const std::string& v);
  void Value(const char* v) { Value(std::string(v)); }
  void Null();

  // Shorthand for Key(k); Value(v).
  template <typename T>
  void Member(const std::string& key, const T& value) {
    Key(key);
    Value(value);
  }

  // The document so far.  Well-formed once every Begin* has been closed.
  const std::string& str() const { return out_; }

  // Escapes `text` as a JSON string literal (with quotes).
  static std::string Escape(const std::string& text);

 private:
  void Separate();  // emits the comma before a sibling element

  std::string out_;
  // One entry per open container: true once it has at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace svc::util
