#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace svc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (char ch : cell) {
          if (ch == '"') quoted += '"';
          quoted += ch;
        }
        quoted += '"';
        cell = quoted;
      }
      out << cell;
      if (c + 1 < row.size()) out << ",";
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace svc::util
