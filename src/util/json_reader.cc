#include "util/json_reader.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace svc::util {

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

JsonValue JsonValue::MakeArray() {
  JsonValue value;
  value.kind_ = Kind::kArray;
  return value;
}

JsonValue JsonValue::MakeObject() {
  JsonValue value;
  value.kind_ = Kind::kObject;
  return value;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over the whole document.  Depth is bounded so a
// hostile (or accidentally self-referencing) input cannot overflow the
// stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    if (!ParseValue(value, 0)) return std::move(error_);
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after the top-level value");
      return std::move(error_);
    }
    return value;
  }

 private:
  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return !Fail("nesting deeper than 64 levels");
    if (pos_ >= text_.size()) return !Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't': return ParseLiteral("true", JsonValue::MakeBool(true), out);
      case 'f': return ParseLiteral("false", JsonValue::MakeBool(false), out);
      case 'n': return ParseLiteral("null", JsonValue::MakeNull(), out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return !Fail(std::string("unexpected character '") + c + "'");
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Peek('}')) {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!Peek('"')) return !Fail("expected '\"' to start an object key");
      JsonValue key;
      if (!ParseString(key)) return false;
      if (out.Find(key.AsString()) != nullptr) {
        return !Fail("duplicate object key \"" + key.AsString() + "\"");
      }
      SkipWhitespace();
      if (!Peek(':')) return !Fail("expected ':' after object key");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.members().emplace_back(key.AsString(), std::move(value));
      SkipWhitespace();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek('}')) {
        ++pos_;
        return true;
      }
      return !Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Peek(']')) {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.items().push_back(std::move(value));
      SkipWhitespace();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek(']')) {
        ++pos_;
        return true;
      }
      return !Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(JsonValue& out) {
    ++pos_;  // '"'
    std::string value;
    while (true) {
      if (pos_ >= text_.size()) return !Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        out = JsonValue::MakeString(std::move(value));
        return true;
      }
      if (c < 0x20) return !Fail("raw control character in string");
      if (c != '\\') {
        value.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return !Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.push_back('"'); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(code)) return false;
          AppendUtf8(code, value);
          break;
        }
        default:
          return !Fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  bool ParseHex4(unsigned& code) {
    code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return !Fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else return !Fail("non-hex digit in \\u escape");
    }
    return true;
  }

  // Encodes a BMP code point as UTF-8 (surrogate pairs are passed through as
  // two separate 3-byte sequences — configs are ASCII in practice).
  static void AppendUtf8(unsigned code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    // Integer part: one zero, or a nonzero digit followed by digits.
    if (Peek('0')) {
      ++pos_;
    } else if (PeekDigit()) {
      while (PeekDigit()) ++pos_;
    } else {
      return !Fail("malformed number");
    }
    if (Peek('.')) {
      ++pos_;
      if (!PeekDigit()) return !Fail("digit required after decimal point");
      while (PeekDigit()) ++pos_;
    }
    if (Peek('e') || Peek('E')) {
      ++pos_;
      if (Peek('+') || Peek('-')) ++pos_;
      if (!PeekDigit()) return !Fail("digit required in exponent");
      while (PeekDigit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return !Fail("number out of range");
    out = JsonValue::MakeNumber(value);
    return true;
  }

  bool ParseLiteral(const char* literal, JsonValue value, JsonValue& out) {
    for (const char* p = literal; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return !Fail(std::string("expected '") + literal + "'");
      }
    }
    out = std::move(value);
    return true;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool PeekDigit() const {
    return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
  }

  // Records the first error with its line:column; always returns true so
  // call sites read `return !Fail(...)`.
  bool Fail(const std::string& what) {
    if (error_.ok()) {
      size_t line = 1, column = 1;
      for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
      }
      error_ = Status(ErrorCode::kInvalidArgument,
                      "json: " + what + " at line " + std::to_string(line) +
                          ", column " + std::to_string(column));
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  Status error_;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace svc::util
