// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value` forms plus `--help`.  Flags are
// registered with a default and a description; unknown flags are an error so
// typos in bench invocations fail loudly.
//
// An argument of the form `@path` is a response file: it is replaced by the
// whitespace-separated tokens of that file (newlines included; `#` starts a
// comment to end of line), so recurring flag bundles — a scenario override
// set, a CI profile — live in one file and compose with inline flags:
//
//   scenario_run @ci/smoke.flags --scenario fig7
//
// Response files expand exactly one level (a token starting with '@' inside
// a response file is an error, not a nested include).
//
//   util::FlagSet flags("fig5_oversubscription");
//   int& jobs = flags.Int("jobs", 300, "number of tenant jobs");
//   double& eps = flags.Double("epsilon", 0.05, "risk factor");
//   flags.Parse(argc, argv);   // exits with usage on error / --help
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace svc::util {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  // Registration.  The returned reference stays valid for the FlagSet's
  // lifetime and is updated by Parse().
  int64_t& Int(const std::string& name, int64_t default_value,
               const std::string& help);
  double& Double(const std::string& name, double default_value,
                 const std::string& help);
  bool& Bool(const std::string& name, bool default_value,
             const std::string& help);
  std::string& String(const std::string& name, std::string default_value,
                      const std::string& help);

  // Parses argv.  On `--help` prints usage and exits 0; on malformed or
  // unknown flags prints usage and exits 2.
  void Parse(int argc, char** argv);

  // Usage text (also printed by Parse on error).
  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    // Owned storage, stable addresses.
    int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
  };

  Flag& Register(const std::string& name, Type type, const std::string& help);
  bool SetFromText(Flag& flag, const std::string& text);

  std::string description_;
  std::map<std::string, Flag*> flags_;        // name -> owned flag
  std::vector<std::unique_ptr<Flag>> owned_;  // storage
};

}  // namespace svc::util
