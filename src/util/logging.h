// Minimal leveled logger used by the library, simulator, and benches.
//
// Design goals: zero dependencies, cheap when a level is disabled, and
// streaming syntax:
//
//   SVC_LOG(Info) << "allocated " << n << " VMs under vertex " << v;
//
// The global level defaults to Warning so library code is silent in tests;
// benches raise it to Info.
#pragma once

#include <sstream>
#include <string>

namespace svc::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// True if a message at `level` would be emitted.
bool LogEnabled(LogLevel level);

namespace internal {

// Accumulates one log line and flushes it (with level tag and timestamp)
// on destruction.  Construct only via SVC_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace svc::util

#define SVC_LOG(severity)                                                  \
  if (!::svc::util::LogEnabled(::svc::util::LogLevel::k##severity)) {      \
  } else                                                                   \
    ::svc::util::internal::LogMessage(::svc::util::LogLevel::k##severity, \
                                      __FILE__, __LINE__)
