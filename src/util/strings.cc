#include "util/strings.h"

#include <stdexcept>

namespace svc::util {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<double> ParseDoubleList(const std::string& text) {
  std::vector<double> values;
  for (const auto& part : Split(text, ',')) {
    const std::string trimmed = Trim(part);
    if (trimmed.empty()) continue;
    size_t used = 0;
    double v = std::stod(trimmed, &used);
    if (used != trimmed.size()) {
      throw std::invalid_argument("malformed double: '" + trimmed + "'");
    }
    values.push_back(v);
  }
  return values;
}

std::vector<int64_t> ParseIntList(const std::string& text) {
  std::vector<int64_t> values;
  for (const auto& part : Split(text, ',')) {
    const std::string trimmed = Trim(part);
    if (trimmed.empty()) continue;
    size_t used = 0;
    long long v = std::stoll(trimmed, &used);
    if (used != trimmed.size()) {
      throw std::invalid_argument("malformed int: '" + trimmed + "'");
    }
    values.push_back(v);
  }
  return values;
}

}  // namespace svc::util
