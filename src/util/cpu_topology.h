// CPU / NUMA topology detection for thread and memory placement.
//
// `CpuTopology` answers the questions the placement layer (util/affinity.h)
// asks: how many packages, NUMA nodes, physical cores and logical CPUs does
// this host have, which CPUs sit on which node, and which logical CPUs are
// SMT siblings of an already-counted core.  On Linux the answers come from
// sysfs (`/sys/devices/system/cpu`, `/sys/devices/system/node`); everywhere
// else — and on hosts where sysfs is absent or unreadable, e.g. locked-down
// containers — detection degrades to a single-node fallback sized by
// `std::thread::hardware_concurrency()`, so callers never have to special
// case "no topology".
//
// For tests, `FromSysfs(root)` parses a fixture directory laid out like the
// real sysfs tree (`<root>/devices/system/cpu/...`), which makes multi-node
// and SMT shapes testable on any build host.
#pragma once

#include <string>
#include <vector>

namespace svc::util {

// One logical CPU as the kernel numbers them.
struct CpuInfo {
  int cpu = -1;      // logical cpu id (the sched_setaffinity id)
  int package = 0;   // dense physical-package rank
  int core = 0;      // dense physical-core rank (global across packages)
  int node = 0;      // NUMA node owning this cpu's local memory
  bool smt = false;  // true for every sibling after the first on its core
};

class CpuTopology {
 public:
  // Empty topology; `num_cpus() == 0`.  Use Detect()/FromSysfs()/SingleNode.
  CpuTopology() = default;

  // Detects the host topology.  Linux: parses /sys; other platforms or a
  // missing/unreadable sysfs: SingleNode(hardware_concurrency) fallback
  // with `detected() == false`.
  static CpuTopology Detect();

  // Parses a sysfs tree rooted at `root` (so the real root is "/sys" and a
  // test fixture is any directory with the same layout).  Missing per-cpu
  // topology files degrade per-cpu (package 0, core == cpu); a missing cpu
  // list entirely yields the SingleNode fallback.
  static CpuTopology FromSysfs(const std::string& root);

  // Flat fallback: `cpus` logical CPUs (floor 1), each its own core, one
  // package, one node.
  static CpuTopology SingleNode(int cpus);

  // Parses a kernel cpu range list ("0-3,8,10-11") into ascending ids.
  // Malformed input yields an empty vector.  Exposed for tests.
  static std::vector<int> ParseCpuList(const std::string& text);

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  int num_nodes() const { return static_cast<int>(node_cpus_.size()); }
  int num_cores() const { return num_cores_; }
  int num_packages() const { return num_packages_; }

  // True when the numbers came from sysfs, false for the fallback shape.
  bool detected() const { return detected_; }

  const std::vector<CpuInfo>& cpus() const { return cpus_; }

  // Logical cpu ids on `node`, ascending, non-SMT siblings first.  Empty
  // for out-of-range nodes.
  const std::vector<int>& cpus_on_node(int node) const;

  // Node owning `cpu`'s local memory; 0 when the cpu is unknown.
  int node_of_cpu(int cpu) const;

  // "2 packages / 2 nodes / 16 cores / 32 cpus" — bench snapshot headers.
  std::string Summary() const;

 private:
  void IndexNodes();

  std::vector<CpuInfo> cpus_;             // ascending by logical cpu id
  std::vector<std::vector<int>> node_cpus_;  // node -> cpu ids (primaries first)
  int num_cores_ = 0;
  int num_packages_ = 0;
  bool detected_ = false;
};

}  // namespace svc::util
