// Small string helpers shared by benches and the workload parser.
#pragma once

#include <string>
#include <vector>

namespace svc::util {

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& text);

// Parses a comma-separated list of doubles ("1,2,3.5"); throws
// std::invalid_argument on malformed input.
std::vector<double> ParseDoubleList(const std::string& text);

// Parses a comma-separated list of ints.
std::vector<int64_t> ParseIntList(const std::string& text);

}  // namespace svc::util
