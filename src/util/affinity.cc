#include "util/affinity.h"

#include <cstring>
#include <new>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace svc::util {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kNone:
      return "none";
    case PlacementPolicy::kCompact:
      return "compact";
    case PlacementPolicy::kScatter:
      return "scatter";
    case PlacementPolicy::kShardNode:
      return "shard_node";
  }
  return "none";
}

bool ParsePlacementPolicy(std::string_view name, PlacementPolicy* out) {
  if (name == "none") {
    *out = PlacementPolicy::kNone;
  } else if (name == "compact") {
    *out = PlacementPolicy::kCompact;
  } else if (name == "scatter") {
    *out = PlacementPolicy::kScatter;
  } else if (name == "shard_node") {
    *out = PlacementPolicy::kShardNode;
  } else {
    return false;
  }
  return true;
}

bool PinCurrentThreadToCpu(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

namespace {

// The cpus of `topo` in the order a policy consumes them.  kCompact packs
// node by node (primaries before SMT within a node, the cpus_on_node
// order); kScatter deals one cpu per node round-robin.  kShardNode uses
// kCompact order here — its shard-specific mapping lives in PlanShardCpus.
std::vector<int> PolicyOrder(const CpuTopology& topo, PlacementPolicy policy) {
  std::vector<int> order;
  order.reserve(topo.num_cpus());
  if (policy == PlacementPolicy::kScatter) {
    std::vector<size_t> cursor(topo.num_nodes(), 0);
    for (int remaining = topo.num_cpus(); remaining > 0;) {
      for (int node = 0; node < topo.num_nodes(); ++node) {
        const std::vector<int>& cpus = topo.cpus_on_node(node);
        if (cursor[node] < cpus.size()) {
          order.push_back(cpus[cursor[node]++]);
          --remaining;
        }
      }
    }
  } else {
    for (int node = 0; node < topo.num_nodes(); ++node) {
      const std::vector<int>& cpus = topo.cpus_on_node(node);
      order.insert(order.end(), cpus.begin(), cpus.end());
    }
  }
  return order;
}

}  // namespace

std::vector<CpuSlot> PlanWorkerCpus(const CpuTopology& topo,
                                    PlacementPolicy policy, int count,
                                    const std::vector<CpuSlot>& reserved) {
  if (count <= 0) return {};
  std::vector<CpuSlot> plan(count);  // default: all unpinned
  // One usable cpu means pinning could only serialize the workers.
  if (policy == PlacementPolicy::kNone || topo.num_cpus() <= 1) return plan;

  std::vector<int> order = PolicyOrder(topo, policy);
  // Reserved cpus (pinned shard workers) move to the back: auxiliary
  // workers fill the remaining cores first and only double up once every
  // free cpu is taken.
  std::vector<int> free_cpus, reserved_cpus;
  for (int cpu : order) {
    bool is_reserved = false;
    for (const CpuSlot& slot : reserved) {
      if (slot.cpu == cpu) is_reserved = true;
    }
    (is_reserved ? reserved_cpus : free_cpus).push_back(cpu);
  }
  free_cpus.insert(free_cpus.end(), reserved_cpus.begin(), reserved_cpus.end());
  if (free_cpus.empty()) return plan;

  for (int i = 0; i < count; ++i) {
    const int cpu = free_cpus[i % free_cpus.size()];
    plan[i] = {cpu, topo.node_of_cpu(cpu)};
  }
  return plan;
}

std::vector<CpuSlot> PlanShardCpus(const CpuTopology& topo,
                                   PlacementPolicy policy, int shards) {
  if (shards <= 0) return {};
  if (policy != PlacementPolicy::kShardNode)
    return PlanWorkerCpus(topo, policy, shards);

  std::vector<CpuSlot> plan(shards);
  if (topo.num_cpus() <= 1 || topo.num_nodes() < 1) return plan;
  // Shard s belongs to node (s % nodes): the first-touch protocol re-homes
  // bucket s's ledger rows via shard worker s, so this line *defines* which
  // node owns which bucket — the plan and the page placement cannot
  // disagree.  Within a node, distinct primary cores while they last
  // (cpus_on_node lists primaries first), then wrap onto SMT siblings.
  std::vector<size_t> cursor(topo.num_nodes(), 0);
  for (int s = 0; s < shards; ++s) {
    const int node = s % topo.num_nodes();
    const std::vector<int>& cpus = topo.cpus_on_node(node);
    if (cpus.empty()) continue;  // slot stays unpinned
    const int cpu = cpus[cursor[node]++ % cpus.size()];
    plan[s] = {cpu, node};
  }
  return plan;
}

FirstTouchBuffer::FirstTouchBuffer(std::size_t bytes) {
  if (bytes == 0) return;
#if defined(__linux__)
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t rounded = (bytes + page - 1) / page * page;
  void* mem = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem != MAP_FAILED) {
    data_ = mem;
    size_ = rounded;
    mapped_ = true;
    return;
  }
#endif
  data_ = ::operator new(bytes, std::align_val_t{kCacheLineSize});
  size_ = bytes;
  mapped_ = false;
}

FirstTouchBuffer::~FirstTouchBuffer() { Reset(); }

FirstTouchBuffer::FirstTouchBuffer(FirstTouchBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

FirstTouchBuffer& FirstTouchBuffer::operator=(
    FirstTouchBuffer&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void FirstTouchBuffer::Reset() {
  if (data_ == nullptr) return;
#if defined(__linux__)
  if (mapped_) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
    return;
  }
#endif
  ::operator delete(data_, std::align_val_t{kCacheLineSize});
  data_ = nullptr;
  size_ = 0;
}

}  // namespace svc::util
