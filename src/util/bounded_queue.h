// Bounded MPMC queue for pipeline stages.
//
// A mutex/condvar queue, deliberately simple: the admission pipeline moves
// coarse work items (each worth an allocator DP run), so lock-free
// machinery would buy nothing here.  What matters is the backpressure
// contract — Push blocks while full, TryPush never blocks — and a clean
// close protocol so consumers drain the remaining items and exit without
// sentinel values.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace svc::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full.  Returns false (item dropped) only if
  // the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns false only on closed-and-drained — the consumer exit signal.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop: false when currently empty (closed or not).
  bool TryPop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Wakes every blocked producer and consumer.  Further pushes fail; pops
  // drain what remains and then report closed.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Instantaneous depth (racy by nature; for gauges and backpressure
  // hints, not for control flow).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace svc::util
