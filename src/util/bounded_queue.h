// Bounded MPMC queue for pipeline stages.
//
// A mutex/condvar queue, deliberately simple: the admission pipeline moves
// coarse work items (each worth an allocator DP run), so lock-free
// machinery would buy nothing here.  What matters is the backpressure
// contract — Push blocks while full, TryPush never blocks — and a clean
// close protocol so consumers drain the remaining items and exit without
// sentinel values.
//
// Storage is a fixed ring of unconstructed slots (placement-new on push,
// destroy on pop) carved from a FirstTouchBuffer: physical pages appear
// only when a slot is first written, so a consumer that calls
// PrefaultStorage() from its own (pinned) thread before traffic starts
// owns the ring's pages on its NUMA node — see docs/PERFORMANCE.md §7.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <new>
#include <utility>

#include "util/affinity.h"

namespace svc::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        storage_(capacity_ * sizeof(T)) {
    static_assert(alignof(T) <= kCacheLineSize,
                  "ring storage is only cache-line aligned");
  }

  ~BoundedQueue() {
    // Destroy whatever the consumers never drained.
    for (size_t i = head_; i != tail_; ++i) slot(i)->~T();
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full.  Returns false (item dropped) only if
  // the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || Size() < capacity_; });
    if (closed_) return false;
    ::new (slot(tail_)) T(std::move(item));
    ++tail_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || Size() >= capacity_) return false;
      ::new (slot(tail_)) T(std::move(item));
      ++tail_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns false only on closed-and-drained — the consumer exit signal.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || Size() > 0; });
    if (Size() == 0) return false;
    T* item = slot(head_);
    out = std::move(*item);
    item->~T();
    ++head_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop: false when currently empty (closed or not).
  bool TryPop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (Size() == 0) return false;
    T* item = slot(head_);
    out = std::move(*item);
    item->~T();
    ++head_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Wakes every blocked producer and consumer.  Further pushes fail; pops
  // drain what remains and then report closed.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Faults every page of the ring's slot storage in from the calling
  // thread (first-touch placement: call from the pinned consumer before
  // producers start pushing).  A no-op once any push has happened — the
  // producers own the pages then and zeroing live slots would corrupt
  // them.
  void PrefaultStorage() {
    std::lock_guard<std::mutex> lock(mu_);
    if (head_ != 0 || tail_ != 0) return;
    std::memset(storage_.data(), 0, capacity_ * sizeof(T));
  }

  // Instantaneous depth (racy by nature; for gauges and backpressure
  // hints, not for control flow).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Size();
  }

  size_t capacity() const { return capacity_; }

 private:
  // Monotonic cursors; the live window is [head_, tail_).
  size_t Size() const { return tail_ - head_; }

  T* slot(size_t i) {
    return std::launder(reinterpret_cast<T*>(
        static_cast<std::byte*>(storage_.data()) + (i % capacity_) * sizeof(T)));
  }

  const size_t capacity_;
  FirstTouchBuffer storage_;  // capacity_ raw slots; no ctors/dtors run here
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  bool closed_ = false;
  // False-sharing constraint: head_ is advanced by consumers while tail_ is
  // advanced by producers; on separate cache lines a pop's invalidation
  // does not stall a concurrent push's line (and vice versa) even though
  // both sides hold mu_ — the *mutex* serializes, the padding keeps the
  // cursor lines from ping-ponging between the cores in between.
  alignas(kCacheLineSize) size_t head_ = 0;
  alignas(kCacheLineSize) size_t tail_ = 0;
};

}  // namespace svc::util
