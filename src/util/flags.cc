#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

namespace svc::util {

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

FlagSet::Flag& FlagSet::Register(const std::string& name, Type type,
                                 const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->type = type;
  flag->help = help;
  Flag& ref = *flag;
  flags_[name] = &ref;
  owned_.push_back(std::move(flag));
  return ref;
}

int64_t& FlagSet::Int(const std::string& name, int64_t default_value,
                      const std::string& help) {
  Flag& f = Register(name, Type::kInt, help);
  f.int_value = default_value;
  return f.int_value;
}

double& FlagSet::Double(const std::string& name, double default_value,
                        const std::string& help) {
  Flag& f = Register(name, Type::kDouble, help);
  f.double_value = default_value;
  return f.double_value;
}

bool& FlagSet::Bool(const std::string& name, bool default_value,
                    const std::string& help) {
  Flag& f = Register(name, Type::kBool, help);
  f.bool_value = default_value;
  return f.bool_value;
}

std::string& FlagSet::String(const std::string& name,
                             std::string default_value,
                             const std::string& help) {
  Flag& f = Register(name, Type::kString, help);
  f.string_value = std::move(default_value);
  return f.string_value;
}

bool FlagSet::SetFromText(Flag& flag, const std::string& text) {
  try {
    switch (flag.type) {
      case Type::kInt:
        flag.int_value = std::stoll(text);
        return true;
      case Type::kDouble:
        flag.double_value = std::stod(text);
        return true;
      case Type::kBool:
        if (text == "true" || text == "1") flag.bool_value = true;
        else if (text == "false" || text == "0") flag.bool_value = false;
        else return false;
        return true;
      case Type::kString:
        flag.string_value = text;
        return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

void FlagSet::Parse(int argc, char** argv) {
  // Expand @file response files into the token stream first, so the main
  // loop below sees one flat argument list.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 2 || arg[0] != '@') {
      args.push_back(arg);
      continue;
    }
    const std::string path = arg.substr(1);
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open response file '%s'\n%s", path.c_str(),
                   Usage().c_str());
      std::exit(2);
    }
    std::string line;
    while (std::getline(file, line)) {
      if (const size_t hash = line.find('#'); hash != std::string::npos) {
        line.resize(hash);
      }
      std::istringstream tokens(line);
      std::string token;
      while (tokens >> token) {
        if (token[0] == '@') {
          std::fprintf(stderr,
                       "response file '%s' may not include another response "
                       "file ('%s')\n%s",
                       path.c_str(), token.c_str(), Usage().c_str());
          std::exit(2);
        }
        args.push_back(token);
      }
    }
  }

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout, "%s", Usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), Usage().c_str());
      std::exit(2);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(),
                   Usage().c_str());
      std::exit(2);
    }
    Flag& flag = *it->second;
    if (!have_value) {
      if (flag.type == Type::kBool) {
        // `--verbose` with no value means true.
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "flag '--%s' requires a value\n%s", name.c_str(),
                     Usage().c_str());
        std::exit(2);
      }
      value = args[++i];
    }
    if (!SetFromText(flag, value)) {
      std::fprintf(stderr, "bad value '%s' for flag '--%s'\n%s", value.c_str(),
                   name.c_str(), Usage().c_str());
      std::exit(2);
    }
  }
}

std::string FlagSet::Usage() const {
  std::ostringstream out;
  out << description_ << "\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag->type) {
      case Type::kInt: out << " (int, default " << flag->int_value << ")"; break;
      case Type::kDouble:
        out << " (double, default " << flag->double_value << ")";
        break;
      case Type::kBool:
        out << " (bool, default " << (flag->bool_value ? "true" : "false")
            << ")";
        break;
      case Type::kString:
        out << " (string, default \"" << flag->string_value << "\")";
        break;
    }
    out << "\n      " << flag->help << "\n";
  }
  return out.str();
}

}  // namespace svc::util
