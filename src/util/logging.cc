#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace svc::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // The thread tag (the obs layer's small dense id, the same id the trace
  // tid uses) makes interleaved lines from concurrent sweep replicas
  // attributable — and parseable — in multi-threaded bench logs.
  stream_ << "[" << LevelTag(level) << " t" << obs::ThreadId() << " " << base
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // The level may have been raised since the SVC_LOG site's check (races on
  // SetLogLevel are allowed); re-check so the line is dropped rather than
  // emitted below the current level.
  if (!LogEnabled(level_)) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  // Assemble the whole line and flush it through a single fwrite: POSIX
  // locks the stream per call, so concurrent threads' lines cannot
  // interleave mid-line (the old two-step fprintf needed a process mutex
  // for the same guarantee).
  std::string line = std::to_string(static_cast<long long>(ms));
  line.push_back(' ');
  line += stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace svc::util
