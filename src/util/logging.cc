#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace svc::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%lld %s\n", static_cast<long long>(ms),
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace svc::util
