#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace svc::util {

void Latch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(remaining_ > 0);
  if (--remaining_ == 0) cv_.notify_all();
}

void Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool(ThreadPoolOptions{num_threads, PlacementPolicy::kNone,
                                   nullptr,
                                   {}}) {}

ThreadPool::ThreadPool(const ThreadPoolOptions& options) {
  // HardwareThreads() already clamps hardware_concurrency() == 0 to 1, so
  // ThreadPool(0) can never construct an empty pool — Submit would
  // otherwise divide by workers_.size() == 0 and Wait would hang.
  int num_threads = options.num_threads;
  if (num_threads <= 0) num_threads = HardwareThreads();

  CpuTopology detected;
  const CpuTopology* topo = options.topology;
  if (topo == nullptr && options.placement != PlacementPolicy::kNone) {
    detected = CpuTopology::Detect();
    topo = &detected;
  }
  plan_ = topo != nullptr
              ? PlanWorkerCpus(*topo, options.placement, num_threads,
                               options.reserved)
              : std::vector<CpuSlot>(num_threads);

  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_[i]->node = plan_[i].node;
  }
  // Same-node victims first, then the rest; both groups scan from self+1
  // so victims spread instead of all hitting worker 0.
  for (int i = 0; i < num_threads; ++i) {
    Worker& w = *workers_[i];
    w.victims.reserve(num_threads - 1);
    for (int pass = 0; pass < 2; ++pass) {
      for (int k = 1; k < num_threads; ++k) {
        const int v = (i + k) % num_threads;
        const bool same_node = workers_[v]->node == w.node;
        if (same_node == (pass == 0)) w.victims.push_back(v);
      }
    }
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  assert(task);
  const size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  // The queued_ increment and the notify are both under idle_mu_ so a
  // worker cannot check queued_ == 0 and sleep between them.
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    depth = queued_.fetch_add(1, std::memory_order_release) + 1;
  }
  idle_cv_.notify_one();
  SVC_TRACE_COUNTER("threadpool/queue_depth", depth);
  SVC_METRIC_GAUGE_SET("threadpool/queue_depth", static_cast<double>(depth));
}

bool ThreadPool::TryTake(int self, std::function<void()>& out) {
  // Own deque, newest first: the task most likely still warm in cache.
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other workers in this worker's victim
  // order: same-node victims first, so a steal usually moves work across a
  // shared cache instead of the NUMA interconnect.
  Worker& own = *workers_[self];
  for (int v : own.victims) {
    Worker& victim = *workers_[v];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      SVC_METRIC_INC("threadpool/steals");
      if (victim.node != own.node) SVC_METRIC_INC("pool/cross_node_steals");
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  // A failed pin (cgroup-restricted cpu, non-Linux) just runs unpinned.
  if (plan_[self].cpu >= 0) PinCurrentThreadToCpu(plan_[self].cpu);
  std::function<void()> task;
  while (true) {
    if (TryTake(self, task)) {
      const int64_t depth = queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
      SVC_TRACE_COUNTER("threadpool/queue_depth", depth);
      SVC_METRIC_GAUGE_SET("threadpool/queue_depth",
                           static_cast<double>(depth));
      task();
      SVC_METRIC_INC("threadpool/tasks_executed");
      task = nullptr;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace svc::util
