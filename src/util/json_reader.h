// Strict JSON reader — the parsing counterpart of util::JsonWriter.
//
// Parses a complete JSON document into a JsonValue tree and errors (with a
// line:column position) on anything the grammar forbids: trailing garbage
// after the top-level value, duplicate object keys, bad escapes, control
// characters inside strings, non-finite numbers.  Strictness is the point —
// scenario files are configuration, and a silently-ignored typo is a
// mis-run experiment (the scenario layer additionally rejects unknown keys
// on top of this, see sim/scenario.h).
//
//   util::Result<util::JsonValue> doc = util::ParseJson(text);
//   if (!doc) return doc.status();
//   const util::JsonValue* jobs = doc->Find("jobs");
//
// Object members keep insertion order (like JsonWriter), so a
// parse -> serialize round trip preserves the document byte for byte when
// the writer emits the same fields.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace svc::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; the caller must have checked the kind (asserted in
  // debug builds, undefined garbage otherwise — use the scenario layer's
  // checked readers for config parsing).
  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }

  // Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  std::vector<std::pair<std::string, JsonValue>>& members() {
    return members_;
  }

  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses `text` as exactly one JSON document.  Errors carry a
// "line L, column C" position and a short description.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace svc::util
