#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace svc::util {

void JsonWriter::Separate() {
  if (pending_key_) {
    // The comma (if any) was emitted with the key.
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += Escape(key);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out_ += buffer;
}

void JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
}

void JsonWriter::Value(const std::string& v) {
  Separate();
  out_ += Escape(v);
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

std::string JsonWriter::Escape(const std::string& text) {
  std::string result = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': result += "\\\""; break;
      case '\\': result += "\\\\"; break;
      case '\n': result += "\\n"; break;
      case '\r': result += "\\r"; break;
      case '\t': result += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          result += buffer;
        } else {
          result += c;
        }
    }
  }
  result += '"';
  return result;
}

}  // namespace svc::util
