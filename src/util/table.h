// Aligned text tables for bench output.
//
// The figure-reproduction benches print their series as fixed-width tables so
// the output is directly comparable with the paper's plots; Table also emits
// CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace svc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with `precision` digits after the point.
  static std::string Num(double value, int precision = 3);

  // Renders with aligned columns (two-space gutters).
  std::string ToText() const;

  // Renders as RFC-4180-ish CSV (no quoting of embedded commas needed for
  // our numeric output, but quotes are escaped defensively).
  std::string ToCsv() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace svc::util
