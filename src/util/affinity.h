// Thread-to-core placement policies and first-touch memory placement.
//
// This is the mechanism layer under the NUMA-aware pipeline (see
// docs/PERFORMANCE.md §7): deterministic worker→cpu plans computed from a
// `CpuTopology`, a pin primitive (`pthread_setaffinity_np` on Linux, no-op
// elsewhere), and `FirstTouchBuffer` — page-aligned storage whose physical
// pages are *not* allocated until written, so whichever pinned thread
// touches a range first decides which NUMA node its pages land on.
//
// All plans are pure functions of (topology, policy, count): the same
// inputs always produce the same placement, which keeps the pipeline's
// bit-identical-to-serial guarantee independent of where threads run.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "util/cpu_topology.h"

namespace svc::util {

// Destructive-interference granularity used for the alignas() padding on
// cross-thread counters and queue cursors.  64 bytes covers x86 and most
// AArch64 parts; std::hardware_destructive_interference_size is avoided on
// purpose (its value is ABI-fragile across GCC versions).
inline constexpr std::size_t kCacheLineSize = 64;

// How a pool / pipeline maps its workers onto the topology:
//   kNone      — no pinning; the OS scheduler migrates freely.
//   kCompact   — pack workers onto the fewest nodes (node 0's cores first,
//                SMT siblings after all primaries of that node).
//   kScatter   — round-robin workers across nodes, one core at a time.
//   kShardNode — shard worker s runs on node (s % nodes) — the node that
//                first-touch re-homing makes own shard s's ledger rows —
//                and auxiliary workers fill the remaining cores.
enum class PlacementPolicy { kNone, kCompact, kScatter, kShardNode };

// "none" / "compact" / "scatter" / "shard_node".
const char* PlacementPolicyName(PlacementPolicy policy);
// Inverse of PlacementPolicyName; false (and *out untouched) on junk.
bool ParsePlacementPolicy(std::string_view name, PlacementPolicy* out);

// One planned pin: `cpu == -1` means "leave this worker unpinned" (used by
// kNone and by fallback topologies with nothing to gain from pinning).
struct CpuSlot {
  int cpu = -1;
  int node = 0;
};

// Pins the calling thread to one logical cpu.  Returns false on non-Linux
// builds, cpu == -1, or a rejected affinity call (cpu offline / cgroup
// restricted) — callers treat a failed pin as "run unpinned", never fatal.
bool PinCurrentThreadToCpu(int cpu);

// Plans `count` workers under `policy`.  Cpus named in `reserved` are used
// only after every other cpu (this is how speculation workers "fill the
// remaining cores" around pinned shard workers).  More workers than cpus
// wraps around — workers then share cpus, which is still deterministic.
// kNone, an empty topology, or a single-cpu host yields all-unpinned slots
// (pinning everything onto one cpu would serialize the pool).
std::vector<CpuSlot> PlanWorkerCpus(const CpuTopology& topo,
                                    PlacementPolicy policy, int count,
                                    const std::vector<CpuSlot>& reserved = {});

// Plans the per-shard commit workers for kShardNode: shard s gets a
// primary core on node (s % num_nodes), distinct cores while they last.
// Other policies delegate to PlanWorkerCpus so one entry point serves the
// pipeline.  Single-cpu hosts yield all-unpinned slots.
std::vector<CpuSlot> PlanShardCpus(const CpuTopology& topo,
                                   PlacementPolicy policy, int shards);

// Page-aligned raw storage carved out with mmap(MAP_ANONYMOUS|MAP_NORESERVE)
// so no physical page exists until first written: writing a range from a
// pinned thread places those pages on that thread's NUMA node (Linux
// first-touch policy).  Non-Linux builds fall back to ::operator new —
// correct, just without the placement property.  The buffer never runs
// constructors or destructors; callers placement-new into it.
class FirstTouchBuffer {
 public:
  FirstTouchBuffer() = default;
  explicit FirstTouchBuffer(std::size_t bytes);
  ~FirstTouchBuffer();

  FirstTouchBuffer(FirstTouchBuffer&& other) noexcept;
  FirstTouchBuffer& operator=(FirstTouchBuffer&& other) noexcept;
  FirstTouchBuffer(const FirstTouchBuffer&) = delete;
  FirstTouchBuffer& operator=(const FirstTouchBuffer&) = delete;

  void* data() const { return data_; }
  std::size_t size() const { return size_; }
  explicit operator bool() const { return data_ != nullptr; }

  void Reset();

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace svc::util
