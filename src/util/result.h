// Lightweight Result<T> / Status types for recoverable errors.
//
// The library reports recoverable failures (infeasible allocation, invalid
// request, capacity exhaustion) by value rather than by exception, following
// the convention that exceptions are reserved for programming errors and
// resource exhaustion.  Result<T> is a minimal expected-like type: it holds
// either a value or an error message plus a machine-inspectable code.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace svc::util {

// Machine-inspectable error categories used across the library.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // malformed request or parameter
  kInfeasible,        // no valid allocation exists under current state
  kCapacity,          // not enough empty VM slots
  kNotFound,          // unknown id (request, vertex, link)
  kFailedPrecondition // operation invalid in the current state
};

// Human-readable name of an ErrorCode (for logs and test failure messages).
constexpr const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kInfeasible: return "INFEASIBLE";
    case ErrorCode::kCapacity: return "CAPACITY";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

// A success-or-error status with message.  Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "CODE: message" for diagnostics.
  std::string ToText() const {
    if (ok()) return "OK";
    return std::string(ToString(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Either a T or a Status describing why the T could not be produced.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse:  return value; / return status;
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok() && "use the value constructor for success");
  }
  Result(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  // Preconditions: ok().
  const T& value() const& { assert(ok()); return *value_; }
  T& value() & { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return std::move(*value_); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace svc::util
