#include "util/cpu_topology.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace svc::util {

namespace {

// Reads a whole small sysfs file; empty string when absent/unreadable.
std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Reads a sysfs file holding one small integer; `fallback` when absent or
// malformed (some kernels report physical_package_id == -1; treat that as
// absent too).
int ReadIntOr(const std::string& path, int fallback) {
  const std::string text = ReadFileOrEmpty(path);
  if (text.empty()) return fallback;
  try {
    const int value = std::stoi(text);
    return value < 0 ? fallback : value;
  } catch (...) {
    return fallback;
  }
}

}  // namespace

std::vector<int> CpuTopology::ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           !std::isdigit(static_cast<unsigned char>(text[i]))) {
      // Anything but separators/whitespace between entries is malformed.
      if (text[i] != ',' && !std::isspace(static_cast<unsigned char>(text[i])))
        return {};
      ++i;
    }
    if (i >= text.size()) break;
    size_t end = i;
    const long lo = std::strtol(text.c_str() + i, nullptr, 10);
    while (end < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[end])))
      ++end;
    long hi = lo;
    if (end < text.size() && text[end] == '-') {
      size_t hi_start = end + 1;
      if (hi_start >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[hi_start])))
        return {};
      hi = std::strtol(text.c_str() + hi_start, nullptr, 10);
      end = hi_start;
      while (end < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[end])))
        ++end;
    }
    if (hi < lo) return {};
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    i = end;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology CpuTopology::SingleNode(int cpus) {
  if (cpus < 1) cpus = 1;
  CpuTopology topo;
  topo.cpus_.resize(cpus);
  for (int c = 0; c < cpus; ++c) {
    topo.cpus_[c].cpu = c;
    topo.cpus_[c].core = c;
  }
  topo.num_cores_ = cpus;
  topo.num_packages_ = 1;
  topo.detected_ = false;
  topo.IndexNodes();
  return topo;
}

CpuTopology CpuTopology::FromSysfs(const std::string& root) {
  const std::string cpu_dir = root + "/devices/system/cpu";

  // `online` is the authoritative list; `present` is the fallback for
  // fixture trees that omit it.
  std::vector<int> online = ParseCpuList(ReadFileOrEmpty(cpu_dir + "/online"));
  if (online.empty())
    online = ParseCpuList(ReadFileOrEmpty(cpu_dir + "/present"));
  if (online.empty()) return SingleNode(0);  // hardware_concurrency-free: 1 cpu

  CpuTopology topo;
  topo.detected_ = true;
  topo.cpus_.reserve(online.size());
  for (int cpu : online) {
    const std::string topo_dir =
        cpu_dir + "/cpu" + std::to_string(cpu) + "/topology";
    CpuInfo info;
    info.cpu = cpu;
    // Raw kernel ids for now; densified below.  Missing files degrade to
    // "own package 0 / own core": still a usable pinning target.
    info.package = ReadIntOr(topo_dir + "/physical_package_id", 0);
    info.core = ReadIntOr(topo_dir + "/core_id", cpu);
    topo.cpus_.push_back(info);
  }

  // Densify (package, core_id) pairs into global core ranks and mark every
  // sibling after the first on a core as SMT.
  std::map<std::pair<int, int>, int> core_rank;
  std::map<int, int> package_rank;
  for (CpuInfo& info : topo.cpus_) {
    const auto pkg = package_rank.emplace(
        info.package, static_cast<int>(package_rank.size()));
    const auto core = core_rank.emplace(
        std::make_pair(info.package, info.core),
        static_cast<int>(core_rank.size()));
    info.smt = !core.second;
    info.package = pkg.first->second;
    info.core = core.first->second;
  }
  topo.num_cores_ = static_cast<int>(core_rank.size());
  topo.num_packages_ = static_cast<int>(package_rank.size());

  // NUMA nodes: each node directory names its cpus.  No node tree (common
  // in containers) leaves every cpu on node 0.
  const std::string node_dir = root + "/devices/system/node";
  for (int node = 0;; ++node) {
    const std::string cpulist =
        ReadFileOrEmpty(node_dir + "/node" + std::to_string(node) + "/cpulist");
    if (cpulist.empty()) break;
    for (int cpu : ParseCpuList(cpulist)) {
      for (CpuInfo& info : topo.cpus_) {
        if (info.cpu == cpu) info.node = node;
      }
    }
  }

  topo.IndexNodes();
  return topo;
}

CpuTopology CpuTopology::Detect() {
#if defined(__linux__)
  CpuTopology topo = FromSysfs("/sys");
  if (topo.detected_) return topo;
#endif
  return SingleNode(static_cast<int>(std::thread::hardware_concurrency()));
}

void CpuTopology::IndexNodes() {
  int max_node = 0;
  for (const CpuInfo& info : cpus_) max_node = std::max(max_node, info.node);
  node_cpus_.assign(max_node + 1, {});
  // Primaries first, then SMT siblings, ascending cpu id within each class:
  // placement plans fill real cores before hyperthreads.
  for (const CpuInfo& info : cpus_) {
    if (!info.smt) node_cpus_[info.node].push_back(info.cpu);
  }
  for (const CpuInfo& info : cpus_) {
    if (info.smt) node_cpus_[info.node].push_back(info.cpu);
  }
}

const std::vector<int>& CpuTopology::cpus_on_node(int node) const {
  static const std::vector<int> kEmpty;
  if (node < 0 || node >= static_cast<int>(node_cpus_.size())) return kEmpty;
  return node_cpus_[node];
}

int CpuTopology::node_of_cpu(int cpu) const {
  for (const CpuInfo& info : cpus_) {
    if (info.cpu == cpu) return info.node;
  }
  return 0;
}

std::string CpuTopology::Summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%d packages / %d nodes / %d cores / %d cpus",
                num_packages_, num_nodes(), num_cores_, num_cpus());
  return buf;
}

}  // namespace svc::util
