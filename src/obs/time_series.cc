#include "obs/time_series.h"

namespace svc::obs {

std::string TimeSeriesSink::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  size_t total = 0;
  for (const std::string& line : lines_) total += line.size() + 1;
  out.reserve(total);
  for (const std::string& line : lines_) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

}  // namespace svc::obs
