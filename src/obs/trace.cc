#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

namespace svc::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

// Events kept per thread: 64K x 32 B = 2 MiB.  Wrapping keeps the most
// recent window.
constexpr size_t kRingCapacity = 1u << 16;

uint64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// Per-thread ring.  The writer publishes each slot with a release store of
// head; a quiesced-thread reader (see trace.h) acquires head and walks the
// last min(head, capacity) slots.
struct Ring {
  explicit Ring(uint32_t thread_id) : tid(thread_id) {
    slots.resize(kRingCapacity);
  }

  void Push(const char* name, char phase, double value) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    TraceEvent& slot = slots[h % kRingCapacity];
    slot.name = name;
    slot.phase = phase;
    slot.tid = tid;
    slot.ts_ns = NowNs();
    slot.value = value;
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<TraceEvent> slots;
  std::atomic<uint64_t> head{0};
  uint32_t tid;
};

// Rings are owned by this global list (never freed) so events survive the
// recording thread's exit; the thread_local below is just a cached pointer.
std::mutex g_rings_mu;
std::vector<std::unique_ptr<Ring>>& GlobalRings() {
  static auto* rings = new std::vector<std::unique_ptr<Ring>>();
  return *rings;
}

Ring& LocalRing() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>(ThreadId());
    Ring* raw = owned.get();
    std::lock_guard<std::mutex> lock(g_rings_mu);
    GlobalRings().push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

void AppendJsonName(std::string& out, const char* name) {
  out.push_back('"');
  for (const char* p = name; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

void TraceBegin(const char* name) {
  if (!TraceEnabled()) return;
  LocalRing().Push(name, 'B', 0);
}

void TraceEnd(const char* name) { LocalRing().Push(name, 'E', 0); }

void TraceCounter(const char* name, double value) {
  if (!TraceEnabled()) return;
  LocalRing().Push(name, 'C', value);
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(g_rings_mu);
    for (const auto& ring : GlobalRings()) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t count = std::min<uint64_t>(head, kRingCapacity);
      for (uint64_t i = head - count; i < head; ++i) {
        events.push_back(ring->slots[i % kRingCapacity]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

uint64_t TraceDroppedTotal() {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (const auto& ring : GlobalRings()) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) total += head - kRingCapacity;
  }
  return total;
}

std::string SerializeChromeTrace() {
  // Per-thread drop markers: a ring whose head ran past the capacity has
  // overwritten its oldest events, so the serialized window is truncated.
  // Emit one `obs/trace_dropped` counter sample per affected thread at the
  // timestamp of its oldest *retained* event, so the viewer shows exactly
  // where the record begins and how much history is missing before it.
  struct DropMark {
    uint32_t tid = 0;
    uint64_t dropped = 0;
    uint64_t ts_ns = 0;
  };
  std::vector<DropMark> drops;
  {
    std::lock_guard<std::mutex> lock(g_rings_mu);
    for (const auto& ring : GlobalRings()) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      if (head > kRingCapacity) {
        const TraceEvent& oldest = ring->slots[head % kRingCapacity];
        drops.push_back({ring->tid, head - kRingCapacity, oldest.ts_ns});
      }
    }
  }
  const std::vector<TraceEvent> events = CollectTraceEvents();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const DropMark& d : drops) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"obs/trace_dropped\",\"cat\":\"svc\","
                  "\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"args\":{\"value\":%llu}}",
                  d.tid, static_cast<double>(d.ts_ns) / 1000.0,
                  static_cast<unsigned long long>(d.dropped));
    out += buf;
  }
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonName(out, e.name);
    // Chrome trace timestamps are in microseconds.
    std::snprintf(buf, sizeof buf,
                  ",\"cat\":\"svc\",\"ph\":\"%c\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f",
                  e.phase, e.tid, static_cast<double>(e.ts_ns) / 1000.0);
    out += buf;
    if (e.phase == 'C') {
      const double v = std::isfinite(e.value) ? e.value : 0.0;
      std::snprintf(buf, sizeof buf, ",\"args\":{\"value\":%.17g}", v);
      out += buf;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

void ClearTrace() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (const auto& ring : GlobalRings()) {
    ring->head.store(0, std::memory_order_release);
  }
}

}  // namespace svc::obs
