// Process-wide metrics registry: named counters, gauges, and log-linear
// histograms with a lock-free, allocation-free write path.
//
// Design (see docs/OBSERVABILITY.md for the full story):
//
//   * Write path: plain relaxed-atomic increments into cache-line-padded
//     shards indexed by a per-thread shard id — no locks, no heap, and no
//     cross-core cache-line ping-pong under the sweep runner's concurrency.
//     Aggregation across shards happens only at scrape time (Collect()).
//   * Disabled cost: every macro checks MetricsEnabled() first — a relaxed
//     atomic-bool load and one predicted branch.  Compiling with
//     -DSVC_METRICS_ENABLED=0 removes even that (the macros expand to
//     nothing); the default is compiled-in but runtime-disabled.
//   * Registration: Registry::Global() interns metrics by name under a
//     shared_mutex (exclusive only on first registration).  Returned
//     references are stable for the process lifetime, so hot call sites
//     cache them in a function-local static and never touch the map again.
//
// Hot-path usage (fixed names — the handle is looked up once):
//
//   SVC_METRIC_INC("manager/admit_attempt");
//   SVC_METRIC_HIST("manager/admit_latency_us", micros);
//   SVC_METRIC_GAUGE_SET("engine/flows", flows.size());
//
// Dynamic names (e.g. per-allocator counters) go through the registry
// directly with a stack-composed name; lookups after the first take only a
// shared lock and never allocate:
//
//   if (obs::MetricsEnabled()) {
//     char name[64];
//     std::snprintf(name, sizeof name, "alloc/%s/success", alloc_name);
//     obs::Registry::Global().GetCounter(name).Increment();
//   }
//
// This header intentionally depends on nothing outside the standard
// library so every layer (including util) can instrument itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef SVC_METRICS_ENABLED
#define SVC_METRICS_ENABLED 1
#endif

namespace svc::obs {

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
// Small dense per-thread id (0, 1, 2, ...), assigned on first use.  Shared
// with the tracing layer and the logger so one id names a thread
// everywhere.
uint32_t ThreadId();
}  // namespace internal

// Runtime switch; defaults to off so instrumented hot paths cost one
// predicted branch unless a bench/test/tool opts in.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

// Stable small integer id of the calling thread (also used as the trace
// tid and the log-line thread tag).
inline uint32_t ThreadId() { return internal::ThreadId(); }

// Number of write shards per metric.  A power of two; threads map to
// shards by ThreadId() % kShards, so up to kShards writers proceed with no
// shared cache lines at all and larger fleets degrade gracefully.
inline constexpr uint32_t kShards = 16;

struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    shards_[internal::ThreadId() % kShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  // Aggregate over shards (scrape path; approximate under concurrent
  // writes, exact once writers quiesce).
  int64_t Value() const {
    int64_t total = 0;
    for (const CounterShard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }
  void Reset();

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::array<CounterShard, kShards> shards_;
};

// Last-write-wins instantaneous value; Add() is sharded like a counter so
// concurrent deltas don't contend.  Set() is authoritative: it also clears
// any accumulated deltas.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);

  double Value() const;

  const std::string& name() const { return name_; }
  void Reset();

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<double> delta{0};
  };

  std::string name_;
  std::atomic<double> base_{0};
  std::array<Shard, kShards> shards_;
};

// One aggregated histogram bucket: count of samples in [lower, upper).
struct HistogramBucket {
  double lower = 0;
  double upper = 0;
  int64_t count = 0;
};

// Log-linear-bucket histogram for non-negative values (latencies in
// microseconds, ratios, sizes).  Each power-of-two octave is split into
// kSubBuckets linear sub-buckets, so the relative quantization error is
// bounded by 1/kSubBuckets (~6%) across ~14 decades of range.  Recording
// is two shifts, a multiply, and one relaxed fetch_add.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;   // per octave
  static constexpr int kMinExp = -8;       // values below 2^-8 underflow
  static constexpr int kMaxExp = 40;       // values >= 2^40 overflow
  static constexpr int kNumBuckets =
      2 + (kMaxExp - kMinExp) * kSubBuckets;  // + underflow + overflow

  void Record(double value) {
    const int b = BucketOf(value);
    auto& shard = shards_[internal::ThreadId() % kShards];
    shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS loop; uncontended within a shard.
    double sum = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(sum, sum + value,
                                            std::memory_order_relaxed)) {
    }
    double max = shard.max.load(std::memory_order_relaxed);
    while (value > max && !shard.max.compare_exchange_weak(
                              max, value, std::memory_order_relaxed)) {
    }
  }

  // Bucket index of a value (public for the boundary tests).
  static int BucketOf(double value);
  // Inclusive lower bound of bucket b (0 for the underflow bucket).
  static double BucketLowerBound(int b);
  // Exclusive upper bound of bucket b.
  static double BucketUpperBound(int b);

  int64_t TotalCount() const;
  double Sum() const;
  double Max() const;

  // q-quantile (q in [0, 1]) with linear interpolation inside the landing
  // bucket.  Returns 0 on an empty histogram.
  double Quantile(double q) const;

  // Aggregated non-empty buckets in ascending order.
  std::vector<HistogramBucket> Buckets() const;

  const std::string& name() const { return name_; }
  void Reset();

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
    std::atomic<double> sum{0};
    std::atomic<double> max{0};
  };

  std::string name_;
  std::array<Shard, kShards> shards_;
};

// Point-in-time aggregated view of the registry, ordered by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    double sum = 0;
    double max = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::vector<HistogramBucket> buckets;  // non-empty buckets only
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // One JSON object per line: {"type":"counter","name":...,"value":...},
  // {"type":"gauge",...}, {"type":"histogram",...,"buckets":[[lo,hi,n]...]}.
  // The same line-oriented format as sim::EventLog::ToJsonl and the
  // engine's time-series sink, so every emitter shares one consumer.
  std::string ToJsonl() const;
};

class Registry {
 public:
  // The process-wide registry.  Never destroyed (function-local static
  // leak), so metric references stay valid in thread-exit paths.
  static Registry& Global();

  // Interns by name; the returned reference is stable forever.  Lookups of
  // existing metrics take a shared lock and perform no allocation (the map
  // is keyed with transparent comparison).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Collect() const;

  // Zeroes every registered metric (names stay registered).  For tests and
  // for benches that scope a measurement.
  void ResetAll();

 private:
  Registry() = default;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace svc::obs

#if SVC_METRICS_ENABLED

#define SVC_METRIC_ADD(name, delta)                            \
  do {                                                         \
    if (::svc::obs::MetricsEnabled()) {                        \
      static ::svc::obs::Counter& svc_metric_counter_ =        \
          ::svc::obs::Registry::Global().GetCounter(name);     \
      svc_metric_counter_.Increment(delta);                    \
    }                                                          \
  } while (0)

#define SVC_METRIC_INC(name) SVC_METRIC_ADD(name, 1)

#define SVC_METRIC_HIST(name, value)                           \
  do {                                                         \
    if (::svc::obs::MetricsEnabled()) {                        \
      static ::svc::obs::Histogram& svc_metric_hist_ =         \
          ::svc::obs::Registry::Global().GetHistogram(name);   \
      svc_metric_hist_.Record(value);                          \
    }                                                          \
  } while (0)

#define SVC_METRIC_GAUGE_SET(name, value)                      \
  do {                                                         \
    if (::svc::obs::MetricsEnabled()) {                        \
      static ::svc::obs::Gauge& svc_metric_gauge_ =            \
          ::svc::obs::Registry::Global().GetGauge(name);       \
      svc_metric_gauge_.Set(value);                            \
    }                                                          \
  } while (0)

#else  // !SVC_METRICS_ENABLED

#define SVC_METRIC_ADD(name, delta) \
  do {                              \
  } while (0)
#define SVC_METRIC_INC(name) \
  do {                       \
  } while (0)
#define SVC_METRIC_HIST(name, value) \
  do {                               \
  } while (0)
#define SVC_METRIC_GAUGE_SET(name, value) \
  do {                                    \
  } while (0)

#endif  // SVC_METRICS_ENABLED
