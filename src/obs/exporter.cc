#include "obs/exporter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "obs/decision_log.h"
#include "obs/trace.h"

namespace svc::obs {

namespace {

void AppendSanitized(std::string& out, std::string_view name) {
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
}

void AppendJsonString(std::string& out, const char* s) {
  out.push_back('"');
  for (const char* p = s; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[128];
  auto emit_name = [&out](std::string_view name) {
    out += "svc_";
    AppendSanitized(out, name);
  };
  for (const auto& c : snapshot.counters) {
    out += "# TYPE svc_";
    AppendSanitized(out, c.name);
    out += " counter\n";
    emit_name(c.name);
    std::snprintf(buf, sizeof buf, " %lld\n",
                  static_cast<long long>(c.value));
    out += buf;
  }
  for (const auto& g : snapshot.gauges) {
    out += "# TYPE svc_";
    AppendSanitized(out, g.name);
    out += " gauge\n";
    emit_name(g.name);
    std::snprintf(buf, sizeof buf, " %.17g\n", g.value);
    out += buf;
  }
  for (const auto& h : snapshot.histograms) {
    out += "# TYPE svc_";
    AppendSanitized(out, h.name);
    out += " histogram\n";
    int64_t cumulative = 0;
    for (const HistogramBucket& b : h.buckets) {
      cumulative += b.count;
      emit_name(h.name);
      std::snprintf(buf, sizeof buf, "_bucket{le=\"%.9g\"} %lld\n", b.upper,
                    static_cast<long long>(cumulative));
      out += buf;
    }
    emit_name(h.name);
    std::snprintf(buf, sizeof buf, "_bucket{le=\"+Inf\"} %lld\n",
                  static_cast<long long>(h.count));
    out += buf;
    emit_name(h.name);
    std::snprintf(buf, sizeof buf, "_sum %.17g\n", h.sum);
    out += buf;
    emit_name(h.name);
    std::snprintf(buf, sizeof buf, "_count %lld\n",
                  static_cast<long long>(h.count));
    out += buf;
  }
  return out;
}

std::string ExportPrometheus() {
  return ExportPrometheus(Registry::Global().Collect());
}

namespace {

// All recorder state lives here (the FlightRecorder class is a stateless
// facade over the process-wide instance, like Registry::Global()).
struct RecorderState {
  std::mutex mu;
  FlightRecorderConfig config;        // guarded by mu
  std::atomic<bool> enabled{false};   // mirrors !config.dir.empty()
  std::atomic<bool> pending{false};   // latched SLO breach awaiting dump
  char pending_cause[32] = {};        // guarded by mu
  char pending_detail[96] = {};       // guarded by mu
  int64_t bundle_seq = 0;             // guarded by mu
  std::atomic<int64_t> bundles{0};
  // Sliding SLO window, guarded by mu.
  size_t window_n = 0;
  size_t window_rejected = 0;
  double window_latency_sum = 0;
};

RecorderState& State() {
  static auto* state = new RecorderState();
  return *state;
}

bool WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static auto* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Configure(FlightRecorderConfig config) {
  RecorderState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.config = std::move(config);
  s.window_n = 0;
  s.window_rejected = 0;
  s.window_latency_sum = 0;
  s.pending.store(false, std::memory_order_relaxed);
  s.enabled.store(!s.config.dir.empty(), std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  return State().enabled.load(std::memory_order_relaxed);
}

std::string FlightRecorder::Trigger(const char* cause, const char* detail) {
  RecorderState& s = State();
  if (!s.enabled.load(std::memory_order_relaxed)) return "";
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.config.dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(s.config.dir, ec);

  // Filename-safe cause tag.
  char tag[32] = {};
  size_t t = 0;
  for (const char* p = cause; *p && t + 1 < sizeof tag; ++p) {
    const char c = *p;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    tag[t++] = ok ? c : '-';
  }
  const int64_t seq = ++s.bundle_seq;
  char stem[64];
  std::snprintf(stem, sizeof stem, "flight-%lld-%s",
                static_cast<long long>(seq), tag[0] ? tag : "manual");
  const std::string base = s.config.dir + "/" + stem;

  std::string body;
  body.reserve(1u << 16);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"flight\",\"seq\":%lld,\"ts_ns\":%llu,",
                static_cast<long long>(seq),
                static_cast<unsigned long long>(NowNs()));
  body += buf;
  body += "\"cause\":";
  AppendJsonString(body, cause);
  body += ",\"detail\":";
  AppendJsonString(body, detail != nullptr ? detail : "");
  std::snprintf(buf, sizeof buf,
                ",\"decisions_total\":%llu,\"trace_dropped\":%llu}\n",
                static_cast<unsigned long long>(DecisionCount()),
                static_cast<unsigned long long>(TraceDroppedTotal()));
  body += buf;

  // Last max_records decisions, oldest first (publication order).
  const std::vector<DecisionRecord> decisions = CollectDecisions();
  const size_t start = decisions.size() > s.config.max_records
                           ? decisions.size() - s.config.max_records
                           : 0;
  for (size_t i = start; i < decisions.size(); ++i) {
    AppendDecisionJson(body, decisions[i]);
    body.push_back('\n');
  }
  body += Registry::Global().Collect().ToJsonl();

  const std::string path = base + ".jsonl";
  if (!WriteWholeFile(path, body)) return "";
  if (s.config.include_trace) {
    WriteWholeFile(base + ".trace.json", SerializeChromeTrace());
  }
  s.bundles.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    Registry::Global().GetCounter("obs/flight_bundles").Increment();
    Registry::Global()
        .GetGauge("obs/trace_dropped")
        .Set(static_cast<double>(TraceDroppedTotal()));
  }
  return path;
}

void FlightRecorder::ObserveAdmission(bool admitted, double latency_us) {
  RecorderState& s = State();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(s.mu);
  const FlightRecorderConfig& c = s.config;
  if (c.admit_latency_slo_us <= 0 && c.rejection_rate_slo <= 0) return;
  ++s.window_n;
  if (!admitted) ++s.window_rejected;
  s.window_latency_sum += latency_us;
  const size_t window = std::max<size_t>(1, c.slo_window);
  if (s.window_n < window) return;
  const double mean_latency = s.window_latency_sum / s.window_n;
  const double reject_rate =
      static_cast<double>(s.window_rejected) / s.window_n;
  const bool latency_breach =
      c.admit_latency_slo_us > 0 && mean_latency > c.admit_latency_slo_us;
  const bool reject_breach =
      c.rejection_rate_slo > 0 && reject_rate > c.rejection_rate_slo;
  if ((latency_breach || reject_breach) &&
      !s.pending.load(std::memory_order_relaxed)) {
    std::snprintf(s.pending_cause, sizeof s.pending_cause, "slo-%s",
                  latency_breach ? "latency" : "rejection");
    std::snprintf(s.pending_detail, sizeof s.pending_detail,
                  "window=%zu mean_latency_us=%.1f reject_rate=%.3f",
                  s.window_n, mean_latency, reject_rate);
    s.pending.store(true, std::memory_order_relaxed);
  }
  s.window_n = 0;
  s.window_rejected = 0;
  s.window_latency_sum = 0;
}

void FlightRecorder::LatchTrigger(const char* cause, const char* detail) {
  RecorderState& s = State();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.pending.load(std::memory_order_relaxed)) return;  // first latch wins
  std::snprintf(s.pending_cause, sizeof s.pending_cause, "%s", cause);
  std::snprintf(s.pending_detail, sizeof s.pending_detail, "%s",
                detail != nullptr ? detail : "");
  s.pending.store(true, std::memory_order_relaxed);
}

std::string FlightRecorder::MaybeTriggerPending() {
  RecorderState& s = State();
  if (!s.pending.load(std::memory_order_relaxed)) return "";
  char cause[32];
  char detail[96];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.pending.load(std::memory_order_relaxed)) return "";
    std::memcpy(cause, s.pending_cause, sizeof cause);
    std::memcpy(detail, s.pending_detail, sizeof detail);
    s.pending.store(false, std::memory_order_relaxed);
  }
  return Trigger(cause, detail);
}

int64_t FlightRecorder::bundles_written() const {
  return State().bundles.load(std::memory_order_relaxed);
}

void FlightRecorder::Reset() {
  RecorderState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.config = FlightRecorderConfig{};
  s.enabled.store(false, std::memory_order_relaxed);
  s.pending.store(false, std::memory_order_relaxed);
  s.bundle_seq = 0;
  s.bundles.store(0, std::memory_order_relaxed);
  s.window_n = 0;
  s.window_rejected = 0;
  s.window_latency_sum = 0;
}

}  // namespace svc::obs
