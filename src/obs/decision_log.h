// Decision provenance: a zero-alloc, per-thread ring of fixed-size
// DecisionRecords answering "why was this tenant admitted / rejected /
// evicted, which links were binding, and which commit path did it take".
//
// The paper's whole contribution is a per-request admission decision —
// condition (4) says *this* tenant fits on *these* links with *this much*
// stochastic slack — and once admission is a sharded, speculative,
// multi-worker pipeline (docs/CONCURRENCY.md) the decision's provenance
// spans several threads: a speculation worker runs the allocator against an
// epoch snapshot, the sequencer validates and routes, a shard worker may
// apply the rows.  One DecisionRecord folds that whole story into 160
// fixed bytes: outcome + reason, the commit path taken, the snapshot-to-
// commit epoch delta, the top-k binding links with their condition-(4)
// occupancy slack at commit time, and a stage-latency breakdown measured
// on whichever thread ran each stage.
//
// Design mirrors the metrics/trace layers (docs/OBSERVABILITY.md):
//
//   * Write path: RecordDecision() copies one POD record into the calling
//     thread's pre-sized ring — no locks, no heap after the thread's first
//     record.  When the ring wraps, the oldest records are overwritten:
//     the log keeps the most recent window, which is what a postmortem
//     needs.  A global relaxed fetch_add stamps each record with a
//     publication sequence number so readers can merge rings into the true
//     decision order.
//   * Disabled cost: call sites check DecisionsEnabled() first — a relaxed
//     atomic-bool load and one predicted branch.  Compiling with
//     -DSVC_DECISIONS_ENABLED=0 makes DecisionsEnabled() constexpr false,
//     so every recording block compiles out (same switch design as
//     SVC_METRICS_ENABLED).
//   * Read path (CollectDecisions / FindDecision): reads rings owned by
//     other threads without locking against writers — call only when
//     recording threads are quiescent (after AdmitBatch returns, after
//     joins, at scope exit), the same single-consumer contract as the
//     trace rings.
//
// This header intentionally depends on nothing outside the standard
// library (records carry plain integer link/shard ids, not topology
// types) so every layer can link it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // SVC_METRICS_ENABLED-style switch + ThreadId()

#ifndef SVC_DECISIONS_ENABLED
#define SVC_DECISIONS_ENABLED 1
#endif

namespace svc::obs {

namespace internal {
extern std::atomic<bool> g_decisions_enabled;
}  // namespace internal

#if SVC_DECISIONS_ENABLED
// Runtime switch; defaults to off so instrumented admission paths cost one
// predicted branch unless a tool/bench/test opts in.
inline bool DecisionsEnabled() {
  return internal::g_decisions_enabled.load(std::memory_order_relaxed);
}
#else
// Compiled out: every `if (DecisionsEnabled()) { ... }` block is dead code.
inline constexpr bool DecisionsEnabled() { return false; }
#endif
void SetDecisionsEnabled(bool enabled);

enum class DecisionOutcome : uint8_t {
  kAdmit = 0,
  kReject = 1,
  kEvict = 2,
};

// Which route carried the decision through the admission plane
// (docs/CONCURRENCY.md defines the routes; docs/OBSERVABILITY.md maps them
// to records).
enum class CommitPath : uint8_t {
  kSerial = 0,           // direct Manager::Admit (no pipeline)
  kFresh = 1,            // pipeline: strictly fresh, committed inline
  kShardFresh = 2,       // pipeline: stale but shard-freshness lemma held
  kShardDispatch = 3,    // pipeline: fresh single-shard, applied by worker
  kStaleRerun = 4,       // pipeline: stale admit, drained serial re-run
  kOptimistic = 5,       // optimistic discipline, first-attempt commit
  kOptimisticRetry = 6,  // optimistic discipline, committed after retries
  kFaultEvict = 7,       // fault plane: recovery failed, tenant evicted
};

const char* ToString(DecisionOutcome outcome);
const char* ToString(CommitPath path);

// One admission/eviction decision.  Fixed-size POD: recording it never
// allocates, and rings can be pre-sized.
struct DecisionRecord {
  static constexpr int kMaxBindingLinks = 4;

  // A link that constrains the tenant, with its condition-(4) occupancy
  // slack at commit time: slack = 1 - occupancy (Eq. 6), so 0 means the
  // link is exactly at its admissible load and negative means a violated /
  // drained link (clamped at -1 for serialization sanity).
  struct BindingLink {
    int32_t link = -1;  // topology vertex id of the link's lower endpoint
    float slack = 0;
  };

  // Per-stage latency breakdown in microseconds, each measured on the
  // thread that ran the stage and folded into the one record (correlated
  // by request id).  Stages that a path skips stay 0.
  struct StageLatencies {
    float queue_wait_us = 0;  // feed -> speculation worker pop
    float snapshot_us = 0;    // epoch-snapshot (re-)capture cost
    float speculate_us = 0;   // allocator search against the snapshot
    float sequence_us = 0;    // sequencer validate + route
    float apply_us = 0;       // row writes (commit or shard apply)
  };

  int64_t tenant_id = 0;
  uint64_t seq = 0;    // global publication order; stamped by RecordDecision
  uint64_t ts_ns = 0;  // steady-clock ns; stamped by RecordDecision
  DecisionOutcome outcome = DecisionOutcome::kReject;
  CommitPath path = CommitPath::kSerial;
  uint8_t num_links = 0;
  int16_t shard = -1;      // commit shard id; -1 = unsharded / cross-shard
  uint32_t worker_tid = 0; // ThreadId() of the deciding thread (stamped)
  uint32_t epoch_delta = 0;  // commit-time epoch - speculation-snapshot epoch
  char allocator[20] = {};   // NUL-terminated, truncated
  char reason[20] = {};      // NUL-terminated reason code, e.g. "capacity"
  BindingLink links[kMaxBindingLinks];
  StageLatencies stages;

  void set_allocator(std::string_view name);
  void set_reason(std::string_view code);

  // Inserts (link, slack) keeping the kMaxBindingLinks *lowest-slack*
  // (most binding) links in ascending slack order.  No-op once the link is
  // looser than every kept entry and the array is full.
  void AddBindingLink(int32_t link, double slack);
};

// Copies `record` into the calling thread's ring, stamping seq, ts_ns, and
// worker_tid.  No-op (beyond the stamp work) when decisions are disabled —
// but call sites should gate record *construction* on DecisionsEnabled()
// themselves, since filling binding links costs occupancy evaluations.
void RecordDecision(const DecisionRecord& record);

// Total records ever published (monotone; survives ring wraparound).
uint64_t DecisionCount();

// Records each thread's ring retains (wraparound window size).
size_t DecisionRingCapacity();

// All retained records across threads, merged in publication (seq) order.
// Quiesced-threads contract above.
std::vector<DecisionRecord> CollectDecisions();

// Newest retained record for `tenant_id`; returns false if none survives
// in any ring.  Quiesced-threads contract above.
bool FindDecision(int64_t tenant_id, DecisionRecord* out);

// Drops every retained record (rings stay registered); the global seq
// counter keeps counting.
void ClearDecisions();

// Appends one {"type":"decision",...} JSON object (no trailing newline) —
// the same line-oriented schema family as MetricsSnapshot::ToJsonl and the
// engine time series.
void AppendDecisionJson(std::string& out, const DecisionRecord& record);

// One-line human summary for `svcctl tail` / `explain`.
std::string FormatDecision(const DecisionRecord& record);

}  // namespace svc::obs
