// Low-overhead tracing: RAII scoped spans and counter tracks recorded into
// per-thread ring buffers, serialized as Chrome trace-event JSON that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
//   {
//     SVC_TRACE_SPAN("maxmin/solve");   // B event now, E event at scope end
//     ...
//   }
//   SVC_TRACE_COUNTER("threadpool/queue_depth", depth);  // counter track
//
// Recording writes one 32-byte event (a pointer, a timestamp, a phase tag)
// into the calling thread's pre-sized ring buffer — no locks, no heap after
// the thread's first event.  When the ring wraps, the oldest events are
// overwritten: a long run keeps a recent window, which is what one loads a
// trace viewer for.  Span names must be string literals (or otherwise
// outlive serialization); only the pointer is stored.
//
// The runtime switch (SetTraceEnabled) defaults to off; a disabled span
// costs one predicted branch.  Compiling with -DSVC_METRICS_ENABLED=0
// compiles the macros out entirely (one switch for the whole observability
// layer).
//
// Serialization (SerializeChromeTrace / CollectTraceEvents) is a read of
// buffers owned by other threads: call it only when recording threads are
// quiescent — after ThreadPool::Wait(), thread joins, or at process end.
// That is the single-consumer contract the whole layer is built on; the
// serializer takes no locks against writers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"  // SVC_METRICS_ENABLED default + ThreadId()

namespace svc::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}
void SetTraceEnabled(bool enabled);

// One recorded event.  phase is Chrome's tag: 'B' begin, 'E' end,
// 'C' counter (value carries the sample).
struct TraceEvent {
  const char* name = nullptr;
  char phase = 0;
  uint32_t tid = 0;
  uint64_t ts_ns = 0;  // nanoseconds since process trace epoch
  double value = 0;    // counter samples only
};

// Raw recording entry points (prefer the macros).  No-ops when tracing is
// disabled at runtime.
void TraceBegin(const char* name);
void TraceEnd(const char* name);
void TraceCounter(const char* name, double value);

// All buffered events across threads in timestamp order.  Quiesced-threads
// contract above.
std::vector<TraceEvent> CollectTraceEvents();

// Events lost to ring wraparound across all threads: each ring retains the
// last 64K events, so anything older has been overwritten.  Derived from
// the ring heads (no extra work on the record path); resets with
// ClearTrace().  Quiesced-threads contract above.  Surfaced as the
// `obs/trace_dropped` gauge and as per-thread counter-track markers in
// SerializeChromeTrace(), so a truncated postmortem bundle is detectable.
uint64_t TraceDroppedTotal();

// Chrome trace-event JSON ({"traceEvents":[...]}).  Load in Perfetto or
// chrome://tracing.  Quiesced-threads contract above.
std::string SerializeChromeTrace();

// Drops every buffered event (buffers stay registered).
void ClearTrace();

// RAII span; emits the matching end event even if tracing is toggled off
// mid-scope, so B/E pairs stay balanced per thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      TraceBegin(name);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) TraceEnd(name_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

}  // namespace svc::obs

#if SVC_METRICS_ENABLED

#define SVC_OBS_CONCAT_INNER(a, b) a##b
#define SVC_OBS_CONCAT(a, b) SVC_OBS_CONCAT_INNER(a, b)

#define SVC_TRACE_SPAN(name) \
  ::svc::obs::ScopedSpan SVC_OBS_CONCAT(svc_trace_span_, __LINE__)(name)

#define SVC_TRACE_COUNTER(name, value)                     \
  do {                                                     \
    if (::svc::obs::TraceEnabled()) {                      \
      ::svc::obs::TraceCounter(name,                       \
                               static_cast<double>(value)); \
    }                                                      \
  } while (0)

#else  // !SVC_METRICS_ENABLED

#define SVC_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define SVC_TRACE_COUNTER(name, value) \
  do {                                 \
  } while (0)

#endif  // SVC_METRICS_ENABLED
