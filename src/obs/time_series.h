// Line-oriented (JSONL) time-series sink.
//
// The simulation engine appends one JSON object per sampling period (link
// utilization, outage counts, active jobs — see SimConfig.series); benches
// drain the sink into the --metrics-out file together with the registry
// snapshot, so the whole observability layer emits one uniform format:
// one JSON object per line, distinguished by a "type" member.
//
// Append is mutex-guarded: one sink is typically shared by every replica
// engine of a parallel sweep, and a sample line is rare (default one per
// 100 simulated seconds per engine) relative to the cost of a simulated
// tick.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace svc::obs {

class TimeSeriesSink {
 public:
  // `line` is one JSON object WITHOUT the trailing newline.
  void Append(std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    lines_.push_back(std::move(line));
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_.size();
  }

  // All lines joined with '\n' (one trailing newline when non-empty).
  std::string ToJsonl() const;

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lines_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

}  // namespace svc::obs
