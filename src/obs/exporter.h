// Live introspection plane: Prometheus-style text exposition of the
// metrics registry, and a flight recorder that freezes the last N decision
// records + a metrics snapshot + the trace rings into a postmortem bundle
// when something goes wrong (a fault, a StateValid failure, or an
// admit-latency / rejection-rate SLO breach).
//
// Bundle format (docs/OBSERVABILITY.md "Flight recorder"):
//
//   <dir>/flight-<n>-<cause>.jsonl      one JSON object per line:
//     {"type":"flight","cause":...,"detail":...,...}   header, line 1
//     {"type":"decision",...}                          last N records
//     {"type":"counter"|"gauge"|"histogram",...}       metrics snapshot
//   <dir>/flight-<n>-<cause>.trace.json  Chrome trace JSON (when enabled)
//
// Triggering reads rings owned by other threads, so it inherits the
// quiesced-threads contract of the trace/decision layers: the built-in
// trigger points (HandleFault, StateValid failures, the engine's SLO
// check) all run at points where the admission pipeline is drained.  SLO
// breaches detected mid-batch via ObserveAdmission() only *latch*; the
// dump happens at the caller's next MaybeTriggerPending() — a safe point
// by construction.
//
// This header intentionally depends on nothing outside the standard
// library so every layer can link it.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace svc::obs {

// Prometheus text-exposition (version 0.0.4) of a snapshot.  Metric names
// are sanitized (`manager/admit_latency_us` -> `svc_manager_admit_latency_us`);
// histograms export cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`, counters/gauges export as-is.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

// Convenience: export the global registry.
std::string ExportPrometheus();

struct FlightRecorderConfig {
  std::string dir;       // bundle directory (must exist); empty = disabled
  size_t max_records = 512;  // decision records per bundle (newest first)
  bool include_trace = true; // also dump the trace rings alongside
  // SLO triggers, evaluated over sliding windows of `slo_window`
  // admissions fed through ObserveAdmission(); 0 disarms each.
  double admit_latency_slo_us = 0;  // breach: windowed mean latency above
  double rejection_rate_slo = 0;    // breach: windowed reject fraction above
  size_t slo_window = 64;
};

class FlightRecorder {
 public:
  // Process-wide instance (never destroyed), like Registry::Global().
  static FlightRecorder& Global();

  void Configure(FlightRecorderConfig config);
  bool enabled() const;  // a non-empty dir is configured

  // Freezes and writes a bundle now (quiesced-threads contract above).
  // Returns the bundle path, or "" when disabled or the write failed.
  std::string Trigger(const char* cause, const char* detail);

  // Feeds one admission decision into the SLO windows.  Cheap no-op when
  // disabled or no SLO is armed; on a breach it latches a pending trigger
  // (at most one per window) instead of dumping inline, because the caller
  // may be mid-batch with speculation workers still recording.
  void ObserveAdmission(bool admitted, double latency_us);

  // Latches an arbitrary trigger for the next MaybeTriggerPending() — the
  // mid-batch analogue of Trigger() for callers that cannot satisfy the
  // quiesced-threads contract (e.g. an admission-inconsistency detected
  // inside a pipeline decision callback).  First latch wins until dumped.
  void LatchTrigger(const char* cause, const char* detail);

  // Dumps a latched SLO breach, if any; call from a quiesced point (the
  // engine does, after each admission group settles).  Returns the bundle
  // path or "".
  std::string MaybeTriggerPending();

  int64_t bundles_written() const;

  // Clears config, SLO windows, and pending state (tests).
  void Reset();
};

}  // namespace svc::obs
