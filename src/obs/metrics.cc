#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>

namespace svc::obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{false};

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Counter ---------------------------------------------------------------

void Counter::Reset() {
  for (CounterShard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// --- Gauge -----------------------------------------------------------------

void Gauge::Set(double value) {
  base_.store(value, std::memory_order_relaxed);
  for (Shard& s : shards_) s.delta.store(0, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  Shard& shard = shards_[internal::ThreadId() % kShards];
  double current = shard.delta.load(std::memory_order_relaxed);
  while (!shard.delta.compare_exchange_weak(current, current + delta,
                                            std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const {
  double total = base_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    total += s.delta.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Reset() {
  base_.store(0, std::memory_order_relaxed);
  for (Shard& s : shards_) s.delta.store(0, std::memory_order_relaxed);
}

// --- Histogram -------------------------------------------------------------

int Histogram::BucketOf(double value) {
  if (!(value > 0)) return 0;  // non-positive (and NaN) -> underflow bucket
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
  // value lies in [2^(exp-1), 2^exp): octave index relative to kMinExp.
  const int octave = exp - 1 - kMinExp;
  if (octave < 0) return 0;
  if (octave >= kMaxExp - kMinExp) return kNumBuckets - 1;
  int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // fp guard at octave edge
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  if (b >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int i = b - 1;
  const int octave = i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kMinExp + octave);
}

double Histogram::BucketUpperBound(int b) {
  if (b >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(b + 1);
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& bucket : s.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Max() const {
  double max = 0;
  for (const Shard& s : shards_) {
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  return max;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<int64_t, kNumBuckets> counts{};
  int64_t total = 0;
  for (const Shard& s : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const int64_t c = s.buckets[b].load(std::memory_order_relaxed);
      counts[b] += c;
      total += c;
    }
  }
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target) {
      if (b == 0) return 0;
      const double lower = BucketLowerBound(b);
      const double upper = b == kNumBuckets - 1 ? lower : BucketUpperBound(b);
      const double fraction =
          counts[b] == 0 ? 0
                         : (target - cumulative) / static_cast<double>(counts[b]);
      // Interpolated position, clamped by the true maximum so the top
      // quantiles cannot overshoot the observed range.
      return std::min(lower + fraction * (upper - lower), Max());
    }
    cumulative = next;
  }
  return Max();
}

std::vector<HistogramBucket> Histogram::Buckets() const {
  std::vector<HistogramBucket> result;
  for (int b = 0; b < kNumBuckets; ++b) {
    int64_t count = 0;
    for (const Shard& s : shards_) {
      count += s.buckets[b].load(std::memory_order_relaxed);
    }
    if (count > 0) {
      result.push_back({BucketLowerBound(b), BucketUpperBound(b), count});
    }
  }
  return result;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& bucket : s.buckets) bucket.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// --- Snapshot --------------------------------------------------------------

namespace {

// Minimal JSON string escape; metric names are plain identifiers but the
// emitter must stay valid for any input.
void AppendEscaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON cannot represent inf/nan
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::ToJsonl() const {
  std::string out;
  for (const CounterValue& c : counters) {
    out += "{\"type\":\"counter\",\"name\":";
    AppendEscaped(out, c.name);
    out += ",\"value\":" + std::to_string(c.value) + "}\n";
  }
  for (const GaugeValue& g : gauges) {
    out += "{\"type\":\"gauge\",\"name\":";
    AppendEscaped(out, g.name);
    out += ",\"value\":";
    AppendDouble(out, g.value);
    out += "}\n";
  }
  for (const HistogramValue& h : histograms) {
    out += "{\"type\":\"histogram\",\"name\":";
    AppendEscaped(out, h.name);
    out += ",\"count\":" + std::to_string(h.count) + ",\"sum\":";
    AppendDouble(out, h.sum);
    out += ",\"max\":";
    AppendDouble(out, h.max);
    out += ",\"p50\":";
    AppendDouble(out, h.p50);
    out += ",\"p90\":";
    AppendDouble(out, h.p90);
    out += ",\"p99\":";
    AppendDouble(out, h.p99);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += "[";
      AppendDouble(out, h.buckets[i].lower);
      out += ",";
      // The overflow bucket's upper bound is +inf -> null per AppendDouble.
      AppendDouble(out, h.buckets[i].upper);
      out += "," + std::to_string(h.buckets[i].count) + "]";
    }
    out += "]}\n";
  }
  return out;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // intentionally leaked
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Collect() const {
  MetricsSnapshot snapshot;
  std::shared_lock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = hist->TotalCount();
    value.sum = hist->Sum();
    value.max = hist->Max();
    value.p50 = hist->Quantile(0.5);
    value.p90 = hist->Quantile(0.9);
    value.p99 = hist->Quantile(0.99);
    value.buckets = hist->Buckets();
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void Registry::ResetAll() {
  std::shared_lock lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace svc::obs
