#include "obs/decision_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

namespace svc::obs {

namespace internal {
std::atomic<bool> g_decisions_enabled{false};
}  // namespace internal

void SetDecisionsEnabled(bool enabled) {
  internal::g_decisions_enabled.store(enabled, std::memory_order_relaxed);
}

const char* ToString(DecisionOutcome outcome) {
  switch (outcome) {
    case DecisionOutcome::kAdmit:
      return "admit";
    case DecisionOutcome::kReject:
      return "reject";
    case DecisionOutcome::kEvict:
      return "evict";
  }
  return "unknown";
}

const char* ToString(CommitPath path) {
  switch (path) {
    case CommitPath::kSerial:
      return "serial";
    case CommitPath::kFresh:
      return "fresh";
    case CommitPath::kShardFresh:
      return "shard-fresh";
    case CommitPath::kShardDispatch:
      return "shard-dispatch";
    case CommitPath::kStaleRerun:
      return "stale-rerun";
    case CommitPath::kOptimistic:
      return "optimistic";
    case CommitPath::kOptimisticRetry:
      return "optimistic-retry";
    case CommitPath::kFaultEvict:
      return "fault-evict";
  }
  return "unknown";
}

namespace {

void CopyBounded(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

// Records kept per thread: 4K x ~160 B.  Wrapping keeps the most recent
// window — the postmortem regime the flight recorder dumps.
constexpr size_t kRingCapacity = 1u << 12;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread ring, same publication protocol as the trace rings: the
// writer fills the slot then release-stores head; a quiesced-thread reader
// acquires head and walks the last min(head, capacity) slots.
struct Ring {
  Ring() { slots.resize(kRingCapacity); }

  void Push(const DecisionRecord& record) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % kRingCapacity] = record;
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<DecisionRecord> slots;
  std::atomic<uint64_t> head{0};
};

std::atomic<uint64_t> g_decision_seq{0};

// Rings are owned by this global list (never freed) so records survive the
// recording thread's exit; the thread_local below is a cached pointer.
std::mutex g_rings_mu;
std::vector<std::unique_ptr<Ring>>& GlobalRings() {
  static auto* rings = new std::vector<std::unique_ptr<Ring>>();
  return *rings;
}

Ring& LocalRing() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* raw = owned.get();
    std::lock_guard<std::mutex> lock(g_rings_mu);
    GlobalRings().push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

void AppendJsonEscaped(std::string& out, const char* s) {
  out.push_back('"');
  for (const char* p = s; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

void DecisionRecord::set_allocator(std::string_view name) {
  CopyBounded(allocator, sizeof allocator, name);
}

void DecisionRecord::set_reason(std::string_view code) {
  CopyBounded(reason, sizeof reason, code);
}

void DecisionRecord::AddBindingLink(int32_t link, double slack) {
  const float s =
      static_cast<float>(std::max(-1.0, std::min(slack, 1e9)));
  int pos = num_links;
  if (pos == kMaxBindingLinks) {
    if (s >= links[kMaxBindingLinks - 1].slack) return;
    pos = kMaxBindingLinks - 1;
  } else {
    ++num_links;
  }
  while (pos > 0 && links[pos - 1].slack > s) {
    links[pos] = links[pos - 1];
    --pos;
  }
  links[pos] = BindingLink{link, s};
}

void RecordDecision(const DecisionRecord& record) {
  if (!DecisionsEnabled()) return;
  Ring& ring = LocalRing();
  const uint64_t h = ring.head.load(std::memory_order_relaxed);
  DecisionRecord& slot = ring.slots[h % kRingCapacity];
  slot = record;
  slot.seq = g_decision_seq.fetch_add(1, std::memory_order_relaxed);
  slot.ts_ns = NowNs();
  slot.worker_tid = ThreadId();
  ring.head.store(h + 1, std::memory_order_release);
}

uint64_t DecisionCount() {
  return g_decision_seq.load(std::memory_order_relaxed);
}

size_t DecisionRingCapacity() { return kRingCapacity; }

std::vector<DecisionRecord> CollectDecisions() {
  std::vector<DecisionRecord> records;
  {
    std::lock_guard<std::mutex> lock(g_rings_mu);
    for (const auto& ring : GlobalRings()) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t count = std::min<uint64_t>(head, kRingCapacity);
      for (uint64_t i = head - count; i < head; ++i) {
        records.push_back(ring->slots[i % kRingCapacity]);
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const DecisionRecord& a, const DecisionRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

bool FindDecision(int64_t tenant_id, DecisionRecord* out) {
  bool found = false;
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (const auto& ring : GlobalRings()) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t count = std::min<uint64_t>(head, kRingCapacity);
    for (uint64_t i = head - count; i < head; ++i) {
      const DecisionRecord& r = ring->slots[i % kRingCapacity];
      if (r.tenant_id != tenant_id) continue;
      if (!found || r.seq > out->seq) {
        *out = r;
        found = true;
      }
    }
  }
  return found;
}

void ClearDecisions() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (const auto& ring : GlobalRings()) {
    ring->head.store(0, std::memory_order_release);
  }
}

void AppendDecisionJson(std::string& out, const DecisionRecord& r) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"decision\",\"seq\":%llu,\"tenant\":%lld,"
                "\"outcome\":\"%s\",\"path\":\"%s\",",
                static_cast<unsigned long long>(r.seq),
                static_cast<long long>(r.tenant_id), ToString(r.outcome),
                ToString(r.path));
  out += buf;
  out += "\"allocator\":";
  AppendJsonEscaped(out, r.allocator);
  out += ",\"reason\":";
  AppendJsonEscaped(out, r.reason);
  std::snprintf(buf, sizeof buf,
                ",\"shard\":%d,\"worker\":%u,\"epoch_delta\":%u,"
                "\"ts_ns\":%llu,\"links\":[",
                r.shard, r.worker_tid, r.epoch_delta,
                static_cast<unsigned long long>(r.ts_ns));
  out += buf;
  for (int i = 0; i < r.num_links; ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"link\":%d,\"slack\":%.6g}",
                  i > 0 ? "," : "", r.links[i].link,
                  static_cast<double>(r.links[i].slack));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "],\"stages_us\":{\"queue_wait\":%.3f,\"snapshot\":%.3f,"
                "\"speculate\":%.3f,\"sequence\":%.3f,\"apply\":%.3f}}",
                static_cast<double>(r.stages.queue_wait_us),
                static_cast<double>(r.stages.snapshot_us),
                static_cast<double>(r.stages.speculate_us),
                static_cast<double>(r.stages.sequence_us),
                static_cast<double>(r.stages.apply_us));
  out += buf;
}

std::string FormatDecision(const DecisionRecord& r) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf, "tenant %lld %s via %s",
                static_cast<long long>(r.tenant_id), ToString(r.outcome),
                ToString(r.path));
  out += buf;
  std::snprintf(buf, sizeof buf,
                " alloc=%s reason=%s shard=%d worker=t%u epoch_delta=%u",
                r.allocator[0] ? r.allocator : "-",
                r.reason[0] ? r.reason : "-", r.shard, r.worker_tid,
                r.epoch_delta);
  out += buf;
  out += " binding=[";
  for (int i = 0; i < r.num_links; ++i) {
    std::snprintf(buf, sizeof buf, "%sL%d slack=%.3f", i > 0 ? ", " : "",
                  r.links[i].link, static_cast<double>(r.links[i].slack));
    out += buf;
  }
  out += "]";
  std::snprintf(buf, sizeof buf,
                " stages_us[queue=%.1f snap=%.1f spec=%.1f seq=%.1f "
                "apply=%.1f]",
                static_cast<double>(r.stages.queue_wait_us),
                static_cast<double>(r.stages.snapshot_us),
                static_cast<double>(r.stages.speculate_us),
                static_cast<double>(r.stages.sequence_us),
                static_cast<double>(r.stages.apply_us));
  out += buf;
  return out;
}

}  // namespace svc::obs
