#include "enforce/token_bucket.h"

#include <algorithm>
#include <cassert>

namespace svc::enforce {

TokenBucket::TokenBucket(double rate_mbps, double burst_mbits)
    : rate_mbps_(rate_mbps),
      burst_mbits_(burst_mbits),
      credit_mbits_(burst_mbits) {
  assert(rate_mbps >= 0);
  assert(burst_mbits >= 0);
}

double TokenBucket::Admit(double desired_mbps, double dt_seconds) {
  assert(dt_seconds > 0);
  assert(desired_mbps >= 0);
  // Accrue credit for the interval, capped at the bucket depth.
  credit_mbits_ =
      std::min(burst_mbits_ + rate_mbps_ * dt_seconds,
               credit_mbits_ + rate_mbps_ * dt_seconds);
  const double wanted_mbits = desired_mbps * dt_seconds;
  const double sent_mbits = std::min(wanted_mbits, credit_mbits_);
  credit_mbits_ -= sent_mbits;
  return sent_mbits / dt_seconds;
}

}  // namespace svc::enforce
