// Hypervisor rate limiting (paper Section III-C): "Rate limiting components
// at endhost hypervisors or switches are used to enforce the bandwidth
// reservations by ensuring that VMs do not exceed the bandwidth specified
// in the virtual topology."
//
// Two enforcement disciplines are provided:
//   * a hard cap — the idealized limiter the analysis assumes (send rate
//     clipped at the reservation every instant);
//   * a token bucket — how real hypervisors (tc/HTB, SENIC, EyeQ) enforce
//     rates: the VM may burst above the reservation while accumulated
//     credit lasts, so short spikes pass through but the long-run average
//     cannot exceed the reservation.
//
// The simulator uses the hard cap by default (matching the paper); the
// token bucket is an ablation knob that quantifies how enforcement
// burstiness erodes the reservation guarantee.
#pragma once

namespace svc::enforce {

class TokenBucket {
 public:
  // rate_mbps: sustained rate (the reservation B).
  // burst_mbits: bucket depth; <= rate * dt degenerates to a hard cap.
  TokenBucket(double rate_mbps, double burst_mbits);

  // One enforcement interval: the VM wants to send at `desired_mbps` for
  // `dt_seconds`; returns the admitted send rate for the interval and
  // debits/accrues credit accordingly.
  double Admit(double desired_mbps, double dt_seconds);

  // Remaining burst credit (Mbit).
  double credit_mbits() const { return credit_mbits_; }
  double rate_mbps() const { return rate_mbps_; }

 private:
  double rate_mbps_;
  double burst_mbits_;
  double credit_mbits_;
};

}  // namespace svc::enforce
