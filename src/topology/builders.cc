#include "topology/builders.h"

#include <cassert>

namespace svc::topology {

Topology BuildThreeTier(const ThreeTierConfig& config) {
  assert(config.racks > 0 && config.machines_per_rack > 0 &&
         config.slots_per_machine > 0);
  assert(config.racks % config.racks_per_agg == 0 &&
         "racks must divide evenly into aggregation groups");
  assert(config.oversubscription >= 1.0);

  const double tor_uplink = config.machines_per_rack *
                            config.machine_link_mbps /
                            config.oversubscription;
  const double agg_uplink =
      config.racks_per_agg * tor_uplink / config.oversubscription;
  const int num_aggs = config.racks / config.racks_per_agg;

  Topology topo;
  const VertexId core = topo.AddVertex(kNoVertex, 0, 0);
  for (int a = 0; a < num_aggs; ++a) {
    const VertexId agg =
        topo.AddVertex(core, agg_uplink, 0, config.agg_trunk);
    for (int r = 0; r < config.racks_per_agg; ++r) {
      const VertexId tor =
          topo.AddVertex(agg, tor_uplink, 0, config.tor_trunk);
      for (int m = 0; m < config.machines_per_rack; ++m) {
        topo.AddVertex(tor, config.machine_link_mbps,
                       config.slots_per_machine);
      }
    }
  }
  topo.Finalize();
  return topo;
}

Topology BuildStar(int machines, int slots_per_machine, double link_mbps) {
  assert(machines > 0 && slots_per_machine > 0 && link_mbps > 0);
  Topology topo;
  const VertexId sw = topo.AddVertex(kNoVertex, 0, 0);
  for (int m = 0; m < machines; ++m) {
    topo.AddVertex(sw, link_mbps, slots_per_machine);
  }
  topo.Finalize();
  return topo;
}

Topology BuildTwoTier(int racks, int machines_per_rack, int slots_per_machine,
                      double link_mbps, double oversubscription) {
  assert(racks > 0 && machines_per_rack > 0 && slots_per_machine > 0);
  assert(oversubscription >= 1.0);
  const double rack_uplink =
      machines_per_rack * link_mbps / oversubscription;
  Topology topo;
  const VertexId core = topo.AddVertex(kNoVertex, 0, 0);
  for (int r = 0; r < racks; ++r) {
    const VertexId tor = topo.AddVertex(core, rack_uplink, 0);
    for (int m = 0; m < machines_per_rack; ++m) {
      topo.AddVertex(tor, link_mbps, slots_per_machine);
    }
  }
  topo.Finalize();
  return topo;
}

}  // namespace svc::topology
