#include "topology/topology.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace svc::topology {

VertexId Topology::AddVertex(VertexId parent, double uplink_capacity_mbps,
                             int vm_slots, int trunk_width) {
  assert(!finalized_ && "topology is immutable after Finalize()");
  assert(trunk_width >= 1);
  const VertexId id = static_cast<VertexId>(parent_.size());
  if (id == 0) {
    assert(parent == kNoVertex && "first vertex must be the root");
  } else {
    assert(parent >= 0 && parent < id && "parent must already exist");
    assert(uplink_capacity_mbps > 0 && "links need positive capacity");
    assert(vm_slots_[parent] == 0 && "machines must be leaves");
  }
  parent_.push_back(parent);
  children_.emplace_back();
  if (parent != kNoVertex) children_[parent].push_back(id);
  uplink_capacity_.push_back(parent == kNoVertex ? 0.0 : uplink_capacity_mbps);
  vm_slots_.push_back(vm_slots);
  trunk_width_.push_back(trunk_width);
  return id;
}

void Topology::Finalize() {
  assert(!finalized_);
  assert(!parent_.empty() && "empty topology");
  const int n = num_vertices();
  level_.assign(n, 0);
  depth_.assign(n, 0);
  machines_.clear();
  total_slots_ = 0;

  // Vertices are added parent-before-child, so a single forward pass gives
  // depths and a backward pass gives levels (subtree heights).
  for (VertexId v = 1; v < n; ++v) depth_[v] = depth_[parent_[v]] + 1;
  for (VertexId v = n - 1; v >= 1; --v) {
    level_[parent_[v]] = std::max(level_[parent_[v]], level_[v] + 1);
  }

  for (VertexId v = 0; v < n; ++v) {
    if (vm_slots_[v] > 0) {
      assert(children_[v].empty() && "machines must be leaves");
      machines_.push_back(v);
      total_slots_ += vm_slots_[v];
    } else {
      assert((v == 0 || !children_[v].empty()) &&
             "switch with no children is useless");
    }
  }
  assert(!machines_.empty() && "topology has no machines");

  by_level_.assign(height() + 1, {});
  for (VertexId v = 0; v < n; ++v) by_level_[level_[v]].push_back(v);

  // Per-cable directed slot layout: [up cables..., down cables...] per
  // vertex, root included for uniform indexing (its slots stay unused).
  cable_offset_.assign(n, 0);
  int32_t offset = 0;
  for (VertexId v = 0; v < n; ++v) {
    cable_offset_[v] = offset;
    offset += 2 * trunk_width_[v];
  }
  directed_cable_slots_ = offset;
  finalized_ = true;
}

std::vector<VertexId> Topology::MachinesUnder(VertexId v) const {
  assert(finalized_);
  std::vector<VertexId> result;
  std::vector<VertexId> stack{v};
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    if (is_machine(u)) result.push_back(u);
    for (VertexId child : children_[u]) stack.push_back(child);
  }
  return result;
}

void Topology::PathLinks(VertexId a, VertexId b,
                         std::vector<VertexId>& out) const {
  assert(finalized_);
  if (a == b) return;
  // Climb the deeper endpoint until both are at equal depth, then climb in
  // lockstep to the LCA.  Every vertex stepped out of contributes its uplink.
  VertexId x = a;
  VertexId y = b;
  const size_t tail = out.size();
  while (depth_[x] > depth_[y]) {
    out.push_back(x);
    x = parent_[x];
  }
  // Collect y's side separately so the path stays ordered a..b; order does
  // not matter to consumers, but keep it deterministic.
  std::vector<VertexId> from_b;
  while (depth_[y] > depth_[x]) {
    from_b.push_back(y);
    y = parent_[y];
  }
  while (x != y) {
    out.push_back(x);
    from_b.push_back(y);
    x = parent_[x];
    y = parent_[y];
  }
  out.insert(out.end(), from_b.rbegin(), from_b.rend());
  (void)tail;
}

void Topology::PathLinksDirected(VertexId a, VertexId b,
                                 std::vector<int32_t>& out) const {
  assert(finalized_);
  if (a == b) return;
  VertexId x = a;
  VertexId y = b;
  while (depth_[x] > depth_[y]) {
    out.push_back(UpLink(x));
    x = parent_[x];
  }
  std::vector<int32_t> from_b;
  while (depth_[y] > depth_[x]) {
    from_b.push_back(DownLink(y));
    y = parent_[y];
  }
  while (x != y) {
    out.push_back(UpLink(x));
    from_b.push_back(DownLink(y));
    x = parent_[x];
    y = parent_[y];
  }
  out.insert(out.end(), from_b.rbegin(), from_b.rend());
}

void Topology::PathCablesDirected(VertexId a, VertexId b, uint64_t flow_hash,
                                  std::vector<int32_t>& out) const {
  assert(finalized_);
  if (a == b) return;
  // A cheap per-link mix of the flow hash (so one flow does not land on
  // cable (hash % w) of EVERY trunk, which would correlate collisions).
  auto cable_of = [&](VertexId v) {
    uint64_t h = flow_hash ^ (0x9e3779b97f4a7c15ULL * (uint64_t)(v + 1));
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<int>(h % static_cast<uint64_t>(trunk_width_[v]));
  };
  VertexId x = a;
  VertexId y = b;
  while (depth_[x] > depth_[y]) {
    out.push_back(DirectedCableSlot(x, /*up=*/true, cable_of(x)));
    x = parent_[x];
  }
  std::vector<int32_t> from_b;
  while (depth_[y] > depth_[x]) {
    from_b.push_back(DirectedCableSlot(y, /*up=*/false, cable_of(y)));
    y = parent_[y];
  }
  while (x != y) {
    out.push_back(DirectedCableSlot(x, /*up=*/true, cable_of(x)));
    from_b.push_back(DirectedCableSlot(y, /*up=*/false, cable_of(y)));
    x = parent_[x];
    y = parent_[y];
  }
  out.insert(out.end(), from_b.rbegin(), from_b.rend());
}

void Topology::FillCableCapacities(std::vector<double>& capacity) const {
  assert(finalized_);
  capacity.assign(directed_cable_slots_, 0.0);
  for (VertexId v = 1; v < num_vertices(); ++v) {
    const double per_cable = cable_capacity(v);
    for (int cable = 0; cable < trunk_width_[v]; ++cable) {
      capacity[DirectedCableSlot(v, true, cable)] = per_cable;
      capacity[DirectedCableSlot(v, false, cable)] = per_cable;
    }
  }
}

bool Topology::IsInSubtree(VertexId descendant, VertexId ancestor) const {
  assert(finalized_);
  VertexId v = descendant;
  while (v != kNoVertex && depth_[v] >= depth_[ancestor]) {
    if (v == ancestor) return true;
    v = parent_[v];
  }
  return false;
}

std::string Topology::Describe() const {
  std::ostringstream out;
  out << machines_.size() << " machines (" << total_slots_ << " VM slots), "
      << num_vertices() << " vertices, " << num_links() << " links, height "
      << height();
  return out.str();
}

}  // namespace svc::topology
