// Canonical topology builders.
//
// BuildThreeTier reproduces the paper's evaluation fabric: racks of machines
// under ToR switches, ToRs under aggregation switches, aggregations under a
// single core, with a per-level oversubscription factor ("the default
// oversubscription of the physical network is 2").
#pragma once

#include "topology/topology.h"

namespace svc::topology {

struct ThreeTierConfig {
  int racks = 50;
  int machines_per_rack = 20;
  int slots_per_machine = 4;
  int racks_per_agg = 10;           // `racks` must be divisible by this
  double machine_link_mbps = 1000;  // 1 Gbps to the ToR
  // Uplink of a switch = (sum of its children's link capacities) /
  // oversubscription.  With the defaults this gives 10 Gbps ToR uplinks and
  // 50 Gbps aggregation uplinks, matching the paper.
  double oversubscription = 2.0;
  // Trunking (multi-rooted fabrics): the ToR / aggregation uplinks consist
  // of this many parallel cables carrying the same aggregate capacity.
  // Allocation sees the aggregate; the simulator ECMP-hashes flows onto
  // cables.  1 = the paper's single-path tree.
  int tor_trunk = 1;
  int agg_trunk = 1;
};

// Builds and finalizes the three-tier tree.  Asserts on inconsistent config.
Topology BuildThreeTier(const ThreeTierConfig& config);

// A one-switch "star" of `machines` machines, used by unit tests and the
// worked example of Fig. 3.
Topology BuildStar(int machines, int slots_per_machine, double link_mbps);

// Two-level tree: `racks` racks of `machines_per_rack` machines; rack uplink
// = machines_per_rack * link_mbps / oversubscription.
Topology BuildTwoTier(int racks, int machines_per_rack, int slots_per_machine,
                      double link_mbps, double oversubscription);

}  // namespace svc::topology
