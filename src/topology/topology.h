// Rooted-tree datacenter topology.
//
// The paper targets "tree-like topologies such as multi-rooted trees used in
// today's datacenters" and evaluates on a three-level tree with no path
// diversity: machines -> ToR switches -> aggregation switches -> core.  This
// class models an arbitrary rooted tree:
//
//   * vertices are machines (leaves, with VM slots) or switches;
//   * every non-root vertex v has exactly one uplink L_v to its parent, so a
//     link is identified by its child vertex id;
//   * level(v) is the height of the subtree rooted at v (machines are level
//     0), which is the traversal order of the allocation algorithms;
//   * removing L_v splits the tree into T_v (below) and the rest — the
//     two components referenced throughout the paper's analysis.
//
// Topologies are immutable after Finalize(); all allocator and simulator
// state lives outside (net::LinkLedger, sim::SlotMap) so one topology can be
// shared by many concurrent experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svc::topology {

using VertexId = int32_t;
inline constexpr VertexId kNoVertex = -1;

class Topology {
 public:
  Topology() = default;

  // --- Construction (before Finalize) ---

  // Adds a vertex.  The first vertex added must be the root
  // (parent == kNoVertex); all others must name an existing parent.
  // `uplink_capacity_mbps` is the AGGREGATE capacity of the link to the
  // parent (ignored for the root).  `vm_slots` > 0 marks the vertex as a
  // machine; machines must be leaves.
  //
  // `trunk_width` models multi-rooted-tree fabrics: the uplink physically
  // consists of `trunk_width` parallel cables of capacity
  // uplink_capacity / trunk_width each.  Allocation and admission operate
  // on the aggregate (the hose model sees one logical link); the simulator
  // ECMP-hashes each flow onto one cable, so trunking only matters to
  // packet-level behaviour (collision hot spots), exactly as in real
  // datacenters.
  VertexId AddVertex(VertexId parent, double uplink_capacity_mbps,
                     int vm_slots, int trunk_width = 1);

  // Validates invariants and computes the derived tables (children, levels,
  // depths, machine list).  Must be called exactly once, after which the
  // topology is immutable.  Aborts (assert) on structural violations.
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- Queries (after Finalize) ---

  int num_vertices() const { return static_cast<int>(parent_.size()); }
  // Number of links (= vertices minus the root).
  int num_links() const { return num_vertices() - 1; }
  VertexId root() const { return 0; }

  VertexId parent(VertexId v) const { return parent_[v]; }
  const std::vector<VertexId>& children(VertexId v) const {
    return children_[v];
  }
  // Height of the subtree rooted at v; machines are 0.
  int level(VertexId v) const { return level_[v]; }
  // Distance from the root (root is 0).
  int depth(VertexId v) const { return depth_[v]; }
  int height() const { return level_[root()]; }

  bool is_machine(VertexId v) const { return vm_slots_[v] > 0; }
  int vm_slots(VertexId v) const { return vm_slots_[v]; }
  // Capacity of the uplink of v (v must not be the root).
  double uplink_capacity(VertexId v) const { return uplink_capacity_[v]; }

  // All machine vertex ids in construction order.
  const std::vector<VertexId>& machines() const { return machines_; }
  int total_slots() const { return total_slots_; }

  // Vertices whose subtree height is exactly `lvl`, bottom-up search order
  // of the allocation algorithms.
  const std::vector<VertexId>& vertices_at_level(int lvl) const {
    return by_level_[lvl];
  }

  // All machine ids in the subtree rooted at v (computed on demand).
  std::vector<VertexId> MachinesUnder(VertexId v) const;

  // Appends the link ids (child-vertex ids) on the unique path between
  // machines a and b.  Empty when a == b (intra-machine traffic does not
  // use the network).
  void PathLinks(VertexId a, VertexId b, std::vector<VertexId>& out) const;

  // Directed variant for full-duplex links: traffic from a to b uses the
  // "up" half of every link on a's side of the lowest common ancestor and
  // the "down" half on b's side.  Ids are encoded as UpLink(v) / DownLink(v)
  // and index a capacity array of size 2 * num_vertices().  Reservation
  // math (min(m, N-m) crossing flows per direction) assumes this duplex
  // model, as do production fabrics.  These ids address whole (aggregate)
  // links; for per-cable addressing on trunked fabrics see DirectedCable*.
  static int32_t UpLink(VertexId v) { return 2 * v; }
  static int32_t DownLink(VertexId v) { return 2 * v + 1; }
  void PathLinksDirected(VertexId a, VertexId b,
                         std::vector<int32_t>& out) const;

  // --- Per-cable addressing (trunked / multi-rooted fabrics) ---

  int trunk_width(VertexId v) const { return trunk_width_[v]; }
  // Capacity of one cable of v's uplink (= uplink / width).
  double cable_capacity(VertexId v) const {
    return uplink_capacity_[v] / trunk_width_[v];
  }
  // Size of a per-cable directed capacity array.
  int directed_cable_slots() const { return directed_cable_slots_; }
  // Slot index of cable `cable` (< trunk_width(v)) in direction up/down.
  int32_t DirectedCableSlot(VertexId v, bool up, int cable) const {
    return cable_offset_[v] + (up ? 0 : trunk_width_[v]) + cable;
  }
  // Appends the per-cable directed path from a to b, selecting the cable on
  // every trunk by `flow_hash` (per-flow ECMP: the same flow always hashes
  // to the same cable; different flows spread).
  void PathCablesDirected(VertexId a, VertexId b, uint64_t flow_hash,
                          std::vector<int32_t>& out) const;
  // Fills `capacity` (size directed_cable_slots()) with per-cable
  // capacities.
  void FillCableCapacities(std::vector<double>& capacity) const;

  // True if `descendant` lies in the subtree rooted at `ancestor`.
  bool IsInSubtree(VertexId descendant, VertexId ancestor) const;

  // Human-readable summary ("1000 machines, 1056 vertices, height 3, ...").
  std::string Describe() const;

 private:
  bool finalized_ = false;
  std::vector<VertexId> parent_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<double> uplink_capacity_;
  std::vector<int> vm_slots_;
  std::vector<int> trunk_width_;
  std::vector<int32_t> cable_offset_;
  int directed_cable_slots_ = 0;
  std::vector<int> level_;
  std::vector<int> depth_;
  std::vector<VertexId> machines_;
  std::vector<std::vector<VertexId>> by_level_;
  int total_slots_ = 0;
};

}  // namespace svc::topology
