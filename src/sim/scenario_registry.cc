// Built-in scenarios: every figure and ablation the benches used to
// hand-assemble, as registry entries the shims (and scenario_run, and the
// daemon) load by name.  The parameter values here are the bench defaults
// verbatim — a registered scenario run with --threads 1 reproduces the
// legacy bench's decision stream bit for bit.
#include <mutex>

#include "sim/scenario.h"

namespace svc::sim {
namespace {

// The bench_common defaults every figure started from: the paper's 50-rack
// three-tier fabric (ThreeTierConfig defaults) and the calibrated tenant
// mix (300 jobs, mean size 49, rate menu 50..250 Mbps).
Scenario Base(const std::string& name, const std::string& description) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.workload.num_jobs = 300;
  s.workload.mean_job_size = 49;
  s.workload.max_job_size = 400;
  s.workload.rate_means = {50, 100, 150, 200, 250};
  return s;
}

VariantConfig Variant(const std::string& label,
                      const std::string& abstraction = "",
                      const std::string& allocator = "") {
  VariantConfig v;
  v.label = label;
  v.abstraction = abstraction;
  v.allocator = allocator;
  return v;
}

// The four-abstraction comparison column set of fig5/6/7.
std::vector<VariantConfig> AbstractionPanel() {
  std::vector<VariantConfig> variants;
  variants.push_back(Variant("mean-VC", "mean_vc"));
  variants.push_back(Variant("percentile-VC", "percentile_vc"));
  VariantConfig svc05 = Variant("SVC(e=0.05)", "svc");
  svc05.epsilon = 0.05;
  variants.push_back(svc05);
  VariantConfig svc02 = Variant("SVC(e=0.02)", "svc");
  svc02.epsilon = 0.02;
  variants.push_back(svc02);
  return variants;
}

std::vector<Scenario> BuildRegistry() {
  std::vector<Scenario> registry;

  {
    Scenario s = Base("fig5",
                      "Completion time vs oversubscription, batch arrivals "
                      "(paper Fig. 5)");
    s.arrivals.mode = "batch";
    s.sweep.parameter = "oversub";
    s.sweep.values = {1, 2, 3, 4};
    s.variants = AbstractionPanel();
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fig6",
                      "Mean job running time vs demand deviation rho, batch "
                      "arrivals (paper Fig. 6)");
    s.arrivals.mode = "batch";
    s.sweep.parameter = "rho";
    s.sweep.values = {0.1, 0.3, 0.5, 0.7, 0.9};
    s.variants = AbstractionPanel();
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fig7",
                      "Rejection rate vs offered load, online arrivals "
                      "(paper Fig. 7)");
    s.arrivals.mode = "poisson";
    s.sweep.parameter = "load";
    s.sweep.values = {0.2, 0.4, 0.6, 0.8};
    s.variants = AbstractionPanel();
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fig8",
                      "Concurrent-tenant time series, SVC vs percentile-VC "
                      "(paper Fig. 8)");
    s.arrivals.mode = "poisson";
    s.sweep.parameter = "load";
    s.sweep.values = {0.6};
    s.variants.push_back(Variant("SVC", "svc"));
    s.variants.push_back(Variant("percentile-VC", "percentile_vc"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fig9",
                      "Max-occupancy CDF, Algorithm 1 vs TIVC-adapted "
                      "placement (paper Fig. 9)");
    s.arrivals.mode = "poisson";
    s.sweep.parameter = "load";
    s.sweep.values = {0.2, 0.6};
    s.variants.push_back(Variant("svc-dp", "svc", "svc-dp"));
    s.variants.push_back(Variant("tivc-adapted", "svc", "tivc-adapted"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fig10",
                      "Rejection rate vs load, Algorithm 1 vs TIVC-adapted "
                      "placement (paper Fig. 10)");
    s.arrivals.mode = "poisson";
    s.sweep.parameter = "load";
    s.sweep.values = {0.2, 0.4, 0.6, 0.8};
    s.variants.push_back(Variant("svc-dp", "svc", "svc-dp"));
    s.variants.push_back(Variant("tivc-adapted", "svc", "tivc-adapted"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("guarantee_validation",
                      "Measured outage rate vs the epsilon SLA across "
                      "abstractions");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    s.sweep.parameter = "epsilon";
    s.sweep.values = {0.01, 0.02, 0.05, 0.1, 0.2};
    s.variants.push_back(Variant("SVC", "svc"));
    VariantConfig mean = Variant("mean-VC", "mean_vc");
    mean.once = true;
    s.variants.push_back(mean);
    VariantConfig pct = Variant("percentile-VC", "percentile_vc");
    pct.once = true;
    s.variants.push_back(pct);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("hetero_comparison",
                      "Heterogeneous-demand placement: substring heuristic "
                      "vs first-fit");
    s.topology.racks = 25;
    s.topology.machines_per_rack = 10;
    s.topology.racks_per_agg = 5;
    s.workload.heterogeneous = true;
    s.workload.mean_job_size = 10;
    s.workload.max_job_size = 30;
    s.workload.num_jobs = 200;
    s.arrivals.mode = "poisson";
    s.sweep.parameter = "load";
    s.sweep.values = {0.2, 0.6};
    s.variants.push_back(
        Variant("hetero-heuristic", "svc", "hetero-heuristic"));
    s.variants.push_back(Variant("first-fit", "svc", "first-fit"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("ablation_locality",
                      "Locality-rule ablation: Algorithm 1 vs global min-max "
                      "vs TIVC-adapted");
    s.arrivals.mode = "poisson";
    s.sweep.parameter = "load";
    s.sweep.values = {0.4, 0.8};
    s.variants.push_back(Variant("svc-dp", "svc", "svc-dp"));
    s.variants.push_back(Variant("global-minmax", "svc", "global-minmax"));
    s.variants.push_back(Variant("tivc-adapted", "svc", "tivc-adapted"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("ablation_enforcement",
                      "Hard-cap vs token-bucket enforcement at rho = 0.8, "
                      "batch arrivals");
    s.arrivals.mode = "batch";
    s.workload.fixed_deviation = 0.8;
    s.enforcement.burst_seconds = 10;
    VariantConfig v = Variant("mean-VC/hard_cap", "mean_vc");
    v.enforcement = "hard_cap";
    s.variants.push_back(v);
    v = Variant("mean-VC/token_bucket", "mean_vc");
    v.enforcement = "token_bucket";
    s.variants.push_back(v);
    v = Variant("percentile-VC/hard_cap", "percentile_vc");
    v.enforcement = "hard_cap";
    s.variants.push_back(v);
    v = Variant("percentile-VC/token_bucket", "percentile_vc");
    v.enforcement = "token_bucket";
    s.variants.push_back(v);
    v = Variant("SVC/hard_cap", "svc");
    v.enforcement = "hard_cap";
    s.variants.push_back(v);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("ablation_distribution",
                      "Normal vs lognormal demand marginals across epsilon");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    s.sweep.parameter = "epsilon";
    s.sweep.values = {0.02, 0.05, 0.1};
    VariantConfig normal = Variant("normal", "svc");
    normal.rate_distribution = "normal";
    s.variants.push_back(normal);
    VariantConfig lognormal = Variant("lognormal", "svc");
    lognormal.rate_distribution = "lognormal";
    s.variants.push_back(lognormal);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("ablation_ecmp",
                      "Trunked (ECMP-style) fabric links: rejection vs trunk "
                      "width");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    s.sweep.parameter = "trunk";
    s.sweep.values = {1, 2, 4, 8};
    s.variants.push_back(Variant("SVC", "svc"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("ablation_percentile",
                      "Reserved-percentile sweep for the deterministic q-VC "
                      "against mean-VC and SVC");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    s.sweep.parameter = "quantile";
    s.sweep.values = {0.5, 0.7, 0.8, 0.9, 0.95, 0.99};
    s.variants.push_back(Variant("q-VC", "percentile_vc"));
    VariantConfig mean = Variant("mean-VC", "mean_vc");
    mean.vc_quantile = 0.5;
    mean.once = true;
    s.variants.push_back(mean);
    VariantConfig svc = Variant("SVC", "svc");
    svc.vc_quantile = 0.95;
    svc.once = true;
    s.variants.push_back(svc);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fault_recovery",
                      "Recovery-policy comparison under random machine and "
                      "link churn vs MTBF");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    s.max_seconds = 80000;  // 4x the fault horizon
    s.faults.link_mtbf_factor = 3.0;
    s.faults.mttr_seconds = 60;
    s.faults.horizon_seconds = 20000;
    s.faults.seed = 44;
    s.sweep.parameter = "mtbf";
    s.sweep.values = {300, 900, 2700};
    VariantConfig v = Variant("reallocate");
    v.policy = "reallocate";
    s.variants.push_back(v);
    v = Variant("patch");
    v.policy = "patch";
    s.variants.push_back(v);
    v = Variant("evict");
    v.policy = "evict";
    s.variants.push_back(v);
    v = Variant("survivable_reallocate");
    v.policy = "reallocate";
    v.survivable = 1;
    s.variants.push_back(v);
    v = Variant("switchover");
    v.policy = "switchover";
    v.survivable = 1;
    s.variants.push_back(v);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fault_correlated",
                      "Recovery policies under churn plus correlated rack "
                      "power loss, ToR loss, and a planned drain");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    s.max_seconds = 80000;
    s.faults.link_mtbf_factor = 3.0;
    s.faults.mttr_seconds = 60;
    s.faults.horizon_seconds = 20000;
    s.faults.seed = 44;
    CorrelatedEventConfig event;
    event.kind = "rack_power";
    event.index = 0;
    event.time_frac = 0.25;
    s.faults.correlated.push_back(event);
    event.kind = "tor_loss";
    event.index = 1;
    event.time_frac = 0.5;
    s.faults.correlated.push_back(event);
    event.kind = "planned_drain";
    event.index = 0;
    event.time_frac = 0.75;
    s.faults.correlated.push_back(event);
    s.sweep.parameter = "mtbf";
    s.sweep.values = {300, 900, 2700};
    VariantConfig v = Variant("reallocate");
    v.policy = "reallocate";
    s.variants.push_back(v);
    v = Variant("patch");
    v.policy = "patch";
    s.variants.push_back(v);
    v = Variant("evict");
    v.policy = "evict";
    s.variants.push_back(v);
    v = Variant("survivable_reallocate");
    v.policy = "reallocate";
    v.survivable = 1;
    s.variants.push_back(v);
    v = Variant("switchover");
    v.policy = "switchover";
    v.survivable = 1;
    s.variants.push_back(v);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("fault_drill",
                      "Deterministic switchover drill: fail the machine "
                      "hosting an admitted VM, expect zero steady outage");
    s.arrivals.mode = "static";
    s.max_seconds = 4000;
    s.fixed_jobs.count = 8;
    s.fixed_jobs.size = 4;
    s.fixed_jobs.compute_time = 3000;
    s.fixed_jobs.rate_mean = 100;
    s.fixed_jobs.rho = 0;
    s.fixed_jobs.flow_seconds = 2000;
    s.admission.survivability = true;
    s.faults.policy = "switchover";
    ScriptedEventConfig fail;
    fail.time = 500;
    fail.vertex = -1;  // the machine hosting a VM of the first admitted job
    fail.kind = "machine";
    fail.fail = true;
    s.faults.scripted.push_back(fail);
    ScriptedEventConfig recover = fail;
    recover.time = 560;
    recover.fail = false;
    s.faults.scripted.push_back(recover);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("work_conserving",
                      "Statistical sharing headroom: hard-cap vs token-bucket "
                      "enforcement under SVC at load 0.7");
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.7;
    VariantConfig v = Variant("hard_cap", "svc");
    v.enforcement = "hard_cap";
    s.variants.push_back(v);
    v = Variant("token_bucket", "svc");
    v.enforcement = "token_bucket";
    s.variants.push_back(v);
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("flash_crowd",
                      "Admission under a flash crowd: a 4x-denser arrival "
                      "burst over the middle of the trace");
    s.arrivals.mode = "flash_crowd";
    s.arrivals.load = 0.6;
    s.variants.push_back(Variant("SVC", "svc"));
    s.variants.push_back(Variant("percentile-VC", "percentile_vc"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("diurnal",
                      "Admission under a sinusoidal diurnal arrival rate "
                      "(amplitude 0.8, period 20000 s)");
    s.arrivals.mode = "diurnal";
    s.arrivals.load = 0.6;
    s.variants.push_back(Variant("SVC", "svc"));
    s.variants.push_back(Variant("percentile-VC", "percentile_vc"));
    registry.push_back(std::move(s));
  }
  {
    Scenario s = Base("daemon_default",
                      "Small fabric svcd serves when started without "
                      "--scenario: 4 racks x 5 machines, SVC admission");
    s.topology.racks = 4;
    s.topology.machines_per_rack = 5;
    s.topology.racks_per_agg = 2;
    s.workload.num_jobs = 64;
    s.workload.mean_job_size = 8;
    s.workload.max_job_size = 16;
    s.workload.rate_means = {50, 100};
    s.arrivals.mode = "poisson";
    s.arrivals.load = 0.5;
    registry.push_back(std::move(s));
  }
  return registry;
}

const std::vector<Scenario>& Registry() {
  static const std::vector<Scenario>* kRegistry =
      new std::vector<Scenario>(BuildRegistry());
  return *kRegistry;
}

}  // namespace

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : Registry()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

const std::vector<std::string>& RegisteredScenarioNames() {
  static const std::vector<std::string>* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const Scenario& scenario : Registry()) {
      names->push_back(scenario.name);
    }
    return names;
  }();
  return *kNames;
}

}  // namespace svc::sim
