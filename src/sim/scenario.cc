#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "sim/fault_injector.h"
#include "sim/sweep_runner.h"
#include "svc/allocator_registry.h"
#include "svc/manager.h"
#include "util/json.h"
#include "util/json_reader.h"

namespace svc::sim {
namespace {

using util::ErrorCode;
using util::JsonValue;
using util::JsonWriter;
using util::Status;

Status Err(const std::string& path, const std::string& what) {
  return Status(ErrorCode::kInvalidArgument, path + ": " + what);
}

// --- Token tables (scenario JSON spellings of the library enums) ---

bool ParseAbstractionToken(const std::string& token,
                           workload::Abstraction* out) {
  if (token == "svc") *out = workload::Abstraction::kSvc;
  else if (token == "mean_vc") *out = workload::Abstraction::kMeanVc;
  else if (token == "percentile_vc") *out = workload::Abstraction::kPercentileVc;
  else return false;
  return true;
}

bool ParseEnforcementToken(const std::string& token, Enforcement* out) {
  if (token == "hard_cap") *out = Enforcement::kHardCap;
  else if (token == "token_bucket") *out = Enforcement::kTokenBucket;
  else return false;
  return true;
}

bool ParseDistributionToken(const std::string& token,
                            workload::RateDistribution* out) {
  if (token == "normal") *out = workload::RateDistribution::kNormal;
  else if (token == "lognormal") *out = workload::RateDistribution::kLogNormal;
  else return false;
  return true;
}

const char* DistributionToken(workload::RateDistribution distribution) {
  return distribution == workload::RateDistribution::kLogNormal ? "lognormal"
                                                                : "normal";
}

bool ValidArrivalMode(const std::string& mode) {
  return mode == "batch" || mode == "poisson" || mode == "static" ||
         mode == "flash_crowd" || mode == "diurnal";
}

bool ValidSweepParameter(const std::string& parameter) {
  return parameter.empty() || parameter == "load" || parameter == "oversub" ||
         parameter == "rho" || parameter == "epsilon" ||
         parameter == "trunk" || parameter == "quantile" ||
         parameter == "mtbf";
}

bool ValidScriptedKind(const std::string& kind) {
  return kind == "machine" || kind == "link";
}

bool ValidCorrelatedKind(const std::string& kind) {
  return kind == "rack_power" || kind == "tor_loss" ||
         kind == "planned_drain";
}

// --- Checked JsonValue readers ---

bool ReadDouble(const JsonValue& v, double* out) {
  if (!v.is_number()) return false;
  *out = v.AsDouble();
  return true;
}

bool ReadInt(const JsonValue& v, int* out) {
  if (!v.is_number()) return false;
  const double d = v.AsDouble();
  if (d != std::floor(d) || std::abs(d) > 2147483647.0) return false;
  *out = static_cast<int>(d);
  return true;
}

bool ReadInt64(const JsonValue& v, int64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.AsDouble();
  if (d != std::floor(d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

bool ReadUint64(const JsonValue& v, uint64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.AsDouble();
  if (d != std::floor(d) || d < 0) return false;
  *out = static_cast<uint64_t>(d);
  return true;
}

bool ReadBool(const JsonValue& v, bool* out) {
  if (!v.is_bool()) return false;
  *out = v.AsBool();
  return true;
}

bool ReadString(const JsonValue& v, std::string* out) {
  if (!v.is_string()) return false;
  *out = v.AsString();
  return true;
}

bool ReadDoubleList(const JsonValue& v, std::vector<double>* out) {
  if (!v.is_array()) return false;
  out->clear();
  for (const JsonValue& item : v.items()) {
    if (!item.is_number()) return false;
    out->push_back(item.AsDouble());
  }
  return true;
}

// --- Section parsers (strict: unknown keys are errors) ---

Status ParseTopologySection(const JsonValue& v, const std::string& path,
                            topology::ThreeTierConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "racks") {
      if (!ReadInt(val, &out->racks)) return Err(path + ".racks", "expected integer");
    } else if (key == "machines_per_rack") {
      if (!ReadInt(val, &out->machines_per_rack)) return Err(path + ".machines_per_rack", "expected integer");
    } else if (key == "slots_per_machine") {
      if (!ReadInt(val, &out->slots_per_machine)) return Err(path + ".slots_per_machine", "expected integer");
    } else if (key == "racks_per_agg") {
      if (!ReadInt(val, &out->racks_per_agg)) return Err(path + ".racks_per_agg", "expected integer");
    } else if (key == "machine_link_mbps") {
      if (!ReadDouble(val, &out->machine_link_mbps)) return Err(path + ".machine_link_mbps", "expected number");
    } else if (key == "oversubscription") {
      if (!ReadDouble(val, &out->oversubscription)) return Err(path + ".oversubscription", "expected number");
    } else if (key == "tor_trunk") {
      if (!ReadInt(val, &out->tor_trunk)) return Err(path + ".tor_trunk", "expected integer");
    } else if (key == "agg_trunk") {
      if (!ReadInt(val, &out->agg_trunk)) return Err(path + ".agg_trunk", "expected integer");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseWorkloadSection(const JsonValue& v, const std::string& path,
                            workload::WorkloadConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "num_jobs") {
      if (!ReadInt(val, &out->num_jobs)) return Err(path + ".num_jobs", "expected integer");
    } else if (key == "mean_job_size") {
      if (!ReadDouble(val, &out->mean_job_size)) return Err(path + ".mean_job_size", "expected number");
    } else if (key == "min_job_size") {
      if (!ReadInt(val, &out->min_job_size)) return Err(path + ".min_job_size", "expected integer");
    } else if (key == "max_job_size") {
      if (!ReadInt(val, &out->max_job_size)) return Err(path + ".max_job_size", "expected integer");
    } else if (key == "compute_time_lo") {
      if (!ReadDouble(val, &out->compute_time_lo)) return Err(path + ".compute_time_lo", "expected number");
    } else if (key == "compute_time_hi") {
      if (!ReadDouble(val, &out->compute_time_hi)) return Err(path + ".compute_time_hi", "expected number");
    } else if (key == "rate_means") {
      if (!ReadDoubleList(val, &out->rate_means)) return Err(path + ".rate_means", "expected array of numbers");
    } else if (key == "deviation_lo") {
      if (!ReadDouble(val, &out->deviation_lo)) return Err(path + ".deviation_lo", "expected number");
    } else if (key == "deviation_hi") {
      if (!ReadDouble(val, &out->deviation_hi)) return Err(path + ".deviation_hi", "expected number");
    } else if (key == "fixed_deviation") {
      if (!ReadDouble(val, &out->fixed_deviation)) return Err(path + ".fixed_deviation", "expected number");
    } else if (key == "flow_time_lo") {
      if (!ReadDouble(val, &out->flow_time_lo)) return Err(path + ".flow_time_lo", "expected number");
    } else if (key == "flow_time_hi") {
      if (!ReadDouble(val, &out->flow_time_hi)) return Err(path + ".flow_time_hi", "expected number");
    } else if (key == "heterogeneous") {
      if (!ReadBool(val, &out->heterogeneous)) return Err(path + ".heterogeneous", "expected bool");
    } else if (key == "rate_distribution") {
      std::string token;
      if (!ReadString(val, &token) ||
          !ParseDistributionToken(token, &out->rate_distribution)) {
        return Err(path + ".rate_distribution", "expected \"normal\" or \"lognormal\"");
      }
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseArrivalsSection(const JsonValue& v, const std::string& path,
                            ArrivalConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "mode") {
      if (!ReadString(val, &out->mode)) return Err(path + ".mode", "expected string");
    } else if (key == "load") {
      if (!ReadDouble(val, &out->load)) return Err(path + ".load", "expected number");
    } else if (key == "burst_factor") {
      if (!ReadDouble(val, &out->burst_factor)) return Err(path + ".burst_factor", "expected number");
    } else if (key == "burst_start") {
      if (!ReadDouble(val, &out->burst_start)) return Err(path + ".burst_start", "expected number");
    } else if (key == "burst_length") {
      if (!ReadDouble(val, &out->burst_length)) return Err(path + ".burst_length", "expected number");
    } else if (key == "period_seconds") {
      if (!ReadDouble(val, &out->period_seconds)) return Err(path + ".period_seconds", "expected number");
    } else if (key == "amplitude") {
      if (!ReadDouble(val, &out->amplitude)) return Err(path + ".amplitude", "expected number");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseFixedJobsSection(const JsonValue& v, const std::string& path,
                             FixedJobConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "count") {
      if (!ReadInt(val, &out->count)) return Err(path + ".count", "expected integer");
    } else if (key == "size") {
      if (!ReadInt(val, &out->size)) return Err(path + ".size", "expected integer");
    } else if (key == "compute_time") {
      if (!ReadDouble(val, &out->compute_time)) return Err(path + ".compute_time", "expected number");
    } else if (key == "rate_mean") {
      if (!ReadDouble(val, &out->rate_mean)) return Err(path + ".rate_mean", "expected number");
    } else if (key == "rho") {
      if (!ReadDouble(val, &out->rho)) return Err(path + ".rho", "expected number");
    } else if (key == "flow_seconds") {
      if (!ReadDouble(val, &out->flow_seconds)) return Err(path + ".flow_seconds", "expected number");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseAdmissionSection(const JsonValue& v, const std::string& path,
                             AdmissionConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "abstraction") {
      if (!ReadString(val, &out->abstraction)) return Err(path + ".abstraction", "expected string");
    } else if (key == "allocator") {
      if (!ReadString(val, &out->allocator)) return Err(path + ".allocator", "expected string");
    } else if (key == "epsilon") {
      if (!ReadDouble(val, &out->epsilon)) return Err(path + ".epsilon", "expected number");
    } else if (key == "vc_quantile") {
      if (!ReadDouble(val, &out->vc_quantile)) return Err(path + ".vc_quantile", "expected number");
    } else if (key == "survivability") {
      if (!ReadBool(val, &out->survivability)) return Err(path + ".survivability", "expected bool");
    } else if (key == "workers") {
      if (!ReadInt(val, &out->workers)) return Err(path + ".workers", "expected integer");
    } else if (key == "shards") {
      if (!ReadInt(val, &out->shards)) return Err(path + ".shards", "expected integer");
    } else if (key == "window") {
      if (!ReadInt(val, &out->window)) return Err(path + ".window", "expected integer");
    } else if (key == "lookahead") {
      if (!ReadInt(val, &out->lookahead)) return Err(path + ".lookahead", "expected integer");
    } else if (key == "placement") {
      if (!ReadString(val, &out->placement)) return Err(path + ".placement", "expected string");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseEnforcementSection(const JsonValue& v, const std::string& path,
                               EnforcementConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "mode") {
      if (!ReadString(val, &out->mode)) return Err(path + ".mode", "expected string");
    } else if (key == "burst_seconds") {
      if (!ReadDouble(val, &out->burst_seconds)) return Err(path + ".burst_seconds", "expected number");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseScriptedEvent(const JsonValue& v, const std::string& path,
                          ScriptedEventConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "time") {
      if (!ReadDouble(val, &out->time)) return Err(path + ".time", "expected number");
    } else if (key == "vertex") {
      if (!ReadInt64(val, &out->vertex)) return Err(path + ".vertex", "expected integer");
    } else if (key == "kind") {
      if (!ReadString(val, &out->kind)) return Err(path + ".kind", "expected string");
    } else if (key == "fail") {
      if (!ReadBool(val, &out->fail)) return Err(path + ".fail", "expected bool");
    } else if (key == "drain") {
      if (!ReadBool(val, &out->drain)) return Err(path + ".drain", "expected bool");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseCorrelatedEvent(const JsonValue& v, const std::string& path,
                            CorrelatedEventConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "kind") {
      if (!ReadString(val, &out->kind)) return Err(path + ".kind", "expected string");
    } else if (key == "index") {
      if (!ReadInt(val, &out->index)) return Err(path + ".index", "expected integer");
    } else if (key == "time_frac") {
      if (!ReadDouble(val, &out->time_frac)) return Err(path + ".time_frac", "expected number");
    } else if (key == "outage_seconds") {
      if (!ReadDouble(val, &out->outage_seconds)) return Err(path + ".outage_seconds", "expected number");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseFaultsSection(const JsonValue& v, const std::string& path,
                          ScenarioFaultConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "machine_mtbf_seconds") {
      if (!ReadDouble(val, &out->machine_mtbf_seconds)) return Err(path + ".machine_mtbf_seconds", "expected number");
    } else if (key == "link_mtbf_seconds") {
      if (!ReadDouble(val, &out->link_mtbf_seconds)) return Err(path + ".link_mtbf_seconds", "expected number");
    } else if (key == "link_mtbf_factor") {
      if (!ReadDouble(val, &out->link_mtbf_factor)) return Err(path + ".link_mtbf_factor", "expected number");
    } else if (key == "mttr_seconds") {
      if (!ReadDouble(val, &out->mttr_seconds)) return Err(path + ".mttr_seconds", "expected number");
    } else if (key == "horizon_seconds") {
      if (!ReadDouble(val, &out->horizon_seconds)) return Err(path + ".horizon_seconds", "expected number");
    } else if (key == "seed") {
      if (!ReadUint64(val, &out->seed)) return Err(path + ".seed", "expected non-negative integer");
    } else if (key == "policy") {
      if (!ReadString(val, &out->policy)) return Err(path + ".policy", "expected string");
    } else if (key == "scripted") {
      if (!val.is_array()) return Err(path + ".scripted", "expected array");
      out->scripted.clear();
      for (size_t i = 0; i < val.items().size(); ++i) {
        ScriptedEventConfig event;
        Status status = ParseScriptedEvent(
            val.items()[i], path + ".scripted[" + std::to_string(i) + "]",
            &event);
        if (!status.ok()) return status;
        out->scripted.push_back(event);
      }
    } else if (key == "correlated") {
      if (!val.is_array()) return Err(path + ".correlated", "expected array");
      out->correlated.clear();
      for (size_t i = 0; i < val.items().size(); ++i) {
        CorrelatedEventConfig event;
        Status status = ParseCorrelatedEvent(
            val.items()[i], path + ".correlated[" + std::to_string(i) + "]",
            &event);
        if (!status.ok()) return status;
        out->correlated.push_back(event);
      }
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseSweepSection(const JsonValue& v, const std::string& path,
                         SweepConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "parameter") {
      if (!ReadString(val, &out->parameter)) return Err(path + ".parameter", "expected string");
    } else if (key == "values") {
      if (!ReadDoubleList(val, &out->values)) return Err(path + ".values", "expected array of numbers");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseVariant(const JsonValue& v, const std::string& path,
                    VariantConfig* out) {
  if (!v.is_object()) return Err(path, "expected object");
  for (const auto& [key, val] : v.members()) {
    if (key == "label") {
      if (!ReadString(val, &out->label)) return Err(path + ".label", "expected string");
    } else if (key == "abstraction") {
      if (!ReadString(val, &out->abstraction)) return Err(path + ".abstraction", "expected string");
    } else if (key == "allocator") {
      if (!ReadString(val, &out->allocator)) return Err(path + ".allocator", "expected string");
    } else if (key == "epsilon") {
      if (!ReadDouble(val, &out->epsilon)) return Err(path + ".epsilon", "expected number");
    } else if (key == "vc_quantile") {
      if (!ReadDouble(val, &out->vc_quantile)) return Err(path + ".vc_quantile", "expected number");
    } else if (key == "enforcement") {
      if (!ReadString(val, &out->enforcement)) return Err(path + ".enforcement", "expected string");
    } else if (key == "rate_distribution") {
      if (!ReadString(val, &out->rate_distribution)) return Err(path + ".rate_distribution", "expected string");
    } else if (key == "policy") {
      if (!ReadString(val, &out->policy)) return Err(path + ".policy", "expected string");
    } else if (key == "survivable") {
      if (!ReadInt(val, &out->survivable)) return Err(path + ".survivable", "expected integer (-1 / 0 / 1)");
    } else if (key == "once") {
      if (!ReadBool(val, &out->once)) return Err(path + ".once", "expected bool");
    } else {
      return Err(path, "unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

util::Result<Scenario> ParseScenario(const std::string& text) {
  util::Result<JsonValue> doc = util::ParseJson(text);
  if (!doc) return doc.status();
  const JsonValue& root = *doc;
  if (!root.is_object()) {
    return Err("scenario", "expected a JSON object at the top level");
  }
  Scenario s;
  for (const auto& [key, val] : root.members()) {
    Status status = Status::Ok();
    if (key == "name") {
      if (!ReadString(val, &s.name)) status = Err("scenario.name", "expected string");
    } else if (key == "description") {
      if (!ReadString(val, &s.description)) status = Err("scenario.description", "expected string");
    } else if (key == "seed") {
      if (!ReadUint64(val, &s.seed)) status = Err("scenario.seed", "expected non-negative integer");
    } else if (key == "max_seconds") {
      if (!ReadDouble(val, &s.max_seconds)) status = Err("scenario.max_seconds", "expected number");
    } else if (key == "topology") {
      status = ParseTopologySection(val, "scenario.topology", &s.topology);
    } else if (key == "workload") {
      status = ParseWorkloadSection(val, "scenario.workload", &s.workload);
    } else if (key == "arrivals") {
      status = ParseArrivalsSection(val, "scenario.arrivals", &s.arrivals);
    } else if (key == "fixed_jobs") {
      status = ParseFixedJobsSection(val, "scenario.fixed_jobs", &s.fixed_jobs);
    } else if (key == "admission") {
      status = ParseAdmissionSection(val, "scenario.admission", &s.admission);
    } else if (key == "enforcement") {
      status = ParseEnforcementSection(val, "scenario.enforcement", &s.enforcement);
    } else if (key == "faults") {
      status = ParseFaultsSection(val, "scenario.faults", &s.faults);
    } else if (key == "sweep") {
      status = ParseSweepSection(val, "scenario.sweep", &s.sweep);
    } else if (key == "variants") {
      if (!val.is_array()) {
        status = Err("scenario.variants", "expected array");
      } else {
        for (size_t i = 0; i < val.items().size(); ++i) {
          VariantConfig variant;
          status = ParseVariant(
              val.items()[i], "scenario.variants[" + std::to_string(i) + "]",
              &variant);
          if (!status.ok()) break;
          s.variants.push_back(std::move(variant));
        }
      }
    } else {
      status = Err("scenario", "unknown key '" + key + "'");
    }
    if (!status.ok()) return status;
  }
  Status status = ValidateScenario(s);
  if (!status.ok()) return status;
  return s;
}

std::string SerializeScenario(const Scenario& s) {
  JsonWriter w;
  w.BeginObject();
  w.Member("name", s.name);
  w.Member("description", s.description);
  w.Member("seed", s.seed);
  w.Member("max_seconds", s.max_seconds);

  w.Key("topology");
  w.BeginObject();
  w.Member("racks", s.topology.racks);
  w.Member("machines_per_rack", s.topology.machines_per_rack);
  w.Member("slots_per_machine", s.topology.slots_per_machine);
  w.Member("racks_per_agg", s.topology.racks_per_agg);
  w.Member("machine_link_mbps", s.topology.machine_link_mbps);
  w.Member("oversubscription", s.topology.oversubscription);
  w.Member("tor_trunk", s.topology.tor_trunk);
  w.Member("agg_trunk", s.topology.agg_trunk);
  w.EndObject();

  w.Key("workload");
  w.BeginObject();
  w.Member("num_jobs", s.workload.num_jobs);
  w.Member("mean_job_size", s.workload.mean_job_size);
  w.Member("min_job_size", s.workload.min_job_size);
  w.Member("max_job_size", s.workload.max_job_size);
  w.Member("compute_time_lo", s.workload.compute_time_lo);
  w.Member("compute_time_hi", s.workload.compute_time_hi);
  w.Key("rate_means");
  w.BeginArray();
  for (double rate : s.workload.rate_means) w.Value(rate);
  w.EndArray();
  w.Member("deviation_lo", s.workload.deviation_lo);
  w.Member("deviation_hi", s.workload.deviation_hi);
  w.Member("fixed_deviation", s.workload.fixed_deviation);
  w.Member("flow_time_lo", s.workload.flow_time_lo);
  w.Member("flow_time_hi", s.workload.flow_time_hi);
  w.Member("heterogeneous", s.workload.heterogeneous);
  w.Member("rate_distribution",
           DistributionToken(s.workload.rate_distribution));
  w.EndObject();

  w.Key("arrivals");
  w.BeginObject();
  w.Member("mode", s.arrivals.mode);
  w.Member("load", s.arrivals.load);
  w.Member("burst_factor", s.arrivals.burst_factor);
  w.Member("burst_start", s.arrivals.burst_start);
  w.Member("burst_length", s.arrivals.burst_length);
  w.Member("period_seconds", s.arrivals.period_seconds);
  w.Member("amplitude", s.arrivals.amplitude);
  w.EndObject();

  w.Key("fixed_jobs");
  w.BeginObject();
  w.Member("count", s.fixed_jobs.count);
  w.Member("size", s.fixed_jobs.size);
  w.Member("compute_time", s.fixed_jobs.compute_time);
  w.Member("rate_mean", s.fixed_jobs.rate_mean);
  w.Member("rho", s.fixed_jobs.rho);
  w.Member("flow_seconds", s.fixed_jobs.flow_seconds);
  w.EndObject();

  w.Key("admission");
  w.BeginObject();
  w.Member("abstraction", s.admission.abstraction);
  w.Member("allocator", s.admission.allocator);
  w.Member("epsilon", s.admission.epsilon);
  w.Member("vc_quantile", s.admission.vc_quantile);
  w.Member("survivability", s.admission.survivability);
  w.Member("workers", s.admission.workers);
  w.Member("shards", s.admission.shards);
  w.Member("window", s.admission.window);
  w.Member("lookahead", s.admission.lookahead);
  w.Member("placement", s.admission.placement);
  w.EndObject();

  w.Key("enforcement");
  w.BeginObject();
  w.Member("mode", s.enforcement.mode);
  w.Member("burst_seconds", s.enforcement.burst_seconds);
  w.EndObject();

  w.Key("faults");
  w.BeginObject();
  w.Member("machine_mtbf_seconds", s.faults.machine_mtbf_seconds);
  w.Member("link_mtbf_seconds", s.faults.link_mtbf_seconds);
  w.Member("link_mtbf_factor", s.faults.link_mtbf_factor);
  w.Member("mttr_seconds", s.faults.mttr_seconds);
  w.Member("horizon_seconds", s.faults.horizon_seconds);
  w.Member("seed", s.faults.seed);
  w.Member("policy", s.faults.policy);
  w.Key("scripted");
  w.BeginArray();
  for (const ScriptedEventConfig& event : s.faults.scripted) {
    w.BeginObject();
    w.Member("time", event.time);
    w.Member("vertex", event.vertex);
    w.Member("kind", event.kind);
    w.Member("fail", event.fail);
    w.Member("drain", event.drain);
    w.EndObject();
  }
  w.EndArray();
  w.Key("correlated");
  w.BeginArray();
  for (const CorrelatedEventConfig& event : s.faults.correlated) {
    w.BeginObject();
    w.Member("kind", event.kind);
    w.Member("index", event.index);
    w.Member("time_frac", event.time_frac);
    w.Member("outage_seconds", event.outage_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("sweep");
  w.BeginObject();
  w.Member("parameter", s.sweep.parameter);
  w.Key("values");
  w.BeginArray();
  for (double value : s.sweep.values) w.Value(value);
  w.EndArray();
  w.EndObject();

  w.Key("variants");
  w.BeginArray();
  for (const VariantConfig& variant : s.variants) {
    w.BeginObject();
    w.Member("label", variant.label);
    w.Member("abstraction", variant.abstraction);
    w.Member("allocator", variant.allocator);
    w.Member("epsilon", variant.epsilon);
    w.Member("vc_quantile", variant.vc_quantile);
    w.Member("enforcement", variant.enforcement);
    w.Member("rate_distribution", variant.rate_distribution);
    w.Member("policy", variant.policy);
    w.Member("survivable", variant.survivable);
    w.Member("once", variant.once);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str() + "\n";
}

std::string ScenarioConfigHash(const Scenario& scenario) {
  const std::string text = SerializeScenario(scenario);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a 64 prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

namespace {

// Resolved per-variant admission knobs (inheritance applied).
struct ResolvedVariant {
  workload::Abstraction abstraction = workload::Abstraction::kSvc;
  std::string allocator;
  Enforcement enforcement = Enforcement::kHardCap;
  core::RecoveryPolicy policy = core::RecoveryPolicy::kReallocate;
  bool survivable = false;
};

// The allocator name a variant resolves to: explicit wins, otherwise the
// abstraction's default (the paper's Algorithm 1 for SVC, Oktopus for the
// deterministic VCs) — the AllocatorFor() rule the benches used.
std::string DefaultAllocatorName(workload::Abstraction abstraction) {
  return abstraction == workload::Abstraction::kSvc ? "svc-dp" : "oktopus";
}

Status ResolveVariant(const Scenario& s, const VariantConfig& v,
                      ResolvedVariant* out) {
  const std::string abstraction_token =
      v.abstraction.empty() ? s.admission.abstraction : v.abstraction;
  if (!ParseAbstractionToken(abstraction_token, &out->abstraction)) {
    return Err("variant '" + v.label + "'",
               "unknown abstraction '" + abstraction_token + "'");
  }
  out->allocator = !v.allocator.empty() ? v.allocator
                   : !s.admission.allocator.empty()
                       ? s.admission.allocator
                       : DefaultAllocatorName(out->abstraction);
  const std::string enforcement_token =
      v.enforcement.empty() ? s.enforcement.mode : v.enforcement;
  if (!ParseEnforcementToken(enforcement_token, &out->enforcement)) {
    return Err("variant '" + v.label + "'",
               "unknown enforcement '" + enforcement_token + "'");
  }
  const std::string policy_token = v.policy.empty() ? s.faults.policy : v.policy;
  if (!core::ParseRecoveryPolicy(policy_token, &out->policy)) {
    return Err("variant '" + v.label + "'",
               "unknown recovery policy '" + policy_token + "'");
  }
  out->survivable =
      v.survivable >= 0 ? v.survivable != 0 : s.admission.survivability;
  return Status::Ok();
}

// The variant list the grid actually runs: the scenario's, or one default
// column inheriting everything when none are declared.
std::vector<VariantConfig> EffectiveVariants(const Scenario& s) {
  if (!s.variants.empty()) return s.variants;
  VariantConfig variant;
  variant.label = "default";
  return {variant};
}

// The n-th ToR (level-1 vertex), clamped into range; kNoVertex on an
// empty fabric.
topology::VertexId TorAt(const topology::Topology& topo, int index) {
  const auto& tors = topo.vertices_at_level(1);
  if (tors.empty()) return topology::kNoVertex;
  const size_t i = std::min<size_t>(std::max(index, 0), tors.size() - 1);
  return tors[i];
}

topology::VertexId MachineAt(const topology::Topology& topo, int index) {
  const auto& machines = topo.machines();
  if (machines.empty()) return topology::kNoVertex;
  const size_t i = std::min<size_t>(std::max(index, 0), machines.size() - 1);
  return machines[i];
}

// Deterministic probe pass for scripted `vertex: -1` events: the first
// machine hosting a VM of the first admissible job.  Admissions are
// deterministic, so the engine reproduces these placements.
topology::VertexId AutoTarget(const topology::Topology& topo,
                              const std::vector<workload::JobSpec>& jobs,
                              workload::Abstraction abstraction,
                              double vc_quantile, double epsilon,
                              bool survivability,
                              const core::Allocator& allocator) {
  core::NetworkManager probe(topo, epsilon);
  core::AdmissionOptions options;
  options.survivability = survivability;
  probe.set_admission_options(options);
  for (const workload::JobSpec& job : jobs) {
    auto placed = probe.Admit(
        workload::MakeRequest(job, abstraction, vc_quantile), allocator);
    if (placed) return placed->vm_machine[0];
  }
  return topology::kNoVertex;
}

struct CellSpec {
  VariantConfig variant;
  int axis_index = -1;
  double axis_value = 0;
};

// Axis-major over the non-`once` variants (declaration order inside an
// axis point), then the `once` variants — matching the legacy benches'
// submission order, which keeps decision-provenance streams identical.
std::vector<CellSpec> EnumerateCells(const Scenario& s) {
  const std::vector<VariantConfig> variants = EffectiveVariants(s);
  std::vector<CellSpec> cells;
  if (!s.sweep.parameter.empty()) {
    for (size_t i = 0; i < s.sweep.values.size(); ++i) {
      for (const VariantConfig& variant : variants) {
        if (variant.once) continue;
        cells.push_back({variant, static_cast<int>(i), s.sweep.values[i]});
      }
    }
  }
  for (const VariantConfig& variant : variants) {
    if (s.sweep.parameter.empty() || variant.once) {
      cells.push_back({variant, -1, 0});
    }
  }
  return cells;
}

std::vector<workload::JobSpec> BuildFixedJobs(const FixedJobConfig& config) {
  std::vector<workload::JobSpec> jobs;
  for (int i = 0; i < config.count; ++i) {
    workload::JobSpec job;
    job.id = i + 1;
    job.size = config.size;
    job.compute_time = config.compute_time;
    job.rate_mean = config.rate_mean;
    job.rate_stddev = config.rho * config.rate_mean;
    job.flow_mbits = config.rate_mean * config.flow_seconds;
    job.arrival_time = 0;
    jobs.push_back(job);
  }
  return jobs;
}

// The fully resolved fault plane of one cell.
FaultConfig BuildCellFaults(const Scenario& s, const CellSpec& spec,
                            const ResolvedVariant& resolved,
                            const topology::Topology& topo,
                            double vc_quantile, double epsilon,
                            const std::vector<workload::JobSpec>& jobs,
                            const core::Allocator& allocator) {
  const ScenarioFaultConfig& sf = s.faults;
  FaultConfig f;
  f.machine_mtbf_seconds = sf.machine_mtbf_seconds;
  if (s.sweep.parameter == "mtbf" && spec.axis_index >= 0) {
    f.machine_mtbf_seconds = spec.axis_value;
  }
  f.link_mtbf_seconds = sf.link_mtbf_factor > 0
                            ? sf.link_mtbf_factor * f.machine_mtbf_seconds
                            : sf.link_mtbf_seconds;
  f.mttr_seconds = sf.mttr_seconds;
  f.horizon_seconds = sf.horizon_seconds;
  f.seed = sf.seed;
  f.policy = resolved.policy;
  // Scripted one-shots; vertex -1 resolves to the probe target (if no job
  // is admissible on an empty fabric — which validation rejects for the
  // base config — the unresolvable event is dropped).
  const bool needs_target = std::any_of(
      sf.scripted.begin(), sf.scripted.end(),
      [](const ScriptedEventConfig& e) { return e.vertex < 0; });
  topology::VertexId target = topology::kNoVertex;
  if (needs_target) {
    target = AutoTarget(topo, jobs, resolved.abstraction, vc_quantile,
                        epsilon, resolved.survivable, allocator);
  }
  for (const ScriptedEventConfig& e : sf.scripted) {
    topology::VertexId vertex =
        e.vertex < 0 ? target : static_cast<topology::VertexId>(e.vertex);
    if (vertex == topology::kNoVertex) continue;
    FaultEvent event;
    event.time = e.time;
    event.vertex = vertex;
    event.kind =
        e.kind == "link" ? core::FaultKind::kLink : core::FaultKind::kMachine;
    event.fail = e.fail;
    event.drain = e.drain;
    f.scripted.push_back(event);
  }
  for (const CorrelatedEventConfig& c : sf.correlated) {
    const double time = c.time_frac * f.horizon_seconds;
    const double outage =
        c.outage_seconds < 0 ? f.mttr_seconds : c.outage_seconds;
    if (c.kind == "rack_power") {
      const topology::VertexId rack = TorAt(topo, c.index);
      if (rack != topology::kNoVertex) {
        AppendRackPowerEvent(topo, rack, time, outage, &f.scripted);
      }
    } else if (c.kind == "tor_loss") {
      const topology::VertexId rack = TorAt(topo, c.index);
      if (rack != topology::kNoVertex) {
        AppendTorLossEvent(rack, time, outage, &f.scripted);
      }
    } else {
      const topology::VertexId machine = MachineAt(topo, c.index);
      if (machine != topology::kNoVertex) {
        AppendPlannedDrain(machine, time, outage, &f.scripted);
      }
    }
  }
  return f;
}

// Runs one grid cell: rebuilds topology, workload, and engine from the
// scenario's fixed seeds (bit-identical to the bespoke benches).
ScenarioCell RunCell(const Scenario& s, const CellSpec& spec,
                     const ResolvedVariant& resolved,
                     const core::Allocator& allocator,
                     const ScenarioRunOptions& options) {
  const std::string& axis = s.sweep.parameter;
  const bool on_axis = spec.axis_index >= 0;

  topology::ThreeTierConfig tconfig = s.topology;
  if (on_axis && axis == "oversub") tconfig.oversubscription = spec.axis_value;
  if (on_axis && axis == "trunk") {
    tconfig.tor_trunk = static_cast<int>(spec.axis_value);
    tconfig.agg_trunk = static_cast<int>(spec.axis_value);
  }
  const topology::Topology topo = topology::BuildThreeTier(tconfig);

  workload::WorkloadConfig wconfig = s.workload;
  if (on_axis && axis == "rho") wconfig.fixed_deviation = spec.axis_value;
  if (!spec.variant.rate_distribution.empty()) {
    ParseDistributionToken(spec.variant.rate_distribution,
                           &wconfig.rate_distribution);
  }

  double load = s.arrivals.load;
  if (on_axis && axis == "load") load = spec.axis_value;

  double epsilon = s.admission.epsilon;
  if (on_axis && axis == "epsilon") epsilon = spec.axis_value;
  if (spec.variant.epsilon >= 0) epsilon = spec.variant.epsilon;

  double vc_quantile = s.admission.vc_quantile;
  if (on_axis && axis == "quantile") vc_quantile = spec.axis_value;
  if (spec.variant.vc_quantile >= 0) vc_quantile = spec.variant.vc_quantile;

  const bool online = s.arrivals.mode != "batch";
  std::vector<workload::JobSpec> jobs;
  if (s.fixed_jobs.count > 0) {
    jobs = BuildFixedJobs(s.fixed_jobs);
  } else {
    workload::WorkloadGenerator gen(wconfig, s.seed);
    jobs = online ? gen.GenerateOnline(load, topo.total_slots())
                  : gen.GenerateBatch();
    ArrivalConfig arrivals = s.arrivals;
    arrivals.load = load;
    ShapeArrivals(arrivals, &jobs);
  }

  SimConfig config;
  config.abstraction = resolved.abstraction;
  config.allocator = &allocator;
  config.epsilon = epsilon;
  config.vc_quantile = vc_quantile;
  config.seed = s.seed + 1;
  config.max_seconds = s.max_seconds;
  config.admission.survivability = resolved.survivable;
  config.admission_workers = s.admission.workers;
  config.admission_shards = s.admission.shards;
  config.admission_window = s.admission.window;
  config.admission_lookahead = s.admission.lookahead;
  util::ParsePlacementPolicy(s.admission.placement, &config.placement);
  config.sample_occupancy = online;
  config.enforcement = resolved.enforcement;
  config.burst_seconds = s.enforcement.burst_seconds;
  config.series = options.series;
  config.series_period = options.series_period;
  config.faults = BuildCellFaults(s, spec, resolved, topo, vc_quantile,
                                  epsilon, jobs, allocator);

  ScenarioCell cell;
  cell.label = spec.variant.label;
  cell.axis_index = spec.axis_index;
  cell.axis_value = spec.axis_value;
  cell.online = online;
  Engine engine(topo, config);
  if (online) {
    cell.online_result = engine.RunOnline(std::move(jobs));
  } else {
    cell.batch = engine.RunBatch(jobs);
  }
  return cell;
}

}  // namespace

void ShapeArrivals(const ArrivalConfig& arrivals,
                   std::vector<workload::JobSpec>* jobs) {
  if (jobs->empty()) return;
  if (arrivals.mode == "flash_crowd") {
    // Piecewise-linear time warp: arrivals inside the window
    // [burst_start, burst_start + burst_length) (fractions of the original
    // arrival span) are compressed by burst_factor; the tail shifts left
    // to keep the map continuous.  Order-, count-, and payload-preserving.
    const double span = jobs->back().arrival_time;
    if (span <= 0 || arrivals.burst_factor <= 1) return;
    const double b0 = arrivals.burst_start * span;
    const double b1 = (arrivals.burst_start + arrivals.burst_length) * span;
    const double k = arrivals.burst_factor;
    for (workload::JobSpec& job : *jobs) {
      const double t = job.arrival_time;
      if (t <= b0) continue;
      if (t < b1) {
        job.arrival_time = b0 + (t - b0) / k;
      } else {
        job.arrival_time = t - (b1 - b0) * (1 - 1 / k);
      }
    }
  } else if (arrivals.mode == "diurnal") {
    // Inverse-CDF warp onto lambda(t) = lambda * (1 + a*sin(2*pi*t/P)):
    // solve Lambda(t) = s with Lambda(t) = t + (a*P/2pi)*(1 - cos(2pi*t/P))
    // by bisection (Lambda is strictly increasing for a < 1).
    const double a = arrivals.amplitude;
    const double period = arrivals.period_seconds;
    if (a <= 0 || a >= 1 || period <= 0) return;
    const double c = a * period / (2 * M_PI);
    auto cumulative = [&](double t) {
      return t + c * (1 - std::cos(2 * M_PI * t / period));
    };
    for (workload::JobSpec& job : *jobs) {
      const double s = job.arrival_time;
      double lo = std::max(0.0, s - 2 * c);
      double hi = s;
      for (int iteration = 0; iteration < 64; ++iteration) {
        const double mid = 0.5 * (lo + hi);
        if (cumulative(mid) < s) lo = mid;
        else hi = mid;
      }
      job.arrival_time = 0.5 * (lo + hi);
    }
  }
  // batch / poisson / static: arrivals are used as generated.
}

util::Status ValidateScenario(const Scenario& s) {
  if (s.name.empty()) return Err("scenario.name", "must be non-empty");
  if (s.max_seconds <= 0) return Err("scenario.max_seconds", "must be > 0");

  const topology::ThreeTierConfig& t = s.topology;
  if (t.racks <= 0) return Err("scenario.topology.racks", "must be > 0");
  if (t.machines_per_rack <= 0) return Err("scenario.topology.machines_per_rack", "must be > 0");
  if (t.slots_per_machine <= 0) return Err("scenario.topology.slots_per_machine", "must be > 0");
  if (t.racks_per_agg <= 0) return Err("scenario.topology.racks_per_agg", "must be > 0");
  if (t.racks % t.racks_per_agg != 0) {
    return Err("scenario.topology.racks_per_agg",
               "must divide racks (" + std::to_string(t.racks) + ")");
  }
  if (t.machine_link_mbps <= 0) return Err("scenario.topology.machine_link_mbps", "must be > 0");
  if (t.oversubscription <= 0) return Err("scenario.topology.oversubscription", "must be > 0");
  if (t.tor_trunk < 1 || t.agg_trunk < 1) {
    return Err("scenario.topology", "trunk widths must be >= 1");
  }

  const workload::WorkloadConfig& wl = s.workload;
  if (wl.num_jobs < 0) return Err("scenario.workload.num_jobs", "must be >= 0");
  if (wl.mean_job_size <= 0) return Err("scenario.workload.mean_job_size", "must be > 0");
  if (wl.min_job_size < 1) return Err("scenario.workload.min_job_size", "must be >= 1");
  if (wl.max_job_size < wl.min_job_size) {
    return Err("scenario.workload.max_job_size", "must be >= min_job_size");
  }
  if (wl.rate_means.empty()) return Err("scenario.workload.rate_means", "must be non-empty");
  for (double rate : wl.rate_means) {
    if (rate <= 0) return Err("scenario.workload.rate_means", "entries must be > 0");
  }
  if (wl.compute_time_lo <= 0 || wl.compute_time_hi < wl.compute_time_lo) {
    return Err("scenario.workload", "compute_time_lo/hi must satisfy 0 < lo <= hi");
  }
  if (wl.flow_time_lo <= 0 || wl.flow_time_hi < wl.flow_time_lo) {
    return Err("scenario.workload", "flow_time_lo/hi must satisfy 0 < lo <= hi");
  }

  if (!ValidArrivalMode(s.arrivals.mode)) {
    return Err("scenario.arrivals.mode",
               "must be batch | poisson | static | flash_crowd | diurnal");
  }
  if (s.arrivals.mode != "batch" && s.arrivals.load <= 0) {
    return Err("scenario.arrivals.load", "must be > 0 for online modes");
  }
  if (s.arrivals.mode == "flash_crowd") {
    if (s.arrivals.burst_factor < 1) {
      return Err("scenario.arrivals.burst_factor", "must be >= 1");
    }
    if (s.arrivals.burst_start < 0 || s.arrivals.burst_length < 0 ||
        s.arrivals.burst_start + s.arrivals.burst_length > 1) {
      return Err("scenario.arrivals",
                 "burst window must fit in [0, 1] fractions of the span");
    }
  }
  if (s.arrivals.mode == "diurnal") {
    if (s.arrivals.amplitude < 0 || s.arrivals.amplitude >= 1) {
      return Err("scenario.arrivals.amplitude", "must be in [0, 1)");
    }
    if (s.arrivals.period_seconds <= 0) {
      return Err("scenario.arrivals.period_seconds", "must be > 0");
    }
  }
  if (s.arrivals.mode == "static" && s.fixed_jobs.count <= 0) {
    return Err("scenario.arrivals.mode",
               "static arrivals require fixed_jobs.count > 0");
  }

  const FixedJobConfig& fj = s.fixed_jobs;
  if (fj.count < 0) return Err("scenario.fixed_jobs.count", "must be >= 0");
  if (fj.count > 0) {
    if (fj.size < 2) return Err("scenario.fixed_jobs.size", "must be >= 2");
    if (fj.compute_time <= 0) return Err("scenario.fixed_jobs.compute_time", "must be > 0");
    if (fj.rate_mean <= 0) return Err("scenario.fixed_jobs.rate_mean", "must be > 0");
    if (fj.rho < 0) return Err("scenario.fixed_jobs.rho", "must be >= 0");
    if (fj.flow_seconds <= 0) return Err("scenario.fixed_jobs.flow_seconds", "must be > 0");
  }

  const AdmissionConfig& adm = s.admission;
  workload::Abstraction abstraction;
  if (!ParseAbstractionToken(adm.abstraction, &abstraction)) {
    return Err("scenario.admission.abstraction",
               "must be svc | mean_vc | percentile_vc");
  }
  if (!adm.allocator.empty() &&
      core::MakeAllocatorByName(adm.allocator) == nullptr) {
    return Err("scenario.admission.allocator",
               "unknown allocator '" + adm.allocator + "' (known: " +
                   core::KnownAllocatorNamesText() + ")");
  }
  if (adm.epsilon <= 0 || adm.epsilon >= 1) {
    return Err("scenario.admission.epsilon", "must be in (0, 1)");
  }
  if (adm.vc_quantile <= 0 || adm.vc_quantile >= 1) {
    return Err("scenario.admission.vc_quantile", "must be in (0, 1)");
  }
  if (adm.workers < 0) return Err("scenario.admission.workers", "must be >= 0");
  if (adm.shards < 0) return Err("scenario.admission.shards", "must be >= 0");
  if (adm.window < 1) return Err("scenario.admission.window", "must be >= 1");
  if (adm.lookahead < 1) return Err("scenario.admission.lookahead", "must be >= 1");
  util::PlacementPolicy placement;
  if (!util::ParsePlacementPolicy(adm.placement, &placement)) {
    return Err("scenario.admission.placement",
               "must be none | compact | scatter | shard_node");
  }

  Enforcement enforcement;
  if (!ParseEnforcementToken(s.enforcement.mode, &enforcement)) {
    return Err("scenario.enforcement.mode", "must be hard_cap | token_bucket");
  }
  if (s.enforcement.burst_seconds <= 0) {
    return Err("scenario.enforcement.burst_seconds", "must be > 0");
  }

  const ScenarioFaultConfig& f = s.faults;
  if (f.machine_mtbf_seconds < 0 || f.link_mtbf_seconds < 0 ||
      f.link_mtbf_factor < 0 || f.mttr_seconds < 0 || f.horizon_seconds < 0) {
    return Err("scenario.faults", "rates and horizons must be >= 0");
  }
  core::RecoveryPolicy policy;
  if (!core::ParseRecoveryPolicy(f.policy, &policy)) {
    return Err("scenario.faults.policy",
               "must be reallocate | patch | evict | switchover");
  }
  for (size_t i = 0; i < f.scripted.size(); ++i) {
    if (!ValidScriptedKind(f.scripted[i].kind)) {
      return Err("scenario.faults.scripted[" + std::to_string(i) + "].kind",
                 "must be machine | link");
    }
    if (f.scripted[i].time < 0) {
      return Err("scenario.faults.scripted[" + std::to_string(i) + "].time",
                 "must be >= 0");
    }
  }
  for (size_t i = 0; i < f.correlated.size(); ++i) {
    const CorrelatedEventConfig& c = f.correlated[i];
    if (!ValidCorrelatedKind(c.kind)) {
      return Err("scenario.faults.correlated[" + std::to_string(i) + "].kind",
                 "must be rack_power | tor_loss | planned_drain");
    }
    if (c.index < 0) {
      return Err("scenario.faults.correlated[" + std::to_string(i) + "].index",
                 "must be >= 0");
    }
    if (c.time_frac < 0 || c.time_frac > 1) {
      return Err("scenario.faults.correlated[" + std::to_string(i) +
                     "].time_frac",
                 "must be in [0, 1]");
    }
  }

  if (!ValidSweepParameter(s.sweep.parameter)) {
    return Err("scenario.sweep.parameter",
               "must be one of: load oversub rho epsilon trunk quantile mtbf "
               "(or empty)");
  }
  if (!s.sweep.parameter.empty() && s.sweep.values.empty()) {
    return Err("scenario.sweep.values",
               "must be non-empty when a parameter is set");
  }
  for (double value : s.sweep.values) {
    if (s.sweep.parameter == "trunk" &&
        (value < 1 || value != std::floor(value))) {
      return Err("scenario.sweep.values", "trunk widths must be integers >= 1");
    }
    if ((s.sweep.parameter == "epsilon" || s.sweep.parameter == "quantile") &&
        (value <= 0 || value >= 1)) {
      return Err("scenario.sweep.values",
                 s.sweep.parameter + " values must be in (0, 1)");
    }
    if ((s.sweep.parameter == "load" || s.sweep.parameter == "oversub" ||
         s.sweep.parameter == "mtbf") &&
        value <= 0) {
      return Err("scenario.sweep.values",
                 s.sweep.parameter + " values must be > 0");
    }
    if (s.sweep.parameter == "rho" && value < 0) {
      return Err("scenario.sweep.values", "rho values must be >= 0");
    }
  }

  std::set<std::string> labels;
  for (size_t i = 0; i < s.variants.size(); ++i) {
    const VariantConfig& v = s.variants[i];
    const std::string path = "scenario.variants[" + std::to_string(i) + "]";
    if (v.label.empty()) return Err(path + ".label", "must be non-empty");
    if (!labels.insert(v.label).second) {
      return Err(path + ".label", "duplicate label '" + v.label + "'");
    }
    ResolvedVariant resolved;
    Status status = ResolveVariant(s, v, &resolved);
    if (!status.ok()) return status;
    if (core::MakeAllocatorByName(resolved.allocator) == nullptr) {
      return Err(path + ".allocator",
                 "unknown allocator '" + resolved.allocator + "' (known: " +
                     core::KnownAllocatorNamesText() + ")");
    }
    if (v.epsilon >= 0 && (v.epsilon <= 0 || v.epsilon >= 1)) {
      return Err(path + ".epsilon", "must be in (0, 1) or -1 to inherit");
    }
    if (v.vc_quantile >= 0 && (v.vc_quantile <= 0 || v.vc_quantile >= 1)) {
      return Err(path + ".vc_quantile", "must be in (0, 1) or -1 to inherit");
    }
    if (v.survivable < -1 || v.survivable > 1) {
      return Err(path + ".survivable", "must be -1 (inherit), 0, or 1");
    }
    if (!v.rate_distribution.empty()) {
      workload::RateDistribution distribution;
      if (!ParseDistributionToken(v.rate_distribution, &distribution)) {
        return Err(path + ".rate_distribution",
                   "must be normal | lognormal (or empty)");
      }
    }
  }

  // The fault plane validated against the scenario's own fabric, with
  // auto-target (-1) events standing in for the first machine — the probe
  // replaces them with a real VM host per cell.
  if (f.machine_mtbf_seconds > 0 || f.link_mtbf_seconds > 0 ||
      f.link_mtbf_factor > 0 || !f.scripted.empty() || !f.correlated.empty()) {
    const topology::Topology topo = topology::BuildThreeTier(s.topology);
    FaultConfig resolved;
    resolved.machine_mtbf_seconds = f.machine_mtbf_seconds;
    resolved.link_mtbf_seconds =
        f.link_mtbf_factor > 0 ? f.link_mtbf_factor * f.machine_mtbf_seconds
                               : f.link_mtbf_seconds;
    resolved.mttr_seconds = f.mttr_seconds;
    resolved.horizon_seconds = f.horizon_seconds;
    resolved.seed = f.seed;
    resolved.policy = policy;
    for (const ScriptedEventConfig& e : f.scripted) {
      FaultEvent event;
      event.time = e.time;
      event.vertex = e.vertex < 0 ? MachineAt(topo, 0)
                                  : static_cast<topology::VertexId>(e.vertex);
      event.kind = e.kind == "link" ? core::FaultKind::kLink
                                    : core::FaultKind::kMachine;
      event.fail = e.fail;
      event.drain = e.drain;
      resolved.scripted.push_back(event);
    }
    for (const CorrelatedEventConfig& c : f.correlated) {
      const double time = c.time_frac * f.horizon_seconds;
      const double outage =
          c.outage_seconds < 0 ? f.mttr_seconds : c.outage_seconds;
      if (c.kind == "rack_power") {
        AppendRackPowerEvent(topo, TorAt(topo, c.index), time, outage,
                             &resolved.scripted);
      } else if (c.kind == "tor_loss") {
        AppendTorLossEvent(TorAt(topo, c.index), time, outage,
                           &resolved.scripted);
      } else {
        AppendPlannedDrain(MachineAt(topo, c.index), time, outage,
                           &resolved.scripted);
      }
    }
    Status status = ValidateFaultConfig(topo, resolved);
    if (!status.ok()) {
      return Err("scenario.faults", status.message());
    }
  }
  return Status::Ok();
}

std::string ScenarioAllocatorName(const Scenario& scenario) {
  if (!scenario.admission.allocator.empty()) {
    return scenario.admission.allocator;
  }
  workload::Abstraction abstraction = workload::Abstraction::kSvc;
  ParseAbstractionToken(scenario.admission.abstraction, &abstraction);
  return DefaultAllocatorName(abstraction);
}

const ScenarioCell* FindCell(const ScenarioRunResult& result,
                             const std::string& label, int axis_index) {
  for (const ScenarioCell& cell : result.cells) {
    if (cell.label == label && cell.axis_index == axis_index) return &cell;
  }
  return nullptr;
}

util::Result<ScenarioRunResult> RunScenario(const Scenario& scenario,
                                            const ScenarioRunOptions& options) {
  Status status = ValidateScenario(scenario);
  if (!status.ok()) return status;

  const std::vector<CellSpec> specs = EnumerateCells(scenario);

  // Allocators resolved once up front (const, thread-safe to share), plus
  // the per-cell inheritance so a bad variant fails before any cell runs.
  std::map<std::string, std::unique_ptr<core::Allocator>> allocators;
  std::vector<ResolvedVariant> resolved(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    status = ResolveVariant(scenario, specs[i].variant, &resolved[i]);
    if (!status.ok()) return status;
    auto& slot = allocators[resolved[i].allocator];
    if (slot == nullptr) {
      slot = core::MakeAllocatorByName(resolved[i].allocator);
      if (slot == nullptr) {
        return Err("scenario", "unknown allocator '" + resolved[i].allocator +
                                   "'");
      }
    }
  }

  SVC_METRIC_INC("scenario/runs");
  SVC_METRIC_ADD("scenario/cells", static_cast<int64_t>(specs.size()));

  std::vector<std::function<ScenarioCell()>> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const core::Allocator* allocator =
        allocators.at(resolved[i].allocator).get();
    const CellSpec* spec = &specs[i];
    const ResolvedVariant* variant = &resolved[i];
    tasks.push_back([&scenario, spec, variant, allocator, &options] {
      return RunCell(scenario, *spec, *variant, *allocator, options);
    });
  }
  SweepRunner runner(options.threads);
  ScenarioRunResult result;
  result.cells = runner.Run(std::move(tasks));
  return result;
}

}  // namespace svc::sim
