#include "sim/event_log.h"

#include <cstdio>
#include <sstream>

namespace svc::sim {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kAdmit: return "admit";
    case EventKind::kReject: return "reject";
    case EventKind::kSkipUnallocatable: return "skip-unallocatable";
    case EventKind::kNetworkDone: return "network-done";
    case EventKind::kComplete: return "complete";
    case EventKind::kFault: return "fault";
    case EventKind::kRecover: return "recover";
    case EventKind::kEvict: return "evict";
  }
  return "?";
}

std::vector<Event> EventLog::Filter(EventKind kind) const {
  std::vector<Event> matching;
  for (const Event& event : events_) {
    if (event.kind == kind) matching.push_back(event);
  }
  return matching;
}

std::string EventLog::ToJsonl() const {
  std::string out;
  out.reserve(events_.size() * 48);
  char buf[128];
  for (const Event& event : events_) {
    // Kind strings are fixed identifiers (no escaping needed).
    std::snprintf(buf, sizeof buf,
                  "{\"type\":\"event\",\"t\":%.17g,\"kind\":\"%s\",\"job\":%lld}\n",
                  event.time, ToString(event.kind),
                  static_cast<long long>(event.job_id));
    out += buf;
  }
  return out;
}

std::string EventLog::ToCsv() const {
  std::ostringstream out;
  out << "time,kind,job\n";
  for (const Event& event : events_) {
    out << event.time << "," << ToString(event.kind) << "," << event.job_id
        << "\n";
  }
  return out.str();
}

}  // namespace svc::sim
