// Optional structured event log for simulations.
//
// When attached via SimConfig.events, the engine records every scheduler
// decision with its timestamp, giving post-hoc analyses (queueing delay
// breakdowns, admission timelines) and fine-grained regression tests
// something better than aggregate metrics to look at.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace svc::sim {

enum class EventKind {
  kArrival,        // online: a request arrived
  kAdmit,          // placement succeeded; job starts
  kReject,         // online: admission failed at arrival
  kSkipUnallocatable,  // batch: head job can never fit; skipped
  kNetworkDone,    // the job's last flow finished
  kComplete,       // job released (max(Tc, Tn) reached)
  kFault,          // fault injected (job_id carries the failed vertex)
  kRecover,        // element recovered (job_id carries the vertex)
  kEvict,          // job evicted by fault handling
};

const char* ToString(EventKind kind);

struct Event {
  double time = 0;
  EventKind kind = EventKind::kArrival;
  int64_t job_id = 0;
};

// Single-owner container: an EventLog belongs to the one engine (and thus
// the one thread) it is attached to.  Record() is not synchronized — when
// sweeps run replica engines concurrently, each replica gets its own log
// (see bench/sweep_runner) rather than sharing one.  A debug-build assert
// pins the first recording thread and trips if another thread records.
class EventLog {
 public:
  void Record(double time, EventKind kind, int64_t job_id) {
    assert(CheckOwner() && "EventLog::Record called from a second thread");
    events_.push_back({time, kind, job_id});
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() {
    events_.clear();
    owner_ = -1;  // a cleared log may be re-adopted by a different thread
  }

  // Events of one kind, in order.
  std::vector<Event> Filter(EventKind kind) const;

  // "time,kind,job" CSV, one event per line, with header.
  std::string ToCsv() const;

  // One JSON object per line: {"t":..,"kind":"..","job":..}.  Appends
  // cleanly to the bench --metrics-out JSONL stream.
  std::string ToJsonl() const;

 private:
  // Adopts the calling thread on first use; true iff it still matches.
  bool CheckOwner() {
    const int self = obs::ThreadId();
    if (owner_ == -1) owner_ = self;
    return owner_ == self;
  }

  std::vector<Event> events_;
  int owner_ = -1;  // obs::ThreadId() of the recording thread
};

}  // namespace svc::sim
