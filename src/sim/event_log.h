// Optional structured event log for simulations.
//
// When attached via SimConfig.events, the engine records every scheduler
// decision with its timestamp, giving post-hoc analyses (queueing delay
// breakdowns, admission timelines) and fine-grained regression tests
// something better than aggregate metrics to look at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svc::sim {

enum class EventKind {
  kArrival,        // online: a request arrived
  kAdmit,          // placement succeeded; job starts
  kReject,         // online: admission failed at arrival
  kSkipUnallocatable,  // batch: head job can never fit; skipped
  kNetworkDone,    // the job's last flow finished
  kComplete,       // job released (max(Tc, Tn) reached)
};

const char* ToString(EventKind kind);

struct Event {
  double time = 0;
  EventKind kind = EventKind::kArrival;
  int64_t job_id = 0;
};

class EventLog {
 public:
  void Record(double time, EventKind kind, int64_t job_id) {
    events_.push_back({time, kind, job_id});
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Events of one kind, in order.
  std::vector<Event> Filter(EventKind kind) const;

  // "time,kind,job" CSV, one event per line, with header.
  std::string ToCsv() const;

 private:
  std::vector<Event> events_;
};

}  // namespace svc::sim
