#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/lognormal.h"
#include "svc/scratch_arena.h"
#include "svc/survivable.h"
#include "util/logging.h"

namespace svc::sim {

Engine::Engine(const topology::Topology& topo, SimConfig config)
    : topo_(&topo),
      config_(config),
      manager_(topo, config.epsilon),
      empty_manager_(topo, config.epsilon),
      scratch_(topo.directed_cable_slots()),
      rng_(config.seed) {
  assert(config_.allocator != nullptr && "SimConfig.allocator is required");
  assert(config_.time_step > 0);
  manager_.set_admission_options(config_.admission);
  empty_manager_.set_admission_options(config_.admission);
  if (config_.admission_workers > 1) {
    core::PipelineConfig pipeline;
    pipeline.workers = config_.admission_workers;
    pipeline.deterministic = true;  // bit-identical to the serial path
    pipeline.shards = config_.admission_shards;
    pipeline.placement = config_.placement;
    pipeline_ =
        std::make_unique<core::AdmissionPipeline>(manager_, pipeline);
  }
  // Full-duplex links, one capacity slot per cable and direction; on
  // untrunked fabrics each link simply has one cable per direction.
  topo.FillCableCapacities(capacity_);
  offered_load_.resize(topo.directed_cable_slots(), 0.0);
  link_touched_.resize(topo.directed_cable_slots(), 0);
}

core::Request Engine::MakeRequest(const workload::JobSpec& spec) const {
  return workload::MakeRequest(spec, config_.abstraction,
                               config_.vc_quantile);
}

bool Engine::UnallocatableEvenEmpty(const workload::JobSpec& spec) {
  const core::Request request = MakeRequest(spec);
  util::Result<core::Placement> placed = config_.allocator->Allocate(
      request, empty_manager_.ledger(), empty_manager_.slots());
  if (!placed) return true;
  if (config_.admission.survivability) {
    // Survivable admission also needs a backup group; a job whose backup
    // cannot fit even in an empty datacenter can never be admitted either.
    return !core::PlanBackup(*topo_, request, *std::move(placed),
                             empty_manager_.ledger(), empty_manager_.slots())
                .ok();
  }
  return false;
}

bool Engine::TryStart(const workload::JobSpec& spec, double now) {
  util::Result<core::Placement> result =
      manager_.Admit(MakeRequest(spec), *config_.allocator);
  return FinishStart(spec, now, result);
}

bool Engine::FinishStart(const workload::JobSpec& spec, double now,
                         util::Result<core::Placement>& result) {
  if (!result) {
    if (result.status().code() == util::ErrorCode::kFailedPrecondition) {
      // An allocator bug, not a capacity condition — fail loudly.  This may
      // run inside a pipeline decision callback (workers still recording),
      // so the flight-recorder dump is latched, not taken inline.
      SVC_LOG(Error) << "admission inconsistency: " << result.status().ToText();
      char detail[96];
      std::snprintf(detail, sizeof detail, "job=%lld",
                    static_cast<long long>(spec.id));
      obs::FlightRecorder::Global().LatchTrigger("admission-inconsistency",
                                                 detail);
    }
    return false;
  }
  core::Placement& placement = *result;
  if (placement.subtree_root != topology::kNoVertex) {
    placement_levels_.push_back(topo_->level(placement.subtree_root));
  }

  ActiveJob job;
  job.spec = spec;
  job.start_time = now;
  job.compute_done = now + spec.compute_time;
  job.last_flow_finish = now;
  const double cap = workload::RateCap(spec, config_.abstraction, config_.vc_quantile);

  // One flow per task; every task is a source and a destination for exactly
  // one flow (paper's workload model), i.e. dst is a fixed-point-free
  // permutation of the tasks.
  std::vector<int> dst_of(spec.size);
  if (spec.size > 1) {
    if (config_.flow_pattern == FlowPattern::kRing) {
      for (int i = 0; i < spec.size; ++i) dst_of[i] = (i + 1) % spec.size;
    } else {
      // Random derangement: shuffle, then use the cyclic structure of the
      // shuffled order (i -> next in shuffled sequence), which has no fixed
      // points and is exactly one big cycle over a random order.
      std::vector<int> order(spec.size);
      for (int i = 0; i < spec.size; ++i) order[i] = i;
      for (int i = spec.size - 1; i > 0; --i) {
        const int j = static_cast<int>(rng_.UniformInt(0, i));
        std::swap(order[i], order[j]);
      }
      for (int i = 0; i < spec.size; ++i) {
        dst_of[order[i]] = order[(i + 1) % spec.size];
      }
    }
  }
  if (spec.size > 1) {
    for (int i = 0; i < spec.size; ++i) {
      const topology::VertexId src = placement.vm_machine[i];
      const topology::VertexId dst = placement.vm_machine[dst_of[i]];
      SimFlow flow;
      // Per-flow ECMP: one hash pins the flow to a cable on every trunk.
      const uint64_t ecmp_hash = rng_.NextU64();
      topo_->PathCablesDirected(src, dst, ecmp_hash, flow.links);
      flows_.push_back(std::move(flow));
      // Heterogeneous jobs: the source task's own distribution drives the
      // per-second generation-rate draws.
      const double rate_mean = spec.vm_demands.empty()
                                   ? spec.rate_mean
                                   : spec.vm_demands[i].mean;
      const double rate_stddev = spec.vm_demands.empty()
                                     ? spec.rate_stddev
                                     : spec.vm_demands[i].stddev();
      FlowMeta meta{spec.id, spec.flow_mbits, rate_mean, rate_stddev, cap,
                    enforce::TokenBucket{0, 0}};
      if (config_.enforcement == Enforcement::kTokenBucket &&
          std::isfinite(cap)) {
        meta.bucket = enforce::TokenBucket(cap, cap * config_.burst_seconds);
      }
      meta.src_vm = i;
      meta.dst_vm = dst_of[i];
      meta.ecmp_hash = ecmp_hash;
      meta.distribution = spec.rate_distribution;
      if (meta.distribution == workload::RateDistribution::kLogNormal &&
          rate_stddev > 0 && rate_mean > 0) {
        const stats::LogNormal lognormal = stats::LogNormal::FromMeanVariance(
            rate_mean, rate_stddev * rate_stddev);
        meta.log_mu = lognormal.mu_log();
        meta.log_sigma = lognormal.sigma_log();
      } else {
        meta.distribution = workload::RateDistribution::kNormal;
      }
      meta_.push_back(std::move(meta));
      ++job.flows_left;
    }
    flows_dirty_ = true;
  }
  active_.emplace(spec.id, std::move(job));
  // The manager keeps its own copy of the placement; hand this one's
  // buffer back to the allocator's recycling pool.
  core::RecycleVmBuffer(std::move(placement.vm_machine));
  if (config_.events != nullptr) {
    config_.events->Record(now, EventKind::kAdmit, spec.id);
  }
  return true;
}

void Engine::CheckIncrementalRates() {
  // From-scratch solve on a cold scratch over a copy of the flows; the
  // incremental path must agree bit for bit.
  check_flows_ = flows_;
  MaxMinScratch fresh(static_cast<int>(capacity_.size()));
  fresh.Allocate(check_flows_, capacity_);
  for (size_t f = 0; f < flows_.size(); ++f) {
    if (flows_[f].rate != check_flows_[f].rate) {
      SVC_LOG(Error) << "incremental max-min mismatch on flow " << f << ": "
                     << flows_[f].rate << " vs " << check_flows_[f].rate;
      assert(false && "incremental max-min diverged from full recompute");
    }
  }
}

void Engine::AppendSeriesSample(double now) {
  const int64_t busy = cached_busy_links_;
  const double util_mean =
      busy > 0 ? cached_util_sum_ / static_cast<double>(busy) : 0.0;
  char line[320];
  std::snprintf(
      line, sizeof line,
      "{\"type\":\"sample\",\"t\":%.17g,\"seed\":%llu,\"active_jobs\":%zu,"
      "\"flows\":%zu,\"busy_links\":%lld,\"outage_links\":%lld,"
      "\"util_mean\":%.17g,\"util_max\":%.17g,\"max_occupancy\":%.17g}",
      now, static_cast<unsigned long long>(config_.seed), active_.size(),
      flows_.size(), static_cast<long long>(busy),
      static_cast<long long>(cached_outage_links_), util_mean,
      cached_util_max_, manager_.MaxOccupancy());
  config_.series->Append(line);
}

void Engine::Step(double now, std::vector<int64_t>& completed) {
  SVC_TRACE_SPAN("engine/step");
  const double dt = config_.time_step;
  const double end = now + dt;

  // Redraw per-source generation rates and apply hypervisor rate limiting.
  // The draws happen every tick (the RNG stream must not depend on the
  // fast path below), but a bit-identical redraw — common under hard-cap
  // enforcement of deterministic reservations, where the cap binds — means
  // the previous max-min solution is still exact.
  const bool token_bucket =
      config_.enforcement == Enforcement::kTokenBucket;
  bool desires_changed = false;
  for (size_t f = 0; f < flows_.size(); ++f) {
    FlowMeta& m = meta_[f];
    const double draw =
        m.distribution == workload::RateDistribution::kLogNormal
            ? std::exp(rng_.Normal(m.log_mu, m.log_sigma))
            : std::max(0.0, rng_.Normal(m.rate_mean, m.rate_stddev));
    double desired;
    if (token_bucket && std::isfinite(m.rate_cap)) {
      desired = m.bucket.Admit(draw, dt);
    } else {
      desired = std::min(draw, m.rate_cap);
    }
    if (desired != flows_[f].desired) {
      flows_[f].desired = desired;
      desires_changed = true;
    }
  }

  // Steady state: same flows, same desires — the offered loads, the outage
  // verdicts, and the max-min rates of the previous tick all still hold.
  const bool steady = !flows_dirty_ && !desires_changed;

  if (config_.measure_outage) {
    if (steady) {
      busy_link_seconds_ += cached_busy_links_;
      outage_link_seconds_ += cached_outage_links_;
    } else {
      // A bandwidth outage (paper constraint (1)) is a loaded link whose
      // offered demand exceeds its capacity this second.
      const bool metrics = obs::MetricsEnabled();
      const bool want_util = metrics || config_.series != nullptr;
      for (const SimFlow& flow : flows_) {
        for (topology::VertexId link : flow.links) {
          if (!link_touched_[link]) {
            link_touched_[link] = 1;
            loaded_links_.push_back(link);
          }
          offered_load_[link] += flow.desired;
        }
      }
      cached_busy_links_ = 0;
      cached_outage_links_ = 0;
      cached_util_sum_ = 0;
      cached_util_max_ = 0;
      for (topology::VertexId link : loaded_links_) {
        ++cached_busy_links_;
        if (offered_load_[link] > capacity_[link] * (1 + 1e-9)) {
          ++cached_outage_links_;
        }
        // Offered utilization of the loaded link this second (may exceed 1
        // when the link is in outage; max-min then throttles the flows).
        if (want_util && capacity_[link] > 0) {
          const double util = offered_load_[link] / capacity_[link];
          cached_util_sum_ += util;
          cached_util_max_ = std::max(cached_util_max_, util);
          if (metrics) {
            SVC_METRIC_HIST("engine/link_utilization", util);
          }
        }
        offered_load_[link] = 0.0;
        link_touched_[link] = 0;
      }
      loaded_links_.clear();
      busy_link_seconds_ += cached_busy_links_;
      outage_link_seconds_ += cached_outage_links_;
    }
    // Epoch split: ticks with any element down are charged to the failure
    // bucket too, so steady-epoch outage (where epsilon must still hold)
    // can be reported separately from outage caused by the faults
    // themselves.
    if (failure_epoch_) {
      failure_busy_link_seconds_ += cached_busy_links_;
      failure_outage_link_seconds_ += cached_outage_links_;
    }
  }

  if (steady) {
    SVC_METRIC_INC("engine/steady_ticks");
  } else {
    SVC_METRIC_INC("engine/solve_ticks");
    scratch_.Allocate(flows_, capacity_, flows_dirty_);
  }
  SVC_METRIC_GAUGE_SET("engine/flows", static_cast<double>(flows_.size()));
  if (config_.series != nullptr && now >= next_sample_time_) {
    next_sample_time_ = now + config_.series_period;
    AppendSeriesSample(now);
  }
  if (config_.check_incremental) CheckIncrementalRates();
  flows_dirty_ = false;

  // Progress transfers; swap-erase finished flows.
  for (size_t f = 0; f < flows_.size();) {
    meta_[f].remaining_mbits -= flows_[f].rate * dt;
    if (meta_[f].remaining_mbits <= 1e-9) {
      ActiveJob& job = active_.at(meta_[f].job_id);
      --job.flows_left;
      job.last_flow_finish = end;
      if (job.flows_left == 0 && config_.events != nullptr) {
        config_.events->Record(end, EventKind::kNetworkDone,
                               meta_[f].job_id);
      }
      flows_[f] = std::move(flows_.back());
      flows_.pop_back();
      meta_[f] = meta_.back();
      meta_.pop_back();
      flows_dirty_ = true;
    } else {
      ++f;
    }
  }

  // Completions: network done and compute done.
  for (auto it = active_.begin(); it != active_.end();) {
    const ActiveJob& job = it->second;
    if (job.flows_left == 0 && end >= job.compute_done - 1e-9) {
      completed.push_back(it->first);
      if (config_.events != nullptr) {
        config_.events->Record(end, EventKind::kComplete, it->first);
      }
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void Engine::SetUplinkCables(topology::VertexId vertex, bool up) {
  const int width = topo_->trunk_width(vertex);
  const double cap = up ? topo_->cable_capacity(vertex) : 0.0;
  for (int cable = 0; cable < width; ++cable) {
    capacity_[topo_->DirectedCableSlot(vertex, true, cable)] = cap;
    capacity_[topo_->DirectedCableSlot(vertex, false, cable)] = cap;
  }
}

void Engine::EvictJob(int64_t job_id, double now) {
  for (size_t f = 0; f < flows_.size();) {
    if (meta_[f].job_id == job_id) {
      flows_[f] = std::move(flows_.back());
      flows_.pop_back();
      meta_[f] = meta_.back();
      meta_.pop_back();
    } else {
      ++f;
    }
  }
  active_.erase(job_id);
  if (config_.events != nullptr) {
    config_.events->Record(now, EventKind::kEvict, job_id);
  }
}

void Engine::RepathJob(int64_t job_id) {
  const core::Placement* placement = manager_.placement_of(job_id);
  assert(placement != nullptr);
  // Re-path the tenant's flows onto the current placement with their
  // original ECMP hashes: no fresh RNG draws, so the seed stream (and
  // everything downstream) is fault-schedule-stable.
  for (size_t f = 0; f < flows_.size(); ++f) {
    if (meta_[f].job_id != job_id) continue;
    flows_[f].links.clear();
    topo_->PathCablesDirected(placement->vm_machine[meta_[f].src_vm],
                              placement->vm_machine[meta_[f].dst_vm],
                              meta_[f].ecmp_hash, flows_[f].links);
  }
}

bool Engine::ApplyFaultEvents(double now) {
  bool applied = false;
  while (next_fault_ < fault_schedule_.size() &&
         fault_schedule_[next_fault_].time <= now) {
    const FaultEvent event = fault_schedule_[next_fault_++];
    if (event.fail && event.drain) {
      // Planned drain: migrate the machine's tenants off (switchover
      // preferred) BEFORE the teardown below takes it down.  Tenants the
      // drain could not move are restored in place and handled reactively
      // by the machine failure that follows.
      util::Result<core::FaultOutcome> drained =
          manager_.DrainMachine(event.vertex, *config_.allocator);
      if (drained) {
        ++planned_drains_;
        for (const core::TenantOutcome& tenant : drained->tenants) {
          if (!tenant.recovered) continue;
          ++tenants_migrated_;
          if (tenant.switched_over) ++tenants_switched_;
          RepathJob(tenant.id);
        }
        if (!drained->tenants.empty()) flows_dirty_ = true;
      } else {
        SVC_LOG(Warning) << "drain event at t=" << event.time
                         << " skipped: " << drained.status().ToText();
      }
    }
    if (event.fail) {
      const auto start = std::chrono::steady_clock::now();
      util::Result<core::FaultOutcome> outcome = manager_.HandleFault(
          event.kind, event.vertex, config_.faults.policy,
          *config_.allocator);
      if (!outcome) {
        // Scripted schedules may name an element the random schedule
        // already took down; skipping keeps the run going.
        SVC_LOG(Warning) << "fault event at t=" << event.time
                         << " skipped: " << outcome.status().ToText();
        continue;
      }
      recovery_latency_us_.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
      ++faults_injected_;
      tenants_affected_ += static_cast<int64_t>(outcome->tenants.size());
      SetUplinkCables(event.vertex, false);
      if (config_.events != nullptr) {
        config_.events->Record(now, EventKind::kFault, event.vertex);
      }
      for (const core::TenantOutcome& tenant : outcome->tenants) {
        if (tenant.recovered) {
          ++tenants_recovered_;
          if (tenant.switched_over) ++tenants_switched_;
          RepathJob(tenant.id);
        } else {
          ++tenants_evicted_;
          EvictJob(tenant.id, now);
        }
      }
    } else {
      const util::Status status = manager_.HandleRecovery(event.vertex);
      if (!status.ok()) {
        SVC_LOG(Warning) << "recovery event at t=" << event.time
                         << " skipped: " << status.ToText();
        continue;
      }
      ++fault_recoveries_;
      SetUplinkCables(event.vertex, true);
      if (config_.events != nullptr) {
        config_.events->Record(now, EventKind::kRecover, event.vertex);
      }
    }
    // Any applied event changes link capacities: invalidate the cached
    // max-min solution (the steady fast path must not replay stale rates)
    // and re-evaluate which epoch the following ticks belong to.
    applied = true;
    flows_dirty_ = true;
    failure_epoch_ = !manager_.Faults().empty();
  }
  return applied;
}

BatchResult Engine::RunBatch(const std::vector<workload::JobSpec>& jobs) {
  BatchResult result;
  std::deque<workload::JobSpec> queue(jobs.begin(), jobs.end());

  if (config_.faults.enabled()) {
    FaultConfig faults = config_.faults;
    if (faults.horizon_seconds <= 0) {
      faults.horizon_seconds = config_.max_seconds;
    }
    fault_schedule_ = BuildFaultSchedule(*topo_, faults);
  }
  next_fault_ = 0;
  failure_epoch_ = false;

  double now = 0;
  std::unordered_map<int64_t, double> start_times;
  // Strict-FIFO admission of the queue head(s).  With the pipeline on,
  // whole windows are speculated concurrently and committed in FIFO order
  // with stop_on_failure, which is exactly the serial head-by-head rule.
  auto admit_fifo = [&] {
    while (!queue.empty()) {
      if (pipeline_ != nullptr && queue.size() > 1) {
        const size_t window =
            static_cast<size_t>(std::max(config_.admission_window, 1));
        const size_t lookahead =
            static_cast<size_t>(std::max(config_.admission_lookahead, 1));
        // Cross-window pipelining: hand up to `lookahead` windows in one
        // AdmitBatch call; the pipeline drains its commit plane at every
        // window boundary while speculation for the next window runs on.
        const size_t span = std::min(queue.size(), window * lookahead);
        std::vector<core::Request> requests;
        requests.reserve(span);
        for (size_t i = 0; i < span; ++i) {
          requests.push_back(MakeRequest(queue[i]));
        }
        size_t committed = 0;
        pipeline_->AdmitBatch(
            requests, *config_.allocator, /*stop_on_failure=*/true,
            [&](size_t i, util::Result<core::Placement>& r) {
              if (FinishStart(queue[i], now, r)) {
                start_times[queue[i].id] = now;
                ++committed;
              }
            },
            span > window ? static_cast<int>(window) : 0);
        // stop_on_failure commits exactly the FIFO prefix that fits.
        queue.erase(queue.begin(),
                    queue.begin() + static_cast<ptrdiff_t>(committed));
        if (committed == span) continue;  // whole span admitted
      } else {
        if (TryStart(queue.front(), now)) {
          start_times[queue.front().id] = now;
          queue.pop_front();
          continue;
        }
      }
      if (UnallocatableEvenEmpty(queue.front())) {
        if (config_.events != nullptr) {
          config_.events->Record(now, EventKind::kSkipUnallocatable,
                                 queue.front().id);
        }
        // The head job cannot fit even in an empty datacenter; skip it
        // immediately so it neither deadlocks the batch nor stalls the
        // FIFO queue until the fabric drains.
        SVC_LOG(Debug) << "job " << queue.front().id
                       << " unallocatable on an empty datacenter; skipped";
        ++result.unallocatable_jobs;
        queue.pop_front();
        continue;
      }
      break;  // strict FIFO: wait for completions (or a recovery)
    }
  };

  // Faults precede admissions at the same instant, as in RunOnline.
  ApplyFaultEvents(now);
  admit_fifo();
  // Quiesced here and at every loop bottom: AdmitBatch is synchronous, so
  // an SLO breach latched mid-batch dumps with no speculation in flight.
  obs::FlightRecorder::Global().MaybeTriggerPending();
  std::vector<int64_t> completed;
  while (!active_.empty() || !queue.empty()) {
    if (now >= config_.max_seconds) {
      SVC_LOG(Error) << "batch simulation hit the max_seconds safety stop at "
                     << now;
      break;
    }
    if (active_.empty()) {
      // Queue blocked with nothing running: only a scheduled recovery (or
      // an eviction by a later fault — it frees capacity too) can change
      // the verdict, so jump straight to the next fault event.
      if (next_fault_ >= fault_schedule_.size()) break;
      now = std::max(now, fault_schedule_[next_fault_].time);
      ApplyFaultEvents(now);
      admit_fifo();
      continue;
    }
    completed.clear();
    Step(now, completed);
    now += config_.time_step;
    const bool capacity_changed = ApplyFaultEvents(now);
    if (!completed.empty()) {
      for (int64_t id : completed) {
        manager_.Release(id);
        JobRecord record;
        record.id = id;
        record.arrival_time = 0;
        record.start_time = start_times.at(id);
        record.finish_time = now;
        result.jobs.push_back(record);
        result.total_completion_time = now;
      }
    }
    if (!completed.empty() || capacity_changed) admit_fifo();
    obs::FlightRecorder::Global().MaybeTriggerPending();
  }
  obs::FlightRecorder::Global().MaybeTriggerPending();
  result.simulated_seconds = now;
  result.outage = {outage_link_seconds_, busy_link_seconds_};
  result.failure_outage = {failure_outage_link_seconds_,
                           failure_busy_link_seconds_};
  result.placement_levels = placement_levels_;
  result.faults_injected = faults_injected_;
  result.fault_recoveries = fault_recoveries_;
  result.tenants_affected = tenants_affected_;
  result.tenants_recovered = tenants_recovered_;
  result.tenants_evicted = tenants_evicted_;
  result.tenants_switched = tenants_switched_;
  result.planned_drains = planned_drains_;
  result.tenants_migrated = tenants_migrated_;
  result.recovery_latency_us = std::move(recovery_latency_us_);
  return result;
}

OnlineResult Engine::RunOnline(std::vector<workload::JobSpec> jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const auto& lhs, const auto& rhs) {
              return lhs.arrival_time < rhs.arrival_time;
            });
  OnlineResult result;
  size_t next = 0;
  double now = 0;
  std::vector<int64_t> completed;
  std::unordered_map<int64_t, double> start_times;
  std::unordered_map<int64_t, double> arrival_times;

  if (config_.faults.enabled()) {
    FaultConfig faults = config_.faults;
    if (faults.horizon_seconds <= 0) {
      faults.horizon_seconds = config_.max_seconds;
    }
    fault_schedule_ = BuildFaultSchedule(*topo_, faults);
  }
  next_fault_ = 0;
  failure_epoch_ = false;

  while (next < jobs.size() || !active_.empty()) {
    if (now >= config_.max_seconds) {
      SVC_LOG(Error) << "online simulation hit the max_seconds safety stop";
      break;
    }
    // Faults precede arrivals at the same instant: an arrival at the fault
    // time already sees the degraded datacenter.
    ApplyFaultEvents(now);
    // Per-arrival bookkeeping, in arrival order: the admission decision,
    // then the samples the paper takes at every arrival.
    auto settle = [&](const workload::JobSpec& spec,
                      util::Result<core::Placement>& admitted) {
      if (config_.events != nullptr) {
        config_.events->Record(spec.arrival_time, EventKind::kArrival,
                               spec.id);
      }
      if (FinishStart(spec, now, admitted)) {
        ++result.accepted;
        start_times[spec.id] = now;
        arrival_times[spec.id] = spec.arrival_time;
      } else {
        ++result.rejected;
        if (config_.events != nullptr) {
          config_.events->Record(now, EventKind::kReject, spec.id);
        }
      }
      result.concurrency_samples.push_back(
          static_cast<int>(active_.size()));
      if (config_.sample_occupancy) {
        result.max_occupancy_samples.push_back(manager_.MaxOccupancy());
        if (config_.admission.survivability) {
          result.backup_share_samples.push_back(
              manager_.ledger().MaxBackupShare());
        }
      }
    };
    size_t group_end = next;
    while (group_end < jobs.size() && jobs[group_end].arrival_time <= now) {
      ++group_end;
    }
    if (pipeline_ != nullptr && group_end - next > 1) {
      // The arrivals due this instant are admitted as one pipeline batch;
      // the deterministic discipline settles them in arrival order with
      // decisions identical to the serial loop below.
      std::vector<core::Request> requests;
      requests.reserve(group_end - next);
      for (size_t j = next; j < group_end; ++j) {
        requests.push_back(MakeRequest(jobs[j]));
      }
      pipeline_->AdmitBatch(requests, *config_.allocator,
                            /*stop_on_failure=*/false,
                            [&](size_t i, util::Result<core::Placement>& r) {
                              settle(jobs[next + i], r);
                            });
      next = group_end;
    } else {
      while (next < group_end) {
        util::Result<core::Placement> admitted =
            manager_.Admit(MakeRequest(jobs[next]), *config_.allocator);
        settle(jobs[next], admitted);
        ++next;
      }
    }
    // The admission group settled (AdmitBatch is synchronous), so a latched
    // SLO breach or inconsistency dumps here with the pipeline drained.
    obs::FlightRecorder::Global().MaybeTriggerPending();
    if (active_.empty()) {
      // Idle period: jump to the next arrival instead of stepping through
      // empty seconds.
      if (next < jobs.size()) {
        now = std::max(now, jobs[next].arrival_time);
        continue;
      }
      break;
    }
    completed.clear();
    Step(now, completed);
    now += config_.time_step;
    for (int64_t id : completed) {
      manager_.Release(id);
      JobRecord record;
      record.id = id;
      record.arrival_time = arrival_times.at(id);
      record.start_time = start_times.at(id);
      record.finish_time = now;
      result.jobs.push_back(record);
    }
  }
  obs::FlightRecorder::Global().MaybeTriggerPending();
  result.simulated_seconds = now;
  result.outage = {outage_link_seconds_, busy_link_seconds_};
  result.failure_outage = {failure_outage_link_seconds_,
                           failure_busy_link_seconds_};
  result.placement_levels = placement_levels_;
  result.faults_injected = faults_injected_;
  result.fault_recoveries = fault_recoveries_;
  result.tenants_affected = tenants_affected_;
  result.tenants_recovered = tenants_recovered_;
  result.tenants_evicted = tenants_evicted_;
  result.tenants_switched = tenants_switched_;
  result.planned_drains = planned_drains_;
  result.tenants_migrated = tenants_migrated_;
  result.recovery_latency_us = std::move(recovery_latency_us_);
  return result;
}

}  // namespace svc::sim
