// Declarative experiment scenarios (docs/SCENARIOS.md).
//
// A Scenario is the complete, serializable description of one experiment:
// the fabric (topology::ThreeTierConfig), the workload mix and arrival
// regime, the admission discipline (abstraction, allocator, epsilon,
// survivability, pipeline workers/shards), the enforcement discipline, the
// fault schedule (random churn, scripted one-shots, correlated groups),
// one optional sweep axis, and the variant columns that share it.  The
// figure benches are thin shims over RunScenario: each fetches its
// registry entry, applies its command-line overrides, runs, and formats
// the table — so a figure is reproducible from one JSON file instead of
// bespoke setup code.
//
// Serialization is canonical: SerializeScenario always writes every field
// in a fixed order, so parse(serialize(s)) == s and serialize(parse(text))
// is byte-stable — which makes ScenarioConfigHash a meaningful identity
// for "same experiment" comparisons across BENCH_*.json snapshots.
// ParseScenario is strict: unknown keys, duplicate keys, and type
// mismatches are errors naming the offending JSON path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/time_series.h"
#include "sim/engine.h"
#include "topology/builders.h"
#include "util/result.h"
#include "workload/workload.h"

namespace svc::sim {

// When and how generated jobs arrive.
//   batch        all jobs queued FIFO at t=0; the engine runs RunBatch.
//   poisson      the generator's calibrated Poisson arrivals (RunOnline).
//   static       fixed_jobs submitted at t=0 through RunOnline (admit-or-
//                reject at arrival; used by deterministic drills).
//   flash_crowd  poisson arrivals time-warped so a burst_factor-times
//                denser burst covers [burst_start, burst_start +
//                burst_length) of the arrival span (RunOnline).
//   diurnal      poisson arrivals reshaped to a sinusoidal rate
//                lambda(t) = lambda * (1 + amplitude * sin(2*pi*t /
//                period_seconds)) via inverse-CDF warping (RunOnline).
struct ArrivalConfig {
  std::string mode = "batch";
  double load = 0.7;  // offered load for the online modes
  // flash_crowd shape.
  double burst_factor = 4.0;
  double burst_start = 0.4;
  double burst_length = 0.2;
  // diurnal shape.
  double period_seconds = 20000;
  double amplitude = 0.8;
};

// Hand-built deterministic jobs (count > 0 replaces the generator): all
// identical, ids 1..count, arrival 0, sigma = rho * rate_mean, flow length
// rate_mean * flow_seconds Mbit.
struct FixedJobConfig {
  int count = 0;
  int size = 4;
  double compute_time = 3000;
  double rate_mean = 100;
  double rho = 0;
  double flow_seconds = 2000;
};

// The admission discipline every cell starts from (variants override).
struct AdmissionConfig {
  std::string abstraction = "svc";  // svc | mean_vc | percentile_vc
  // Allocator name (svc/allocator_registry.h); empty derives from the
  // abstraction: svc-dp for SVC, oktopus for the deterministic VCs.
  std::string allocator;
  double epsilon = 0.05;
  double vc_quantile = 0.95;
  bool survivability = false;
  // Concurrent admission pipeline (SimConfig): 0/1 = serial.
  int workers = 0;
  int shards = 0;
  int window = 128;
  int lookahead = 1;
  std::string placement = "none";  // none | compact | scatter | shard_node
};

struct EnforcementConfig {
  std::string mode = "hard_cap";  // hard_cap | token_bucket
  double burst_seconds = 5.0;
};

// One scripted fault-plane event.  vertex == -1 auto-targets the first
// machine hosting a VM of the first admitted job (resolved per cell by a
// deterministic probe admission pass — the drill pattern).
struct ScriptedEventConfig {
  double time = 0;
  int64_t vertex = -1;
  std::string kind = "machine";  // machine | link
  bool fail = true;
  bool drain = false;
};

// One correlated multi-element group, expanded via the fault_injector
// helpers.  `index` picks the n-th ToR (rack_power / tor_loss) or machine
// (planned_drain), clamped to the fabric; time = time_frac *
// horizon_seconds; outage_seconds < 0 means mttr_seconds.
struct CorrelatedEventConfig {
  std::string kind = "rack_power";  // rack_power | tor_loss | planned_drain
  int index = 0;
  double time_frac = 0.5;
  double outage_seconds = -1;
};

struct ScenarioFaultConfig {
  double machine_mtbf_seconds = 0;
  double link_mtbf_seconds = 0;
  // > 0: the fabric-link MTBF tracks the machine MTBF (including a swept
  // one) as link_mtbf_factor * machine_mtbf, overriding link_mtbf_seconds.
  double link_mtbf_factor = 0;
  double mttr_seconds = 0;
  double horizon_seconds = 0;
  uint64_t seed = 1;
  std::string policy = "reallocate";  // reallocate | patch | evict | switchover
  std::vector<ScriptedEventConfig> scripted;
  std::vector<CorrelatedEventConfig> correlated;
};

// The swept axis: every non-`once` variant runs at every value.
//   "" (none) | load | oversub | rho | epsilon | trunk | quantile | mtbf
struct SweepConfig {
  std::string parameter;
  std::vector<double> values;
};

// One column of the experiment grid.  Empty strings / negative sentinels
// inherit the scenario-level AdmissionConfig / EnforcementConfig / faults.
struct VariantConfig {
  std::string label;
  std::string abstraction;        // "" inherits
  std::string allocator;          // "" inherits (or derives)
  double epsilon = -1;            // < 0 inherits
  double vc_quantile = -1;        // < 0 inherits
  std::string enforcement;        // "" inherits: hard_cap | token_bucket
  std::string rate_distribution;  // "" inherits: normal | lognormal
  std::string policy;             // "" inherits the fault recovery policy
  int survivable = -1;            // -1 inherits, else 0 / 1
  // Run once (ignoring the sweep axis) instead of per sweep value.
  bool once = false;
};

struct Scenario {
  std::string name;
  std::string description;
  uint64_t seed = 42;       // workload seed; the engine runs on seed + 1
  double max_seconds = 2e6;
  topology::ThreeTierConfig topology;
  workload::WorkloadConfig workload;
  ArrivalConfig arrivals;
  FixedJobConfig fixed_jobs;
  AdmissionConfig admission;
  EnforcementConfig enforcement;
  ScenarioFaultConfig faults;
  SweepConfig sweep;
  std::vector<VariantConfig> variants;
};

// --- Serialization ---

// Canonical JSON: every field, fixed order, compact (JsonWriter style).
std::string SerializeScenario(const Scenario& scenario);

// Strict parse of one JSON object; errors name the offending path.
util::Result<Scenario> ParseScenario(const std::string& text);

// Structural validation (names, ranges, divisibility, fault schedule
// against the scenario's own topology).  RunScenario validates first.
util::Status ValidateScenario(const Scenario& scenario);

// FNV-1a 64 over SerializeScenario(scenario), as 16 hex digits: the
// identity BENCH_*.json snapshots carry so tools/bench_diff.py can warn
// when two runs measured different experiments.
std::string ScenarioConfigHash(const Scenario& scenario);

// The allocator name the scenario-level admission discipline resolves to:
// admission.allocator when set, else the abstraction's default ("svc-dp"
// for svc, "oktopus" for the deterministic VCs).  svcd uses this — the
// daemon serves the scenario's base discipline; variants are a sweep
// concept.
std::string ScenarioAllocatorName(const Scenario& scenario);

// --- Registry ---

// Built-in scenarios (fig5..fig10, the ablations, guarantee validation,
// the fault suite, the daemon default, ...); nullptr when unknown.
const Scenario* FindScenario(const std::string& name);
const std::vector<std::string>& RegisteredScenarioNames();

// --- Execution ---

// One finished grid cell.  Exactly one of batch / online is meaningful
// (`online` tells which); `axis_index` is -1 for `once` variants.
struct ScenarioCell {
  std::string label;
  int axis_index = -1;
  double axis_value = 0;
  bool online = false;
  BatchResult batch;
  OnlineResult online_result;
};

struct ScenarioRunResult {
  std::vector<ScenarioCell> cells;
};

// The cell for (label, axis_index); nullptr when absent.
const ScenarioCell* FindCell(const ScenarioRunResult& result,
                             const std::string& label, int axis_index);

struct ScenarioRunOptions {
  int threads = 0;  // sweep workers; results identical for every value
  // Borrowed time-series sink attached to every engine (may be null).
  obs::TimeSeriesSink* series = nullptr;
  double series_period = 100.0;
};

// Validates, expands the grid (axis-major over the non-`once` variants in
// declaration order, then the `once` variants), and fans the cells across
// a SweepRunner.  Every cell rebuilds its topology, workload, and engine
// from the scenario's fixed seeds, so the results are bit-identical to the
// legacy bespoke benches at any thread count.
util::Result<ScenarioRunResult> RunScenario(
    const Scenario& scenario, const ScenarioRunOptions& options = {});

// Re-times `jobs` in place for the online arrival regimes (pure,
// order/payload-preserving; exposed for tests).  No-op for batch/poisson.
void ShapeArrivals(const ArrivalConfig& arrivals,
                   std::vector<workload::JobSpec>* jobs);

}  // namespace svc::sim
