// Parallel replica runner for simulation sweeps.
//
// The paper's evaluation (Figs. 5-10) is a grid of independent
// (parameter, seed) simulation runs; SweepRunner fans that grid across a
// work-stealing thread pool while keeping the output *bit-identical* to a
// serial run:
//
//   * every replica owns its Engine, NetworkManager, and Rng, so there is
//     no shared mutable state between tasks (allocators are const and use
//     thread-local scratch);
//   * results land in a slot indexed by the task's position, so the caller
//     sees them in submission order regardless of completion order;
//   * per-replica seeds come from ReplicaSeed(), a SplitMix64 derivation,
//     so replica k's RNG stream is a pure function of (base seed, k) and
//     never depends on scheduling.
//
// threads == 1 runs the tasks inline on the calling thread (the serial
// baseline); threads == 0 uses every hardware thread.  Submission is
// throttled off ThreadPool::queue_depth() (the threadpool/queue_depth
// gauge): at most ~4 queued tasks per worker, so huge grids don't sit
// materialized in the pool's queues.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace svc::sim {

// Seed for replica `index` of a sweep keyed by `base`: two rounds of
// SplitMix64 so that adjacent indices (and adjacent bases) give
// uncorrelated, platform-independent streams.
uint64_t ReplicaSeed(uint64_t base, uint64_t index);

class SweepRunner {
 public:
  explicit SweepRunner(int threads = 0);
  ~SweepRunner();

  // Worker count actually in use (1 when running inline).
  int num_threads() const { return threads_; }

  // Runs every task and returns results in input order.  T must be
  // default-constructible and movable (all Sim result types are).
  template <typename T>
  std::vector<T> Run(std::vector<std::function<T()>> tasks) {
    std::vector<T> results(tasks.size());
    std::vector<std::function<void()>> wrapped;
    wrapped.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      wrapped.push_back([&results, &tasks, i] { results[i] = tasks[i](); });
    }
    RunAll(wrapped);
    return results;
  }

  // Runs every closure; blocks until all have finished.
  void RunAll(const std::vector<std::function<void()>>& tasks);

 private:
  int threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // created on first parallel run
};

}  // namespace svc::sim
