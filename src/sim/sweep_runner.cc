#include "sim/sweep_runner.h"

#include <condition_variable>
#include <mutex>

#include "obs/metrics.h"

namespace svc::sim {

uint64_t ReplicaSeed(uint64_t base, uint64_t index) {
  // SplitMix64 finalizer (Steele, Lea & Flood), applied to base + index and
  // then once more so sequential indices diverge in every bit.
  auto mix = [](uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return mix(mix(base) + index);
}

SweepRunner::SweepRunner(int threads)
    : threads_(threads == 0 ? util::ThreadPool::HardwareThreads()
                            : threads) {
  if (threads_ < 1) threads_ = 1;
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::RunAll(const std::vector<std::function<void()>>& tasks) {
  if (threads_ == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<util::ThreadPool>(threads_);
  // Submission backpressure, sized off the pool's own queue-depth signal
  // (the one the threadpool/queue_depth gauge exports): keep at most a few
  // tasks queued per worker instead of flooding the pool with the whole
  // grid.  A 100k-replica sweep then holds ~4*threads closures in flight
  // rather than 100k, and the gauge stays a meaningful saturation signal.
  // Pacing cannot change outputs: results are slot-indexed and every
  // replica's seed is position-derived.
  const int64_t max_depth = static_cast<int64_t>(threads_) * 4;
  std::mutex mu;
  std::condition_variable drained;
  for (const auto& task : tasks) {
    {
      std::unique_lock<std::mutex> lock(mu);
      if (pool_->queue_depth() >= max_depth) {
        SVC_METRIC_INC("sweep/throttled");
        // Safe to wait: >= 4*threads tasks are queued, so completions (and
        // their notifies) keep coming until the depth falls below the cap.
        drained.wait(lock,
                     [&] { return pool_->queue_depth() < max_depth; });
      }
    }
    pool_->Submit([&task, &mu, &drained] {
      task();
      { std::lock_guard<std::mutex> lock(mu); }
      drained.notify_one();
    });
  }
  pool_->Wait();
}

}  // namespace svc::sim
