#include "sim/sweep_runner.h"

namespace svc::sim {

uint64_t ReplicaSeed(uint64_t base, uint64_t index) {
  // SplitMix64 finalizer (Steele, Lea & Flood), applied to base + index and
  // then once more so sequential indices diverge in every bit.
  auto mix = [](uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return mix(mix(base) + index);
}

SweepRunner::SweepRunner(int threads)
    : threads_(threads == 0 ? util::ThreadPool::HardwareThreads()
                            : threads) {
  if (threads_ < 1) threads_ = 1;
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::RunAll(const std::vector<std::function<void()>>& tasks) {
  if (threads_ == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<util::ThreadPool>(threads_);
  for (const auto& task : tasks) pool_->Submit(task);
  pool_->Wait();
}

}  // namespace svc::sim
