// Max-min fair bandwidth allocation with per-flow demand caps
// (progressive filling / water-filling).
//
// Every simulated second the engine hands each flow a desired rate (its
// source's data-generation draw, clipped by the hypervisor rate limit for
// deterministic abstractions) and this module computes the rates the
// network actually delivers: the unique max-min fair allocation where no
// flow exceeds its desired rate and no link its capacity.
//
// Algorithm: classic progressive filling with two freeze rules.
//   1. Any unfrozen flow whose desired rate is at or below the current
//      bottleneck share is demand-limited: it freezes at its desire.
//      (Freezing such a flow can only *raise* link shares, so a whole batch
//      can be frozen per scan.)
//   2. Otherwise the bottleneck link saturates: every unfrozen flow through
//      it freezes at the bottleneck share.
// Each round freezes at least one flow or saturates one link, so the loop
// terminates in O(#links + #batches) rounds.  Flows with an empty path
// (both endpoints on one machine) bypass the network entirely.
//
// Incremental reuse: between simulator ticks the flow *set* usually does
// not change (no admissions or completions), and under deterministic rate
// enforcement the desires often repeat bit-for-bit.  The scratch therefore
// caches the per-link flow lists (rebuilt only when the caller signals a
// set change) and the desire-sorted order (re-sorted only when a desire
// actually changed).  Both caches are pure memoization: the produced rates
// are bit-identical to a from-scratch solve — tests/maxmin_incremental_test
// cross-checks this under randomized churn.
#pragma once

#include <vector>

#include "topology/topology.h"

namespace svc::sim {

struct SimFlow {
  // Capacity-array indices of the links on the flow's path (empty =
  // intra-machine).  The engine uses Topology::PathLinksDirected encodings
  // (one capacity slot per link direction); tests may use any indexing —
  // the allocator is agnostic as long as `capacity` is indexed the same way.
  std::vector<int32_t> links;
  double desired = 0;  // offered rate this step, Mbps
  double rate = 0;     // output: delivered rate, Mbps
};

// Reusable scratch buffers so the per-second call does not allocate.
class MaxMinScratch {
 public:
  explicit MaxMinScratch(int num_vertices);

  // Computes flow.rate for every flow.  `capacity[v]` is the capacity of
  // vertex v's uplink (index 0 / root unused).
  //
  // `flows_changed` is the caller's signal that the flow set may differ
  // from the previous call (membership, order, or any `links` vector).
  // Pass false ONLY when the flows vector is element-for-element the same
  // as last time (desires may differ): the scratch then reuses its cached
  // per-link flow lists, and skips the desire sort too when every desire
  // is bit-identical.  Passing true is always safe.
  void Allocate(std::vector<SimFlow>& flows,
                const std::vector<double>& capacity,
                bool flows_changed = true);

 private:
  // Rebuilds flows_on_ / active_links_ / order-membership from `flows`.
  void RebuildTopologyCaches(const std::vector<SimFlow>& flows);

  std::vector<double> remaining_;           // per link
  std::vector<int> count_;                  // unfrozen flows per link
  std::vector<std::vector<int>> flows_on_;  // per link: flows crossing it
  std::vector<topology::VertexId> active_links_;
  std::vector<int> order_;  // networked flow indices sorted by desired
  std::vector<char> frozen_;

  // Incremental-reuse state.
  std::vector<char> networked_;      // flow has a non-empty path
  std::vector<double> last_desired_; // desires seen by the last call
  bool have_topology_cache_ = false;
  bool have_order_cache_ = false;
};

}  // namespace svc::sim
