// Result records for the two evaluation scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/ecdf.h"
#include "stats/moments.h"

namespace svc::sim {

// One finished job's timeline.
struct JobRecord {
  int64_t id = 0;
  double arrival_time = 0;
  double start_time = 0;   // when the allocation succeeded
  double finish_time = 0;  // max(compute done, last flow done)
  double running_time() const { return finish_time - start_time; }
  double waiting_time() const { return start_time - arrival_time; }
};

// Bandwidth-outage accounting: an outage is a (link, second) pair where the
// offered demand exceeded the link capacity (so some flow was throttled).
// The paper's constraint (1) bounds the per-link outage probability by
// epsilon; OutageRate() is the empirical aggregate over all loaded links.
struct OutageStats {
  int64_t outage_link_seconds = 0;
  int64_t busy_link_seconds = 0;
  double OutageRate() const {
    return busy_link_seconds == 0
               ? 0.0
               : static_cast<double>(outage_link_seconds) / busy_link_seconds;
  }
};

struct BatchResult {
  double total_completion_time = 0;  // makespan of the batch
  std::vector<JobRecord> jobs;       // completed jobs
  int64_t unallocatable_jobs = 0;    // skipped (could never fit even empty)
  double simulated_seconds = 0;
  OutageStats outage;
  // Level of the subtree each accepted placement fit in (0 = one machine):
  // the locality metric the lowest-subtree rule optimizes.
  std::vector<int> placement_levels;

  // --- Fault plane (SimConfig.faults; same semantics as OnlineResult) ---
  int64_t faults_injected = 0;
  int64_t fault_recoveries = 0;
  int64_t tenants_affected = 0;
  int64_t tenants_recovered = 0;
  int64_t tenants_evicted = 0;
  int64_t tenants_switched = 0;  // recovered by activating a backup group
  int64_t planned_drains = 0;    // drain events applied
  int64_t tenants_migrated = 0;  // moved off a machine by a planned drain
  OutageStats failure_outage;
  OutageStats steady_outage() const {
    return {outage.outage_link_seconds - failure_outage.outage_link_seconds,
            outage.busy_link_seconds - failure_outage.busy_link_seconds};
  }
  std::vector<double> recovery_latency_us;

  // Mean running time per job, the Fig. 6 statistic.
  double MeanRunningTime() const;
  double MeanPlacementLevel() const;
};

struct OnlineResult {
  std::vector<JobRecord> jobs;  // accepted & completed jobs
  int64_t accepted = 0;
  int64_t rejected = 0;
  double simulated_seconds = 0;
  OutageStats outage;
  std::vector<int> placement_levels;  // see BatchResult

  // Sampled at every job arrival (paper Sections VI-B2/B3).
  std::vector<int> concurrency_samples;
  std::vector<double> max_occupancy_samples;
  // Worst reserved-but-idle backup fraction across links, sampled at every
  // arrival when survivable admission is on: the protection tax actually
  // held in reserve (0 when no backups exist).
  std::vector<double> backup_share_samples;

  // --- Fault plane (SimConfig.faults) ---
  int64_t faults_injected = 0;
  int64_t fault_recoveries = 0;
  int64_t tenants_affected = 0;   // placements touched by some fault
  int64_t tenants_recovered = 0;  // re-admitted (reallocated or patched)
  int64_t tenants_evicted = 0;    // released for good, with a reason code
  int64_t tenants_switched = 0;   // recovered by activating a backup group
  int64_t planned_drains = 0;     // drain events applied
  int64_t tenants_migrated = 0;   // moved off a machine by a planned drain
  // Outage accounting restricted to ticks where at least one element was
  // down.  `outage` above keeps the overall totals, so the steady-epoch
  // share — where the paper's epsilon bound must still hold — is derived.
  OutageStats failure_outage;
  OutageStats steady_outage() const {
    return {outage.outage_link_seconds - failure_outage.outage_link_seconds,
            outage.busy_link_seconds - failure_outage.busy_link_seconds};
  }
  // Wall-clock latency of each HandleFault call, in microseconds.  The one
  // nondeterministic output of the fault plane; excluded from bit-identical
  // replay comparisons.
  std::vector<double> recovery_latency_us;

  double RejectionRate() const {
    const int64_t total = accepted + rejected;
    return total == 0 ? 0.0 : static_cast<double>(rejected) / total;
  }
  double MeanConcurrency() const;
  double MeanRunningTime() const;
  double MeanPlacementLevel() const;
};

}  // namespace svc::sim
