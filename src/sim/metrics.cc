#include "sim/metrics.h"

namespace svc::sim {

double BatchResult::MeanRunningTime() const {
  if (jobs.empty()) return 0;
  double sum = 0;
  for (const JobRecord& job : jobs) sum += job.running_time();
  return sum / static_cast<double>(jobs.size());
}

namespace {
double MeanOf(const std::vector<int>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (int v : values) sum += v;
  return sum / static_cast<double>(values.size());
}
}  // namespace

double BatchResult::MeanPlacementLevel() const {
  return MeanOf(placement_levels);
}

double OnlineResult::MeanPlacementLevel() const {
  return MeanOf(placement_levels);
}

double OnlineResult::MeanConcurrency() const {
  if (concurrency_samples.empty()) return 0;
  double sum = 0;
  for (int sample : concurrency_samples) sum += sample;
  return sum / static_cast<double>(concurrency_samples.size());
}

double OnlineResult::MeanRunningTime() const {
  if (jobs.empty()) return 0;
  double sum = 0;
  for (const JobRecord& job : jobs) sum += job.running_time();
  return sum / static_cast<double>(jobs.size());
}

}  // namespace svc::sim
