#include "sim/max_min.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace svc::sim {

MaxMinScratch::MaxMinScratch(int num_vertices) {
  remaining_.resize(num_vertices);
  count_.resize(num_vertices);
  flows_on_.resize(num_vertices);
}

void MaxMinScratch::RebuildTopologyCaches(const std::vector<SimFlow>& flows) {
  for (topology::VertexId link : active_links_) {
    flows_on_[link].clear();
  }
  active_links_.clear();
  const int n = static_cast<int>(flows.size());
  networked_.assign(n, 0);
  for (int f = 0; f < n; ++f) {
    if (flows[f].links.empty()) continue;
    networked_[f] = 1;
    for (topology::VertexId link : flows[f].links) {
      if (flows_on_[link].empty()) active_links_.push_back(link);
      flows_on_[link].push_back(f);
    }
  }
}

void MaxMinScratch::Allocate(std::vector<SimFlow>& flows,
                             const std::vector<double>& capacity,
                             bool flows_changed) {
  SVC_TRACE_SPAN("maxmin/solve");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const int n = static_cast<int>(flows.size());

  if (flows_changed || !have_topology_cache_) {
    SVC_METRIC_INC("maxmin/cold_solves");
    RebuildTopologyCaches(flows);
    have_topology_cache_ = true;
    have_order_cache_ = false;
    if (obs::MetricsEnabled()) {
      // Mean flows crossing an active link — a congestion/sharing signal
      // the registry exposes alongside the solve counters.
      size_t incidences = 0;
      for (topology::VertexId link : active_links_) {
        incidences += flows_on_[link].size();
      }
      SVC_METRIC_GAUGE_SET(
          "maxmin/flows_per_link",
          active_links_.empty()
              ? 0.0
              : static_cast<double>(incidences) / active_links_.size());
    }
  } else {
    SVC_METRIC_INC("maxmin/incremental_solves");
  }

  // The sorted order depends only on the desires (and the flow set, which
  // the topology cache already pins): re-sort only when a desire changed.
  bool desires_same =
      have_order_cache_ && static_cast<int>(last_desired_.size()) == n;
  if (desires_same) {
    for (int f = 0; f < n; ++f) {
      if (flows[f].desired != last_desired_[f]) {
        desires_same = false;
        break;
      }
    }
  }
  if (!desires_same) {
    last_desired_.resize(n);
    for (int f = 0; f < n; ++f) last_desired_[f] = flows[f].desired;
  }

  frozen_.assign(n, 0);
  int unfrozen = 0;
  for (int f = 0; f < n; ++f) {
    SimFlow& flow = flows[f];
    flow.rate = 0;
    if (!networked_[f] || flow.desired <= 0) {
      // No network on the path (or nothing to send): the flow gets its
      // desire outright.
      flow.rate = std::max(0.0, flow.desired);
      frozen_[f] = 1;
    } else {
      ++unfrozen;
    }
  }

  // Per-call link state.  flows_on_ may include flows frozen above (their
  // desire dropped to zero since the last rebuild); they simply do not
  // count toward the link's unfrozen population.
  for (topology::VertexId link : active_links_) {
    remaining_[link] = capacity[link];
    count_[link] = 0;
  }
  for (int f = 0; f < n; ++f) {
    if (frozen_[f]) continue;
    for (topology::VertexId link : flows[f].links) ++count_[link];
  }

  if (!desires_same) {
    // Flow indices ascending by desired rate; the front of this order is
    // the candidate set for demand-limited freezing.
    order_.clear();
    for (int f = 0; f < n; ++f) {
      if (!frozen_[f]) order_.push_back(f);
    }
    std::sort(order_.begin(), order_.end(), [&](int lhs, int rhs) {
      return flows[lhs].desired < flows[rhs].desired;
    });
    have_order_cache_ = true;
  }
  size_t next_demand = 0;

  auto freeze = [&](int f, double rate) {
    SimFlow& flow = flows[f];
    flow.rate = rate;
    frozen_[f] = 1;
    --unfrozen;
    for (topology::VertexId link : flow.links) {
      remaining_[link] -= rate;
      if (remaining_[link] < 0) remaining_[link] = 0;  // fp guard
      --count_[link];
    }
  };

  while (unfrozen > 0) {
    // Current bottleneck share over links that still carry unfrozen flows.
    double level = kInf;
    topology::VertexId bottleneck = topology::kNoVertex;
    for (topology::VertexId link : active_links_) {
      if (count_[link] == 0) continue;
      const double share = remaining_[link] / count_[link];
      if (share < level) {
        level = share;
        bottleneck = link;
      }
    }
    assert(bottleneck != topology::kNoVertex);

    // Rule 1: batch-freeze demand-limited flows.  Freezing a flow with
    // desired <= level only raises link shares, so one pass is safe.
    bool any_demand_frozen = false;
    while (next_demand < order_.size()) {
      const int f = order_[next_demand];
      if (frozen_[f]) {
        ++next_demand;
        continue;
      }
      if (flows[f].desired > level) break;
      freeze(f, flows[f].desired);
      ++next_demand;
      any_demand_frozen = true;
    }
    if (any_demand_frozen) continue;  // shares changed; recompute level

    // Rule 2: saturate the bottleneck link.
    for (int f : flows_on_[bottleneck]) {
      if (!frozen_[f]) freeze(f, level);
    }
  }
}

}  // namespace svc::sim
