#include "sim/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "sim/sweep_runner.h"
#include "stats/rng.h"

namespace svc::sim {

namespace {

std::string Num(double v) {
  std::string s = std::to_string(v);
  // Trim trailing zeros for readable error messages (std::to_string pads to
  // six decimals).
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

// True when the element named by a scripted event also has a random renewal
// stream under this config, i.e. it can fail even without a scripted
// failure.
bool HasRandomStream(const topology::Topology& topo, const FaultConfig& config,
                     const FaultEvent& e) {
  if (e.kind == core::FaultKind::kMachine) {
    return config.machine_mtbf_seconds > 0;
  }
  // Random link faults are only generated for non-machine, non-root
  // vertices (machine faults cover machine uplinks).
  return config.link_mtbf_seconds > 0 && e.vertex != topo.root() &&
         !topo.is_machine(e.vertex);
}

// Alternating up/down renewal process for one element, emitted until the
// horizon.  A failure whose repair would land past the horizon still gets
// its recovery event dropped — the element simply stays down to the end.
void EmitElementEvents(topology::VertexId vertex, core::FaultKind kind,
                       double mtbf, double mttr, uint64_t seed, double horizon,
                       std::vector<FaultEvent>& out) {
  stats::Rng rng(ReplicaSeed(seed, static_cast<uint64_t>(vertex)));
  double t = rng.Exponential(mtbf);
  while (t < horizon) {
    out.push_back({t, vertex, kind, /*fail=*/true});
    const double repair = t + rng.Exponential(mttr);
    if (repair >= horizon) break;
    out.push_back({repair, vertex, kind, /*fail=*/false});
    t = repair + rng.Exponential(mtbf);
  }
}

}  // namespace

util::Status ValidateFaultConfig(const topology::Topology& topo,
                                 const FaultConfig& config) {
  if (config.machine_mtbf_seconds < 0 || config.link_mtbf_seconds < 0) {
    return {util::ErrorCode::kInvalidArgument,
            "MTBF must be >= 0 (machine_mtbf_seconds=" +
                Num(config.machine_mtbf_seconds) + ", link_mtbf_seconds=" +
                Num(config.link_mtbf_seconds) + ")"};
  }
  if ((config.machine_mtbf_seconds > 0 || config.link_mtbf_seconds > 0) &&
      config.mttr_seconds <= 0) {
    return {util::ErrorCode::kInvalidArgument,
            "mttr_seconds must be > 0 when an MTBF is set (mttr_seconds=" +
                Num(config.mttr_seconds) + ")"};
  }
  if (config.horizon_seconds < 0) {
    return {util::ErrorCode::kInvalidArgument,
            "horizon_seconds must be >= 0 (got " +
                Num(config.horizon_seconds) + ")"};
  }
  for (size_t i = 0; i < config.scripted.size(); ++i) {
    const FaultEvent& e = config.scripted[i];
    const std::string where = "scripted event " + std::to_string(i);
    if (e.vertex <= topo.root() || e.vertex >= topo.num_vertices()) {
      return {util::ErrorCode::kInvalidArgument,
              where + " names invalid vertex " + std::to_string(e.vertex) +
                  " (must be a non-root vertex < " +
                  std::to_string(topo.num_vertices()) + ")"};
    }
    if (e.kind == core::FaultKind::kMachine && !topo.is_machine(e.vertex)) {
      return {util::ErrorCode::kInvalidArgument,
              where + " is a machine fault on non-machine vertex " +
                  std::to_string(e.vertex)};
    }
    if (e.drain && (e.kind != core::FaultKind::kMachine || !e.fail)) {
      return {util::ErrorCode::kInvalidArgument,
              where + " sets drain on a " +
                  (e.fail ? std::string("link event")
                          : std::string("recovery event")) +
                  "; drains only apply to machine failures"};
    }
    if (!e.fail && !HasRandomStream(topo, config, e)) {
      // A recovery only makes sense for an element that failed: require an
      // earlier-or-simultaneous scripted failure of the same element (the
      // tie case is legal because failures sort before recoveries).
      bool failed_before = false;
      for (const FaultEvent& f : config.scripted) {
        if (f.fail && f.vertex == e.vertex && f.kind == e.kind &&
            f.time <= e.time) {
          failed_before = true;
          break;
        }
      }
      if (!failed_before) {
        return {util::ErrorCode::kInvalidArgument,
                where + " is a scripted recovery for vertex " +
                    std::to_string(e.vertex) + " which never failed"};
      }
    }
  }
  return util::Status::Ok();
}

std::vector<FaultEvent> BuildFaultSchedule(const topology::Topology& topo,
                                           const FaultConfig& config) {
  const util::Status valid = ValidateFaultConfig(topo, config);
  if (!valid.ok()) {
    assert(false && "invalid FaultConfig passed to BuildFaultSchedule");
    return {};
  }
  std::vector<FaultEvent> schedule;
  if (config.machine_mtbf_seconds > 0) {
    for (topology::VertexId machine : topo.machines()) {
      EmitElementEvents(machine, core::FaultKind::kMachine,
                        config.machine_mtbf_seconds, config.mttr_seconds,
                        config.seed, config.horizon_seconds, schedule);
    }
  }
  if (config.link_mtbf_seconds > 0) {
    for (topology::VertexId v = 1; v < topo.num_vertices(); ++v) {
      if (topo.is_machine(v)) continue;  // machine faults cover their uplinks
      EmitElementEvents(v, core::FaultKind::kLink, config.link_mtbf_seconds,
                        config.mttr_seconds, config.seed,
                        config.horizon_seconds, schedule);
    }
  }
  schedule.insert(schedule.end(), config.scripted.begin(),
                  config.scripted.end());
  // Total order: ties between elements at one instant resolve by vertex id,
  // and a same-vertex fail sorts before its recovery.  This is what makes
  // the merged schedule (and everything downstream) replayable.
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.vertex != b.vertex) return a.vertex < b.vertex;
              return a.fail > b.fail;
            });
  return schedule;
}

void AppendRackPowerEvent(const topology::Topology& topo,
                          topology::VertexId rack, double time,
                          double outage_seconds,
                          std::vector<FaultEvent>* out) {
  for (topology::VertexId m : topo.MachinesUnder(rack)) {
    out->push_back({time, m, core::FaultKind::kMachine, /*fail=*/true});
    if (outage_seconds > 0) {
      out->push_back(
          {time + outage_seconds, m, core::FaultKind::kMachine,
           /*fail=*/false});
    }
  }
}

void AppendTorLossEvent(topology::VertexId rack, double time,
                        double outage_seconds, std::vector<FaultEvent>* out) {
  out->push_back({time, rack, core::FaultKind::kLink, /*fail=*/true});
  if (outage_seconds > 0) {
    out->push_back(
        {time + outage_seconds, rack, core::FaultKind::kLink, /*fail=*/false});
  }
}

void AppendPlannedDrain(topology::VertexId machine, double time,
                        double outage_seconds, std::vector<FaultEvent>* out) {
  out->push_back({time, machine, core::FaultKind::kMachine, /*fail=*/true,
                  /*drain=*/true});
  if (outage_seconds > 0) {
    out->push_back({time + outage_seconds, machine, core::FaultKind::kMachine,
                    /*fail=*/false});
  }
}

}  // namespace svc::sim
