#include "sim/fault_injector.h"

#include <algorithm>
#include <cassert>

#include "sim/sweep_runner.h"
#include "stats/rng.h"

namespace svc::sim {

namespace {

// Alternating up/down renewal process for one element, emitted until the
// horizon.  A failure whose repair would land past the horizon still gets
// its recovery event dropped — the element simply stays down to the end.
void EmitElementEvents(topology::VertexId vertex, core::FaultKind kind,
                       double mtbf, double mttr, uint64_t seed, double horizon,
                       std::vector<FaultEvent>& out) {
  stats::Rng rng(ReplicaSeed(seed, static_cast<uint64_t>(vertex)));
  double t = rng.Exponential(mtbf);
  while (t < horizon) {
    out.push_back({t, vertex, kind, /*fail=*/true});
    const double repair = t + rng.Exponential(mttr);
    if (repair >= horizon) break;
    out.push_back({repair, vertex, kind, /*fail=*/false});
    t = repair + rng.Exponential(mtbf);
  }
}

}  // namespace

std::vector<FaultEvent> BuildFaultSchedule(const topology::Topology& topo,
                                           const FaultConfig& config) {
  assert((config.machine_mtbf_seconds <= 0 && config.link_mtbf_seconds <= 0) ||
         config.mttr_seconds > 0);
  std::vector<FaultEvent> schedule;
  if (config.machine_mtbf_seconds > 0) {
    for (topology::VertexId machine : topo.machines()) {
      EmitElementEvents(machine, core::FaultKind::kMachine,
                        config.machine_mtbf_seconds, config.mttr_seconds,
                        config.seed, config.horizon_seconds, schedule);
    }
  }
  if (config.link_mtbf_seconds > 0) {
    for (topology::VertexId v = 1; v < topo.num_vertices(); ++v) {
      if (topo.is_machine(v)) continue;  // machine faults cover their uplinks
      EmitElementEvents(v, core::FaultKind::kLink, config.link_mtbf_seconds,
                        config.mttr_seconds, config.seed,
                        config.horizon_seconds, schedule);
    }
  }
  schedule.insert(schedule.end(), config.scripted.begin(),
                  config.scripted.end());
  // Total order: ties between elements at one instant resolve by vertex id,
  // and a same-vertex fail sorts before its recovery.  This is what makes
  // the merged schedule (and everything downstream) replayable.
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.vertex != b.vertex) return a.vertex < b.vertex;
              return a.fail > b.fail;
            });
  return schedule;
}

}  // namespace svc::sim
