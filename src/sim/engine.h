// Time-stepped flow-level datacenter simulator (paper Section VI).
//
// Jobs occupy VM slots from allocation until max(Tc, Tn): Tc is the job's
// compute time, Tn the time its last flow finishes.  Every simulated second
// each task draws a fresh data-generation rate from N(mu_d, sigma_d^2)
// (rectified at 0); deterministic abstractions (mean-VC / percentile-VC)
// cap that rate at the reserved bandwidth (hypervisor rate limiting), SVC
// leaves it uncapped and the network's max-min fair sharing arbitrates —
// the "statistical sharing" the paper's framework relies on.
//
// Two scenarios:
//   RunBatch  — all jobs queued FIFO at t=0; whenever a job completes the
//               topmost job(s) that fit are started (paper VI-B1).
//   RunOnline — Poisson arrivals; a job that cannot be allocated at its
//               arrival instant is rejected (paper VI-B2).  Concurrency and
//               max-occupancy are sampled at every arrival.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "enforce/token_bucket.h"
#include "obs/time_series.h"
#include "sim/event_log.h"
#include "sim/fault_injector.h"
#include "sim/max_min.h"
#include "sim/metrics.h"
#include "stats/rng.h"
#include "svc/admission_pipeline.h"
#include "svc/allocator.h"
#include "svc/manager.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace svc::sim {

// How a job's tasks are paired into flows.  Every task is a source and a
// destination for exactly one flow (paper's workload model) — i.e. the
// pairing is a fixed-point-free permutation of the tasks.
enum class FlowPattern {
  // dst(i) drawn as a random derangement: the expected traffic crossing a
  // link that splits the job m / N-m is ~2*m*(N-m)/N * mu, which matches
  // the hose-model demand min(m, N-m)*mu the SVC reservation is based on.
  kRandomPermutation,
  // dst(i) = (i+1) mod N: a ring (pipeline-shaped jobs).  Only ~2 flows
  // cross any link under contiguous placement — far below the hose bound,
  // making the reservation very conservative for such jobs.
  kRing,
};

// How deterministic reservations are enforced at the hypervisor (see
// enforce/token_bucket.h).  SVC flows are never rate limited either way.
enum class Enforcement {
  kHardCap,      // idealized limiter: rate clipped at B every second
  kTokenBucket,  // realistic limiter: bursts above B ride on saved credit
};

struct SimConfig {
  workload::Abstraction abstraction = workload::Abstraction::kSvc;
  double epsilon = 0.05;           // SVC risk factor
  const core::Allocator* allocator = nullptr;  // required
  // Admission-wide policy knobs installed on the manager (survivable
  // admission etc., see core::AdmissionOptions).
  core::AdmissionOptions admission;
  double time_step = 1.0;          // seconds; the paper redraws rates at 1 s
  double max_seconds = 2e6;        // safety stop, flagged in the result log
  uint64_t seed = 1;
  // Concurrent admission pipeline (docs/CONCURRENCY.md): > 1 admits
  // same-instant arrival groups (RunOnline) and FIFO windows (RunBatch)
  // through core::AdmissionPipeline with that many speculation workers,
  // under the deterministic commit discipline — every decision, event, RNG
  // draw, and sample is bit-identical to the serial path (0 or 1).
  int admission_workers = 0;
  // Max FIFO window RunBatch hands the pipeline per admission round.
  int admission_window = 128;
  // Cross-window pipelining: RunBatch hands the pipeline up to
  // admission_window * admission_lookahead queued requests per AdmitBatch
  // call, with a commit-plane barrier every admission_window requests —
  // window N+1's speculation overlaps window N's commit drain.  1 = one
  // window per call (the PR-5 behavior).  Decisions are identical either
  // way (every barrier placement yields the serial decision sequence).
  int admission_lookahead = 1;
  // Aggregation-level commit shards for the pipeline (see
  // PipelineConfig::shards): 0 = unsharded; >= 1 installs a ShardMap on
  // the manager and runs per-shard commit workers when admission_workers
  // > 1.  Bit-identical to the serial path for any value.
  int admission_shards = 0;
  // Worker/shard core-affinity placement for the admission pipeline
  // (PipelineConfig::placement); kNone leaves the OS scheduler in charge.
  util::PlacementPolicy placement = util::PlacementPolicy::kNone;
  bool sample_occupancy = true;    // record MaxOccupancy at arrivals
  FlowPattern flow_pattern = FlowPattern::kRandomPermutation;
  // Count bandwidth outages: (link, second) pairs where offered demand
  // exceeded capacity, over (link, second) pairs carrying any demand.
  // This measures the paper's constraint (1) end to end.
  bool measure_outage = true;
  Enforcement enforcement = Enforcement::kHardCap;
  // Token-bucket depth as seconds of the reservation rate (B * this).
  double burst_seconds = 5.0;
  // Reserved percentile for Abstraction::kPercentileVc (paper: 0.95).
  double vc_quantile = 0.95;
  // Fault plane (RunOnline and RunBatch): seeded failure schedule +
  // recovery policy.  Horizon defaults to max_seconds when left 0.  Fault
  // events are applied before admissions at the same instant; fault events
  // mark the flow set dirty, so the steady-tick fast path never replays
  // stale rates across a capacity change.
  FaultConfig faults;
  // Optional structured event log (borrowed; must outlive the run).
  EventLog* events = nullptr;
  // Optional JSONL time-series sink (borrowed; must outlive the run).  Every
  // `series_period` simulated seconds the engine appends one sample line
  // with the active-job/flow counts, busy/outage link counts, the mean and
  // max offered link utilization of that tick (requires measure_outage),
  // and the ledger's max occupancy.  The sink may be shared by concurrent
  // sweep replicas; lines carry the engine's seed to tell streams apart.
  obs::TimeSeriesSink* series = nullptr;
  double series_period = 100.0;  // simulated seconds between samples
  // Cross-check the incremental Step() fast path (cached max-min rates and
  // outage counts) against a from-scratch recompute every tick.  Costs a
  // full re-solve per step, so it defaults to off except in Debug builds
  // (see the SVC_SIM_CHECK_INCREMENTAL define in the top-level CMakeLists).
#ifdef SVC_SIM_CHECK_INCREMENTAL
  bool check_incremental = true;
#else
  bool check_incremental = false;
#endif
};

class Engine {
 public:
  Engine(const topology::Topology& topo, SimConfig config);

  BatchResult RunBatch(const std::vector<workload::JobSpec>& jobs);
  OnlineResult RunOnline(std::vector<workload::JobSpec> jobs);

  const core::NetworkManager& manager() const { return manager_; }

 private:
  struct ActiveJob {
    workload::JobSpec spec;
    double start_time = 0;
    double compute_done = 0;
    int flows_left = 0;
    double last_flow_finish = 0;
  };

  // Per-flow state parallel to the SimFlow rate-allocation records.
  struct FlowMeta {
    int64_t job_id = 0;
    double remaining_mbits = 0;
    double rate_mean = 0;
    double rate_stddev = 0;
    double rate_cap = 0;
    enforce::TokenBucket bucket{0, 0};  // used when enforcement=kTokenBucket
    workload::RateDistribution distribution =
        workload::RateDistribution::kNormal;
    // Underlying-normal parameters when distribution == kLogNormal.
    double log_mu = 0;
    double log_sigma = 0;
    // Endpoint task indices + the flow's ECMP hash, kept so a recovered
    // tenant's flows can be re-pathed onto its new placement without any
    // fresh RNG draws (seed-stream stability under faults).
    int src_vm = 0;
    int dst_vm = 0;
    uint64_t ecmp_hash = 0;
  };

  // The admission request a job spec maps to under the configured
  // abstraction (pure; shared by the serial and pipelined admit paths).
  core::Request MakeRequest(const workload::JobSpec& spec) const;

  // Attempts admission; on success registers flows and the active record.
  bool TryStart(const workload::JobSpec& spec, double now);

  // Second half of TryStart, shared with the pipeline's decision callback:
  // consumes an admission decision — on success registers the flows (all
  // RNG draws happen here, in decision order) and the active record; on
  // failure logs allocator inconsistencies.  Returns result.ok().
  bool FinishStart(const workload::JobSpec& spec, double now,
                   util::Result<core::Placement>& result);

  // True if the job could not be placed even on an empty datacenter (e.g.
  // per-VM effective demand above the machine link): such jobs can never
  // run and must not block the FIFO queue until the fabric drains.
  bool UnallocatableEvenEmpty(const workload::JobSpec& spec);

  // Advances one time step; returns ids of jobs that completed at `now+dt`.
  void Step(double now, std::vector<int64_t>& completed);

  // Asserts that the current flow rates equal a from-scratch max-min solve
  // (SimConfig.check_incremental).
  void CheckIncrementalRates();

  // Applies every scheduled fault/recovery event with time <= now: drives
  // the manager's HandleFault/HandleRecovery, drains/restores the cable
  // capacities the max-min solver sees, re-paths the flows of recovered
  // tenants, and drops the flows and active records of evicted jobs.
  // Accounting lands in the fault accumulator members (both run modes
  // share this path).  Returns true iff any event applied — capacity
  // changed, so queued FIFO admissions are worth retrying.
  bool ApplyFaultEvents(double now);

  // Drains (up=false) or restores (up=true) every cable of vertex's uplink.
  void SetUplinkCables(topology::VertexId vertex, bool up);

  // Removes all sim-side state of an evicted job (flows, active record).
  void EvictJob(int64_t job_id, double now);

  const topology::Topology* topo_;
  SimConfig config_;
  core::NetworkManager manager_;
  // Pristine state used only for UnallocatableEvenEmpty checks.
  core::NetworkManager empty_manager_;
  // Non-null iff config_.admission_workers > 1 (deterministic discipline).
  std::unique_ptr<core::AdmissionPipeline> pipeline_;
  MaxMinScratch scratch_;
  std::vector<double> capacity_;  // uplink capacity per vertex
  stats::Rng rng_;

  std::vector<SimFlow> flows_;
  std::vector<FlowMeta> meta_;
  std::unordered_map<int64_t, ActiveJob> active_;

  std::vector<int> placement_levels_;  // locality of accepted placements

  // Outage accounting scratch + totals (see SimConfig.measure_outage).
  std::vector<double> offered_load_;
  std::vector<char> link_touched_;
  std::vector<topology::VertexId> loaded_links_;
  int64_t outage_link_seconds_ = 0;
  int64_t busy_link_seconds_ = 0;

  // Incremental-step state: when the flow set and every desired rate are
  // unchanged since the previous tick, the max-min rates and the per-tick
  // outage counts are unchanged too, so Step() reuses them instead of
  // re-solving (the steady-state fast path).
  bool flows_dirty_ = true;          // flows added/removed since last solve
  int64_t cached_busy_links_ = 0;    // loaded links in the last outage pass
  int64_t cached_outage_links_ = 0;  // over-capacity links in that pass
  std::vector<SimFlow> check_flows_;  // scratch for CheckIncrementalRates

  // Fault-plane state (RunOnline): the pre-built schedule, a cursor into
  // it, and whether any element is currently down (failure epoch — outage
  // accounting is split on this flag).
  std::vector<FaultEvent> fault_schedule_;
  size_t next_fault_ = 0;
  bool failure_epoch_ = false;
  int64_t failure_outage_link_seconds_ = 0;
  int64_t failure_busy_link_seconds_ = 0;
  // Fault accounting shared by RunOnline and RunBatch (copied into the
  // result record when the run finishes).
  int64_t faults_injected_ = 0;
  int64_t fault_recoveries_ = 0;
  int64_t tenants_affected_ = 0;
  int64_t tenants_recovered_ = 0;
  int64_t tenants_evicted_ = 0;
  int64_t tenants_switched_ = 0;
  int64_t planned_drains_ = 0;
  int64_t tenants_migrated_ = 0;
  std::vector<double> recovery_latency_us_;

  // Re-paths every flow of `job_id` onto the tenant's current placement
  // with the original ECMP hashes (no fresh RNG draws).
  void RepathJob(int64_t job_id);

  // Time-series sampler state (SimConfig.series): utilization aggregates of
  // the last non-steady outage pass, replayed on steady ticks.
  double next_sample_time_ = 0;
  double cached_util_sum_ = 0;
  double cached_util_max_ = 0;

  // Appends one JSONL sample to config_.series (call once per period).
  void AppendSeriesSample(double now);
};

}  // namespace svc::sim
