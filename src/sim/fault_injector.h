// Seeded failure schedules for the simulator's fault plane.
//
// Random faults follow per-element renewal processes: each element draws
// alternating exponential up-times (mean MTBF) and down-times (mean MTTR)
// from its OWN rng seeded by ReplicaSeed(seed, vertex).  The per-element
// streams make the schedule independent of how many other elements churn —
// and, merged with a total (time, vertex, fail) order, bit-identical across
// runs and thread counts.  Scripted one-shot events ride on top for
// targeted drills.
#pragma once

#include <cstdint>
#include <vector>

#include "svc/manager.h"
#include "topology/topology.h"

namespace svc::sim {

// One scheduled fault-plane event, applied by Engine::RunOnline when
// simulated time reaches `time`.
struct FaultEvent {
  double time = 0;
  topology::VertexId vertex = topology::kNoVertex;
  core::FaultKind kind = core::FaultKind::kLink;
  bool fail = true;  // false = recovery
};

struct FaultConfig {
  // Mean up-time (seconds) before a machine / fabric-link failure; 0
  // disables that element class.  Fabric links are the uplinks of
  // non-machine vertices (a machine fault already takes its uplink down).
  double machine_mtbf_seconds = 0;
  double link_mtbf_seconds = 0;
  // Mean down-time; must be > 0 when either MTBF is set.
  double mttr_seconds = 0;
  // Random events are generated in [0, horizon_seconds).
  double horizon_seconds = 0;
  uint64_t seed = 1;
  core::RecoveryPolicy policy = core::RecoveryPolicy::kReallocate;
  // Scripted one-shot events, merged into the random schedule.
  std::vector<FaultEvent> scripted;

  bool enabled() const {
    return machine_mtbf_seconds > 0 || link_mtbf_seconds > 0 ||
           !scripted.empty();
  }
};

// Expands the config into one time-sorted schedule (ties broken by vertex,
// failures before recoveries).  Pure function of (topo, config): the same
// inputs yield the same bytes.
std::vector<FaultEvent> BuildFaultSchedule(const topology::Topology& topo,
                                           const FaultConfig& config);

}  // namespace svc::sim
