// Seeded failure schedules for the simulator's fault plane.
//
// Random faults follow per-element renewal processes: each element draws
// alternating exponential up-times (mean MTBF) and down-times (mean MTTR)
// from its OWN rng seeded by ReplicaSeed(seed, vertex).  The per-element
// streams make the schedule independent of how many other elements churn —
// and, merged with a total (time, vertex, fail) order, bit-identical across
// runs and thread counts.  Scripted one-shot events ride on top for
// targeted drills.
#pragma once

#include <cstdint>
#include <vector>

#include "svc/manager.h"
#include "topology/topology.h"
#include "util/result.h"

namespace svc::sim {

// One scheduled fault-plane event, applied by Engine::RunOnline when
// simulated time reaches `time`.
struct FaultEvent {
  double time = 0;
  topology::VertexId vertex = topology::kNoVertex;
  core::FaultKind kind = core::FaultKind::kLink;
  bool fail = true;   // false = recovery
  // Planned drain (machine fail events only): migrate the machine's tenants
  // off — switchover preferred — BEFORE taking it down, so a covered drain
  // causes no outage.  The recovery event reopens the machine as usual.
  bool drain = false;
};

struct FaultConfig {
  // Mean up-time (seconds) before a machine / fabric-link failure; 0
  // disables that element class.  Fabric links are the uplinks of
  // non-machine vertices (a machine fault already takes its uplink down).
  double machine_mtbf_seconds = 0;
  double link_mtbf_seconds = 0;
  // Mean down-time; must be > 0 when either MTBF is set.
  double mttr_seconds = 0;
  // Random events are generated in [0, horizon_seconds).
  double horizon_seconds = 0;
  uint64_t seed = 1;
  core::RecoveryPolicy policy = core::RecoveryPolicy::kReallocate;
  // Scripted one-shot events, merged into the random schedule.
  std::vector<FaultEvent> scripted;

  bool enabled() const {
    return machine_mtbf_seconds > 0 || link_mtbf_seconds > 0 ||
           !scripted.empty();
  }
};

// Validates a FaultConfig against a topology.  Errors (with messages naming
// the offending field/event) instead of silent misbehavior for: an MTBF set
// with mttr_seconds <= 0; negative rates or horizon; scripted events naming
// out-of-range or root vertices; machine-kind events on non-machine
// vertices; drains on non-machine or recovery events; and scripted
// recoveries for elements that never failed (no earlier-or-simultaneous
// scripted failure, and the element's random stream disabled).
util::Status ValidateFaultConfig(const topology::Topology& topo,
                                 const FaultConfig& config);

// Expands the config into one time-sorted schedule (ties broken by vertex,
// failures before recoveries).  Pure function of (topo, config): the same
// inputs yield the same bytes.  The config must pass ValidateFaultConfig.
std::vector<FaultEvent> BuildFaultSchedule(const topology::Topology& topo,
                                           const FaultConfig& config);

// --- Correlated failure scenarios (scripted multi-element groups) ---
//
// Each helper appends deterministic scripted events to `out`; merge order is
// irrelevant because BuildFaultSchedule re-sorts into the documented
// (time, vertex, fail) total order.  `outage_seconds <= 0` means the
// elements stay down for the rest of the run.

// Whole-rack power event: every machine under `rack` fails at `time` and
// (optionally) recovers together at time + outage_seconds.
void AppendRackPowerEvent(const topology::Topology& topo,
                          topology::VertexId rack, double time,
                          double outage_seconds, std::vector<FaultEvent>* out);

// ToR loss: the uplink of `rack` fails — machines below keep their
// intra-rack connectivity but lose the core.
void AppendTorLossEvent(topology::VertexId rack, double time,
                        double outage_seconds, std::vector<FaultEvent>* out);

// Planned drain: migrate tenants off `machine` at `time`, then take it
// down; recovery after outage_seconds reopens it.
void AppendPlannedDrain(topology::VertexId machine, double time,
                        double outage_seconds, std::vector<FaultEvent>* out);

}  // namespace svc::sim
