// Fig. 8: number of concurrent jobs (sampled at every arrival) at 60% load,
// SVC(eps=0.05) vs percentile-VC.
//
// Paper shape: SVC consistently ~10% above percentile-VC.
//
// Thin shim over the "fig8" registry scenario (sim/scenario.h).
#include "bench_common.h"

#include <algorithm>

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig8_concurrency: concurrent jobs at fixed load (Fig. 8)");
  bench::CommonOptions common(flags);
  double& load = flags.Double("load", 0.6, "datacenter load");
  int64_t& series = flags.Int("series-samples", 12,
                              "number of time-series points to print");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("fig8");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.admission.epsilon = common.epsilon();
  scenario.sweep.values = {load};
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);
  const sim::OnlineResult& svc_result =
      sim::FindCell(result, "SVC", 0)->online_result;
  const sim::OnlineResult& pct_result =
      sim::FindCell(result, "percentile-VC", 0)->online_result;

  // Time series (downsampled to `series` points over the arrival sequence).
  util::Table table({"arrival#", "SVC(e=0.05)", "percentile-VC"});
  const size_t n = std::min(svc_result.concurrency_samples.size(),
                            pct_result.concurrency_samples.size());
  for (int64_t s = 0; s < series; ++s) {
    const size_t index = n * s / series;
    table.AddRow({std::to_string(index),
                  std::to_string(svc_result.concurrency_samples[index]),
                  std::to_string(pct_result.concurrency_samples[index])});
  }
  bench::EmitTable("Fig. 8: concurrent jobs at 60% load (series samples)",
                   table, csv);

  util::Table summary({"metric", "SVC(e=0.05)", "percentile-VC", "SVC gain"});
  const double svc_mean = svc_result.MeanConcurrency();
  const double pct_mean = pct_result.MeanConcurrency();
  summary.AddRow({"mean concurrent jobs", util::Table::Num(svc_mean, 2),
                  util::Table::Num(pct_mean, 2),
                  util::Table::Num(100.0 * (svc_mean / pct_mean - 1.0), 1) +
                      "%"});
  summary.AddRow(
      {"rejection rate", util::Table::Num(svc_result.RejectionRate(), 3),
       util::Table::Num(pct_result.RejectionRate(), 3), ""});
  bench::EmitTable("Fig. 8 summary", summary, csv);
  return 0;
}
