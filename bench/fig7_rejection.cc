// Fig. 7: percentage of rejected requests vs datacenter load (Poisson
// arrivals, reject-on-arrival admission).
//
// Paper shape: mean-VC < SVC(0.05) < SVC(0.02) < percentile-VC at every
// load; all near zero at 20% load.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("fig7_rejection: rejection rate vs load (Fig. 7)");
  bench::CommonOptions common(flags);
  std::string& loads =
      flags.String("loads", "0.2,0.4,0.6,0.8", "datacenter load sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());

  const std::vector<double> load_list = util::ParseDoubleList(loads);
  const struct {
    workload::Abstraction abstraction;
    double epsilon;
  } kConfigs[] = {{workload::Abstraction::kMeanVc, 0.05},
                  {workload::Abstraction::kPercentileVc, 0.05},
                  {workload::Abstraction::kSvc, 0.05},
                  {workload::Abstraction::kSvc, 0.02}};

  // Every cell regenerates its own workload from the fixed seed, so the
  // grid is embarrassingly parallel with order-independent output.
  std::vector<std::function<double()>> cells;
  for (const double& load : load_list) {
    for (const auto& config : kConfigs) {
      cells.push_back([&load, &config, &common, &topo] {
        workload::WorkloadGenerator gen(common.WorkloadConfig(),
                                        common.seed());
        auto jobs = gen.GenerateOnline(load, topo.total_slots());
        const auto result = bench::RunOnline(
            topo, std::move(jobs), config.abstraction,
            bench::AllocatorFor(config.abstraction), config.epsilon,
            common.seed() + 1);
        return 100.0 * result.RejectionRate();
      });
    }
  }
  const std::vector<double> rejection =
      bench::RunCells(common.threads(), std::move(cells));

  util::Table table({"load", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (size_t p = 0; p < load_list.size(); ++p) {
    table.AddRow({util::Table::Num(load_list[p], 2),
                  util::Table::Num(rejection[4 * p + 0], 2),
                  util::Table::Num(rejection[4 * p + 1], 2),
                  util::Table::Num(rejection[4 * p + 2], 2),
                  util::Table::Num(rejection[4 * p + 3], 2)});
  }
  bench::EmitTable("Fig. 7: rejected requests (%) vs load", table, csv);
  return 0;
}
