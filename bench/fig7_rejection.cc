// Fig. 7: percentage of rejected requests vs datacenter load (Poisson
// arrivals, reject-on-arrival admission).
//
// Paper shape: mean-VC < SVC(0.05) < SVC(0.02) < percentile-VC at every
// load; all near zero at 20% load.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("fig7_rejection: rejection rate vs load (Fig. 7)");
  bench::CommonOptions common(flags);
  std::string& loads =
      flags.String("loads", "0.2,0.4,0.6,0.8", "datacenter load sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());
  util::Table table({"load", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (double load : util::ParseDoubleList(loads)) {
    auto rejection = [&](workload::Abstraction abstraction, double epsilon) {
      workload::WorkloadGenerator gen(common.WorkloadConfig(), common.seed());
      auto jobs = gen.GenerateOnline(load, topo.total_slots());
      const auto result = bench::RunOnline(
          topo, std::move(jobs), abstraction,
          bench::AllocatorFor(abstraction), epsilon, common.seed() + 1);
      return 100.0 * result.RejectionRate();
    };
    table.AddRow(
        {util::Table::Num(load, 2),
         util::Table::Num(rejection(workload::Abstraction::kMeanVc, 0.05), 2),
         util::Table::Num(
             rejection(workload::Abstraction::kPercentileVc, 0.05), 2),
         util::Table::Num(rejection(workload::Abstraction::kSvc, 0.05), 2),
         util::Table::Num(rejection(workload::Abstraction::kSvc, 0.02), 2)});
  }
  bench::EmitTable("Fig. 7: rejected requests (%) vs load", table, csv);
  return 0;
}
