// Fig. 7: percentage of rejected requests vs datacenter load (Poisson
// arrivals, reject-on-arrival admission).
//
// Paper shape: mean-VC < SVC(0.05) < SVC(0.02) < percentile-VC at every
// load; all near zero at 20% load.
//
// Thin shim over the "fig7" registry scenario (sim/scenario.h); the cell
// grid runs in the same axis-major order as the bespoke bench did, so the
// decision-provenance stream is unchanged.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags("fig7_rejection: rejection rate vs load (Fig. 7)");
  bench::CommonOptions common(flags);
  std::string& loads =
      flags.String("loads", "0.2,0.4,0.6,0.8", "datacenter load sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("fig7");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.sweep.values = util::ParseDoubleList(loads);
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  util::Table table({"load", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (size_t p = 0; p < scenario.sweep.values.size(); ++p) {
    const int axis = static_cast<int>(p);
    auto rejection = [&](const char* label) {
      return 100.0 *
             sim::FindCell(result, label, axis)->online_result.RejectionRate();
    };
    table.AddRow({util::Table::Num(scenario.sweep.values[p], 2),
                  util::Table::Num(rejection("mean-VC"), 2),
                  util::Table::Num(rejection("percentile-VC"), 2),
                  util::Table::Num(rejection("SVC(e=0.05)"), 2),
                  util::Table::Num(rejection("SVC(e=0.02)"), 2)});
  }
  bench::EmitTable("Fig. 7: rejected requests (%) vs load", table, csv);
  return 0;
}
