// Ablation: single-path tree vs trunked (multi-rooted) fabric with
// per-flow ECMP hashing, at identical AGGREGATE capacities.
//
// The admission framework sees only aggregate link capacity, so the
// allocator behaves identically; what changes is packet-level reality:
// per-flow hashing can land several elephant flows on one cable of a trunk
// while others idle, creating transient outages the aggregate model does
// not predict.  This quantifies how much headroom multi-rooted fabrics owe
// to hashing imbalance — the gap between the paper's "no path diversity"
// simulation and a production Clos.
//
// Thin shim over the "ablation_ecmp" registry scenario (sim/scenario.h).
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "ablation_ecmp: single-path vs ECMP-trunked fabric at equal "
      "aggregate capacity");
  bench::CommonOptions common(flags);
  double& load = flags.Double("load", 0.7, "datacenter load");
  std::string& trunks = flags.String("trunks", "1,2,4,8",
                                     "trunk widths for ToR/agg uplinks");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("ablation_ecmp");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.arrivals.load = load;
  scenario.admission.epsilon = common.epsilon();
  scenario.sweep.values.clear();
  for (int64_t width : util::ParseIntList(trunks)) {
    scenario.sweep.values.push_back(static_cast<double>(width));
  }
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  util::Table table({"trunk width", "outage rate", "rejection %",
                     "mean running time (s)"});
  for (size_t p = 0; p < scenario.sweep.values.size(); ++p) {
    const sim::OnlineResult& cell =
        sim::FindCell(result, "SVC", static_cast<int>(p))->online_result;
    table.AddRow({std::to_string(
                      static_cast<int64_t>(scenario.sweep.values[p])),
                  util::Table::Num(cell.outage.OutageRate(), 5),
                  util::Table::Num(100 * cell.RejectionRate(), 2),
                  util::Table::Num(cell.MeanRunningTime(), 1)});
  }
  bench::EmitTable(
      "Ablation: ECMP trunking (same aggregate capacity, SVC eps=" +
          util::Table::Num(common.epsilon(), 2) + ")",
      table, csv);
  return 0;
}
