// Ablation: single-path tree vs trunked (multi-rooted) fabric with
// per-flow ECMP hashing, at identical AGGREGATE capacities.
//
// The admission framework sees only aggregate link capacity, so the
// allocator behaves identically; what changes is packet-level reality:
// per-flow hashing can land several elephant flows on one cable of a trunk
// while others idle, creating transient outages the aggregate model does
// not predict.  This quantifies how much headroom multi-rooted fabrics owe
// to hashing imbalance — the gap between the paper's "no path diversity"
// simulation and a production Clos.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "ablation_ecmp: single-path vs ECMP-trunked fabric at equal "
      "aggregate capacity");
  bench::CommonOptions common(flags);
  double& load = flags.Double("load", 0.7, "datacenter load");
  std::string& trunks = flags.String("trunks", "1,2,4,8",
                                     "trunk widths for ToR/agg uplinks");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  // Each cell builds its own (per-width) topology, so nothing is shared.
  const std::vector<int64_t> width_list = util::ParseIntList(trunks);
  std::vector<std::function<sim::OnlineResult()>> cells;
  for (const int64_t& width : width_list) {
    cells.push_back([&width, &common, &load] {
      topology::ThreeTierConfig tconfig = common.TopologyConfig();
      tconfig.tor_trunk = static_cast<int>(width);
      tconfig.agg_trunk = static_cast<int>(width);
      const topology::Topology topo = topology::BuildThreeTier(tconfig);
      workload::WorkloadGenerator gen(common.WorkloadConfig(), common.seed());
      auto jobs = gen.GenerateOnline(load, topo.total_slots());
      return bench::RunOnline(
          topo, std::move(jobs), workload::Abstraction::kSvc,
          bench::AllocatorFor(workload::Abstraction::kSvc), common.epsilon(),
          common.seed() + 1);
    });
  }
  sim::SweepRunner runner(common.threads());
  const auto results = runner.Run(std::move(cells));

  util::Table table({"trunk width", "outage rate", "rejection %",
                     "mean running time (s)"});
  for (size_t i = 0; i < width_list.size(); ++i) {
    const sim::OnlineResult& result = results[i];
    table.AddRow({std::to_string(width_list[i]),
                  util::Table::Num(result.outage.OutageRate(), 5),
                  util::Table::Num(100 * result.RejectionRate(), 2),
                  util::Table::Num(result.MeanRunningTime(), 1)});
  }
  bench::EmitTable(
      "Ablation: ECMP trunking (same aggregate capacity, SVC eps=" +
          util::Table::Num(common.epsilon(), 2) + ")",
      table, csv);
  return 0;
}
