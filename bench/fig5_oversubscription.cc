// Fig. 5: total completion time of a batch of tenant jobs vs network
// oversubscription, for mean-VC, percentile-VC, SVC(eps=0.05) and
// SVC(eps=0.02).
//
// Paper shape: mean-VC lowest (most concurrency), percentile-VC highest
// (exclusive 95th-percentile reservations), SVC in between with smaller
// epsilon costing more; all grow with oversubscription.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig5_oversubscription: batch makespan vs oversubscription (Fig. 5)");
  bench::CommonOptions common(flags);
  std::string& oversubs =
      flags.String("oversubs", "1,2,3,4", "oversubscription sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);

  util::Table table({"oversub", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (double oversub : util::ParseDoubleList(oversubs)) {
    topology::ThreeTierConfig tconfig = common.TopologyConfig();
    tconfig.oversubscription = oversub;
    const topology::Topology topo = topology::BuildThreeTier(tconfig);
    workload::WorkloadGenerator gen(common.WorkloadConfig(), common.seed());
    const auto jobs = gen.GenerateBatch();

    auto makespan = [&](workload::Abstraction abstraction, double epsilon) {
      const auto result = bench::RunBatch(
          topo, jobs, abstraction, bench::AllocatorFor(abstraction), epsilon,
          common.seed() + 1);
      return result.total_completion_time;
    };
    table.AddRow(
        {util::Table::Num(oversub, 0),
         util::Table::Num(makespan(workload::Abstraction::kMeanVc, 0.05), 0),
         util::Table::Num(
             makespan(workload::Abstraction::kPercentileVc, 0.05), 0),
         util::Table::Num(makespan(workload::Abstraction::kSvc, 0.05), 0),
         util::Table::Num(makespan(workload::Abstraction::kSvc, 0.02), 0)});
  }
  bench::EmitTable("Fig. 5: total completion time (s) of batched jobs",
                   table, csv);
  return 0;
}
