// Fig. 5: total completion time of a batch of tenant jobs vs network
// oversubscription, for mean-VC, percentile-VC, SVC(eps=0.05) and
// SVC(eps=0.02).
//
// Paper shape: mean-VC lowest (most concurrency), percentile-VC highest
// (exclusive 95th-percentile reservations), SVC in between with smaller
// epsilon costing more; all grow with oversubscription.
#include "bench_common.h"

#include <deque>

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig5_oversubscription: batch makespan vs oversubscription (Fig. 5)");
  bench::CommonOptions common(flags);
  std::string& oversubs =
      flags.String("oversubs", "1,2,3,4", "oversubscription sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  // One topology + workload per sweep point, shared read-only by the four
  // abstraction cells; every cell owns its Engine, so the grid fans out
  // across the sweep runner with output identical to a serial run.
  struct Point {
    double oversub;
    topology::Topology topo;
    std::vector<workload::JobSpec> jobs;
  };
  std::deque<Point> points;
  for (double oversub : util::ParseDoubleList(oversubs)) {
    topology::ThreeTierConfig tconfig = common.TopologyConfig();
    tconfig.oversubscription = oversub;
    workload::WorkloadGenerator gen(common.WorkloadConfig(), common.seed());
    points.push_back(
        {oversub, topology::BuildThreeTier(tconfig), gen.GenerateBatch()});
  }

  const struct {
    workload::Abstraction abstraction;
    double epsilon;
  } kConfigs[] = {{workload::Abstraction::kMeanVc, 0.05},
                  {workload::Abstraction::kPercentileVc, 0.05},
                  {workload::Abstraction::kSvc, 0.05},
                  {workload::Abstraction::kSvc, 0.02}};

  std::vector<std::function<double()>> cells;
  for (const Point& point : points) {
    for (const auto& config : kConfigs) {
      cells.push_back([&point, &config, &common] {
        return bench::RunBatch(point.topo, point.jobs, config.abstraction,
                               bench::AllocatorFor(config.abstraction),
                               config.epsilon, common.seed() + 1)
            .total_completion_time;
      });
    }
  }
  const std::vector<double> makespans =
      bench::RunCells(common.threads(), std::move(cells));

  util::Table table({"oversub", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (size_t p = 0; p < points.size(); ++p) {
    table.AddRow({util::Table::Num(points[p].oversub, 0),
                  util::Table::Num(makespans[4 * p + 0], 0),
                  util::Table::Num(makespans[4 * p + 1], 0),
                  util::Table::Num(makespans[4 * p + 2], 0),
                  util::Table::Num(makespans[4 * p + 3], 0)});
  }
  bench::EmitTable("Fig. 5: total completion time (s) of batched jobs",
                   table, csv);
  return 0;
}
