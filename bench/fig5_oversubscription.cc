// Fig. 5: total completion time of a batch of tenant jobs vs network
// oversubscription, for mean-VC, percentile-VC, SVC(eps=0.05) and
// SVC(eps=0.02).
//
// Paper shape: mean-VC lowest (most concurrency), percentile-VC highest
// (exclusive 95th-percentile reservations), SVC in between with smaller
// epsilon costing more; all grow with oversubscription.
//
// Thin shim over the "fig5" registry scenario (sim/scenario.h): the grid —
// topology, workload, sweep axis, variant columns — lives in the registry;
// this binary only applies command-line overrides and formats the table.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig5_oversubscription: batch makespan vs oversubscription (Fig. 5)");
  bench::CommonOptions common(flags);
  std::string& oversubs =
      flags.String("oversubs", "1,2,3,4", "oversubscription sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("fig5");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.sweep.values = util::ParseDoubleList(oversubs);
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  util::Table table({"oversub", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (size_t p = 0; p < scenario.sweep.values.size(); ++p) {
    const int axis = static_cast<int>(p);
    auto makespan = [&](const char* label) {
      return sim::FindCell(result, label, axis)->batch.total_completion_time;
    };
    table.AddRow({util::Table::Num(scenario.sweep.values[p], 0),
                  util::Table::Num(makespan("mean-VC"), 0),
                  util::Table::Num(makespan("percentile-VC"), 0),
                  util::Table::Num(makespan("SVC(e=0.05)"), 0),
                  util::Table::Num(makespan("SVC(e=0.02)"), 0)});
  }
  bench::EmitTable("Fig. 5: total completion time (s) of batched jobs",
                   table, csv);
  return 0;
}
