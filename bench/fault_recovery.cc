// Fault-recovery sweep (robustness experiment, not a paper figure): runs
// the online SVC simulation under seeded failure churn, sweeping the
// machine MTBF against the three recovery policies, and reports for each
// cell the fault/recovery volume, the tenants recovered vs evicted, the
// recovery latency percentiles, and the outage rate split into failure
// and steady epochs.
//
// The headline property: the *steady-epoch* outage rate — the fraction of
// (link, second) pairs over capacity while every element was healthy —
// must stay within the admission bound epsilon regardless of how hard the
// fault plane churns.  Outages during failure epochs are expected (a
// drained link sheds its capacity out from under admitted tenants);
// outages after recovery would mean HandleFault/HandleRecovery corrupted
// ledger state.  `--check` turns that property into an exit code for CI.
//
// Survivability (docs/ROBUSTNESS.md): two extra cell families run with
// survivable admission on — kReallocate (pay the protection tax, recover
// reactively) and kSwitchover (activate the pre-reserved backup groups) —
// so one report shows the tax (rejection-rate delta, reserved backup
// share) against the payoff (switchovers, recovery latency).  A
// deterministic sigma=0 drill (`fault_drill_switchover`) injects one
// backup-covered machine failure; its steady-epoch outage must be exactly
// 0 and every affected tenant must switch over, which `--check` enforces
// along with a bit-identical replay of a survivable cell through the
// sharded admission pipeline.  --correlated adds scripted multi-element
// groups (rack power, ToR loss, planned drain) to every cell.
//
// Thin shim over the "fault_recovery" / "fault_correlated" /
// "fault_drill" registry scenarios (sim/scenario.h): the cell grid, the
// correlated-event schedule, and the drill's scripted auto-targeted
// failure all live in the registry; this binary applies overrides,
// formats the report, and runs the --check assertions.
//
// Writes BENCH_FAULT.json (override with --out) in the BENCH_PERF.json
// schema (plus the scenario name/config-hash header), so two snapshots
// diff with tools/bench_diff.py.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace svc;

// Quantile of an unsorted sample set (nearest-rank); 0 when empty.
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double Max(const std::vector<double>& samples) {
  double max = 0;
  for (double s : samples) max = std::max(max, s);
  return max;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags(
      "fault_recovery: failure churn vs recovery policy "
      "(writes BENCH_FAULT.json)");
  bench::CommonOptions common(flags);
  double& load = flags.Double("load", 0.7, "datacenter load");
  std::string& mtbfs =
      flags.String("mtbfs", "300,900,2700", "machine MTBF values (seconds)");
  double& link_mtbf_factor = flags.Double(
      "link-mtbf-factor", 3.0,
      "fabric-link MTBF as a multiple of the machine MTBF (0 disables)");
  double& mttr = flags.Double("mttr", 60, "mean time to repair (seconds)");
  double& horizon =
      flags.Double("horizon", 20000, "failure-injection horizon (seconds)");
  bool& check = flags.Bool(
      "check", false,
      "exit non-zero unless every steady-epoch outage rate <= epsilon, the "
      "switchover drill has zero steady outage, and a survivable cell "
      "replays bit-identically through the sharded pipeline");
  bool& correlated = flags.Bool(
      "correlated", false,
      "add scripted correlated events to every cell: rack power at "
      "0.25*horizon, ToR loss at 0.5*horizon, planned drain at 0.75*horizon");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  std::string& out = flags.String("out", "BENCH_FAULT.json", "output path");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario =
      *sim::FindScenario(correlated ? "fault_correlated" : "fault_recovery");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.arrivals.load = load;
  scenario.admission.epsilon = common.epsilon();
  scenario.max_seconds = 4 * horizon;
  scenario.faults.link_mtbf_factor = link_mtbf_factor;
  scenario.faults.mttr_seconds = mttr;
  scenario.faults.horizon_seconds = horizon;
  scenario.faults.seed = common.seed() + 2;
  scenario.sweep.values = util::ParseDoubleList(mtbfs);
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  // Report rows in the legacy policy-major order; the grid itself ran
  // axis-major (cells are independent, values identical either way).
  const struct {
    const char* label;   // registry variant label (and JSON record tag)
    const char* policy;  // displayed recovery policy
    bool survivable;
  } kFamilies[] = {
      {"reallocate", "reallocate", false},
      {"patch", "patch", false},
      {"evict", "evict", false},
      {"survivable_reallocate", "reallocate", true},
      {"switchover", "switchover", true},
  };

  util::Table table({"policy", "surv", "mtbf", "faults", "recovered",
                     "switched", "evicted", "rej rate", "steady outage",
                     "failure outage", "p50 us", "p99 us"});
  std::vector<bench::BenchRecord> records;
  bool steady_ok = true;
  for (const auto& family : kFamilies) {
    for (size_t m = 0; m < scenario.sweep.values.size(); ++m) {
      const double mtbf = scenario.sweep.values[m];
      const sim::OnlineResult& r =
          sim::FindCell(result, family.label, static_cast<int>(m))
              ->online_result;
      const sim::OutageStats steady = r.steady_outage();
      const double steady_rate = steady.OutageRate();
      const double failure_rate = r.failure_outage.OutageRate();
      const double p50 = Percentile(r.recovery_latency_us, 0.50);
      const double p99 = Percentile(r.recovery_latency_us, 0.99);
      const double faults_per_sec =
          r.simulated_seconds > 0 ? r.faults_injected / r.simulated_seconds
                                  : 0.0;
      // Reserved-vs-used protection: the share of backup bandwidth actually
      // held (worst link, sampled at arrivals) against the fraction of
      // affected tenants whose recovery came from a backup activation.
      const double backup_share_mean = Mean(r.backup_share_samples);
      const double backup_share_max = Max(r.backup_share_samples);
      const double backup_used_fraction =
          r.tenants_affected > 0
              ? static_cast<double>(r.tenants_switched) / r.tenants_affected
              : 0.0;
      if (steady_rate > common.epsilon()) steady_ok = false;
      table.AddRow({family.policy, family.survivable ? "on" : "off",
                    util::Table::Num(mtbf, 0),
                    std::to_string(r.faults_injected),
                    std::to_string(r.tenants_recovered),
                    std::to_string(r.tenants_switched),
                    std::to_string(r.tenants_evicted),
                    util::Table::Num(r.RejectionRate(), 4),
                    util::Table::Num(steady_rate, 5),
                    util::Table::Num(failure_rate, 5),
                    util::Table::Num(p50, 1), util::Table::Num(p99, 1)});
      const std::string name = std::string("fault_") + family.label +
                               "_mtbf" + util::Table::Num(mtbf, 0);
      records.push_back({name, r.faults_injected, 0.0, 0.0,
                         {{"faults_per_sec", faults_per_sec},
                          {"steady_outage_rate", steady_rate},
                          {"failure_outage_rate", failure_rate},
                          {"recovery_p50_us", p50},
                          {"recovery_p99_us", p99},
                          {"rejection_rate", r.RejectionRate()},
                          {"tenants_recovered",
                           static_cast<double>(r.tenants_recovered)},
                          {"tenants_evicted",
                           static_cast<double>(r.tenants_evicted)},
                          {"switchovers",
                           static_cast<double>(r.tenants_switched)},
                          {"planned_drains",
                           static_cast<double>(r.planned_drains)},
                          {"tenants_migrated",
                           static_cast<double>(r.tenants_migrated)},
                          {"backup_share_mean", backup_share_mean},
                          {"backup_share_max", backup_share_max},
                          {"backup_used_fraction", backup_used_fraction}}});
    }
  }
  bench::EmitTable("Fault recovery: failure churn vs recovery policy", table,
                   csv);

  // --- Deterministic switchover drill ---
  //
  // sigma = 0 jobs: every flow offers exactly mu, and since a permutation
  // pairing sends at most min(m, N-m) flows across any link cut (each
  // destination receives exactly one flow), the offered load per direction
  // never exceeds the hose reservation.  One scripted machine failure
  // (auto-targeted at a machine hosting a VM of the first admitted job) is
  // covered by the pre-reserved backup groups, so the run must finish with
  // steady-epoch outage EXACTLY 0, every affected tenant switched over,
  // and no evictions.
  bool drill_ok = true;
  {
    sim::Scenario drill = *sim::FindScenario("fault_drill");
    drill.seed = common.seed();
    drill.admission.epsilon = common.epsilon();
    drill.faults.scripted[1].time = drill.faults.scripted[0].time + mttr;
    const sim::ScenarioRunResult drill_result =
        bench::RunScenarioOrDie(drill, common);
    const sim::OnlineResult& r =
        sim::FindCell(drill_result, "default", -1)->online_result;
    const double steady_rate = r.steady_outage().OutageRate();
    drill_ok = steady_rate == 0.0 && r.tenants_switched > 0 &&
               r.tenants_evicted == 0 &&
               r.tenants_switched == r.tenants_affected;
    std::printf(
        "drill: backup-covered machine failed, %lld affected, %lld switched "
        "over, %lld evicted, steady outage %.6g (%s)\n",
        static_cast<long long>(r.tenants_affected),
        static_cast<long long>(r.tenants_switched),
        static_cast<long long>(r.tenants_evicted), steady_rate,
        drill_ok ? "ok" : "FAIL");
    records.push_back(
        {"fault_drill_switchover", r.tenants_affected, 0.0, 0.0,
         {{"steady_outage_rate", steady_rate},
          {"failure_outage_rate", r.failure_outage.OutageRate()},
          {"switchovers", static_cast<double>(r.tenants_switched)},
          {"tenants_evicted", static_cast<double>(r.tenants_evicted)},
          {"backup_share_max", Max(r.backup_share_samples)}}});
  }

  // --- Bit-identical replay across thread counts ---
  //
  // The first survivable-switchover cell re-run through the sharded
  // admission pipeline (4 workers x 4 shards) must reproduce the serial
  // decision and sample streams byte for byte.
  bool replay_ok = true;
  if (check) {
    const sim::OnlineResult& serial =
        sim::FindCell(result, "switchover", 0)->online_result;
    sim::Scenario piped_scenario = scenario;
    piped_scenario.sweep.values = {scenario.sweep.values.front()};
    piped_scenario.variants = {scenario.variants.back()};  // switchover
    piped_scenario.admission.workers = 4;
    piped_scenario.admission.shards = 4;
    const sim::ScenarioRunResult piped_result =
        bench::RunScenarioOrDie(piped_scenario, common);
    const sim::OnlineResult& piped =
        sim::FindCell(piped_result, "switchover", 0)->online_result;
    replay_ok =
        serial.accepted == piped.accepted &&
        serial.rejected == piped.rejected &&
        serial.faults_injected == piped.faults_injected &&
        serial.tenants_switched == piped.tenants_switched &&
        serial.tenants_evicted == piped.tenants_evicted &&
        serial.outage.outage_link_seconds ==
            piped.outage.outage_link_seconds &&
        serial.outage.busy_link_seconds == piped.outage.busy_link_seconds &&
        serial.max_occupancy_samples == piped.max_occupancy_samples &&
        serial.backup_share_samples == piped.backup_share_samples;
    std::printf("replay: serial vs 4x4 pipeline %s\n",
                replay_ok ? "bit-identical" : "DIVERGED");
  }

  util::JsonWriter w;
  w.BeginObject();
  w.Key("scenario");
  w.BeginObject();
  w.Member("name", scenario.name);
  w.Member("config_hash", sim::ScenarioConfigHash(scenario));
  w.EndObject();
  w.Member("hardware_threads", util::ThreadPool::HardwareThreads());
  w.Member("threads", common.threads());
  w.Member("seed", static_cast<int64_t>(common.seed()));
  w.Member("epsilon", common.epsilon());
  w.Member("mttr_seconds", mttr);
  w.Member("horizon_seconds", horizon);
  bench::AddBenchmarksMember(w, records);
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Collect();
  w.Key("metrics");
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& c : snapshot.counters) w.Member(c.name, c.value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& g : snapshot.gauges) w.Member(g.name, g.value);
  w.EndObject();
  w.EndObject();
  w.EndObject();
  if (!bench::WriteFile(out, w.str() + "\n")) return 1;
  std::printf("wrote %s\n", out.c_str());

  if (check && !steady_ok) {
    std::fprintf(stderr,
                 "FAIL: steady-epoch outage rate exceeded epsilon %.4g\n",
                 common.epsilon());
    return 1;
  }
  if (check && !drill_ok) {
    std::fprintf(stderr,
                 "FAIL: switchover drill had steady outage or evictions\n");
    return 1;
  }
  if (check && !replay_ok) {
    std::fprintf(stderr,
                 "FAIL: survivable cell diverged across thread counts\n");
    return 1;
  }
  if (check) {
    std::printf(
        "check: steady-epoch outage within epsilon; drill clean; replay "
        "bit-identical\n");
  }
  return 0;
}
