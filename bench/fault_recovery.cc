// Fault-recovery sweep (robustness experiment, not a paper figure): runs
// the online SVC simulation under seeded failure churn, sweeping the
// machine MTBF against the three recovery policies, and reports for each
// cell the fault/recovery volume, the tenants recovered vs evicted, the
// recovery latency percentiles, and the outage rate split into failure
// and steady epochs.
//
// The headline property: the *steady-epoch* outage rate — the fraction of
// (link, second) pairs over capacity while every element was healthy —
// must stay within the admission bound epsilon regardless of how hard the
// fault plane churns.  Outages during failure epochs are expected (a
// drained link sheds its capacity out from under admitted tenants);
// outages after recovery would mean HandleFault/HandleRecovery corrupted
// ledger state.  `--check` turns that property into an exit code for CI.
//
// Survivability (docs/ROBUSTNESS.md): two extra cell families run with
// survivable admission on — kReallocate (pay the protection tax, recover
// reactively) and kSwitchover (activate the pre-reserved backup groups) —
// so one report shows the tax (rejection-rate delta, reserved backup
// share) against the payoff (switchovers, recovery latency).  A
// deterministic sigma=0 drill (`fault_drill_switchover`) injects one
// backup-covered machine failure; its steady-epoch outage must be exactly
// 0 and every affected tenant must switch over, which `--check` enforces
// along with a bit-identical replay of a survivable cell through the
// sharded admission pipeline.  --correlated adds scripted multi-element
// groups (rack power, ToR loss, planned drain) to every cell.
//
// Writes BENCH_FAULT.json (override with --out) in the BENCH_PERF.json
// schema, so two snapshots diff with tools/bench_diff.py.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "sim/fault_injector.h"
#include "sim/sweep_runner.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace svc;

// Quantile of an unsorted sample set (nearest-rank); 0 when empty.
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double Max(const std::vector<double>& samples) {
  double max = 0;
  for (double s : samples) max = std::max(max, s);
  return max;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags(
      "fault_recovery: failure churn vs recovery policy "
      "(writes BENCH_FAULT.json)");
  bench::CommonOptions common(flags);
  double& load = flags.Double("load", 0.7, "datacenter load");
  std::string& mtbfs =
      flags.String("mtbfs", "300,900,2700", "machine MTBF values (seconds)");
  double& link_mtbf_factor = flags.Double(
      "link-mtbf-factor", 3.0,
      "fabric-link MTBF as a multiple of the machine MTBF (0 disables)");
  double& mttr = flags.Double("mttr", 60, "mean time to repair (seconds)");
  double& horizon =
      flags.Double("horizon", 20000, "failure-injection horizon (seconds)");
  bool& check = flags.Bool(
      "check", false,
      "exit non-zero unless every steady-epoch outage rate <= epsilon, the "
      "switchover drill has zero steady outage, and a survivable cell "
      "replays bit-identically through the sharded pipeline");
  bool& correlated = flags.Bool(
      "correlated", false,
      "add scripted correlated events to every cell: rack power at "
      "0.25*horizon, ToR loss at 0.5*horizon, planned drain at 0.75*horizon");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  std::string& out = flags.String("out", "BENCH_FAULT.json", "output path");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());
  const core::Allocator& allocator =
      bench::AllocatorFor(workload::Abstraction::kSvc);

  struct Cell {
    core::RecoveryPolicy policy;
    double mtbf;
    bool survivable = false;
  };
  std::vector<Cell> cells;
  for (const core::RecoveryPolicy policy :
       {core::RecoveryPolicy::kReallocate, core::RecoveryPolicy::kPatch,
        core::RecoveryPolicy::kEvict}) {
    for (const double mtbf : util::ParseDoubleList(mtbfs)) {
      cells.push_back({policy, mtbf});
    }
  }
  // Survivable cells: the protection tax with reactive recovery, then the
  // payoff with proactive backup activation.
  for (const core::RecoveryPolicy policy :
       {core::RecoveryPolicy::kReallocate,
        core::RecoveryPolicy::kSwitchover}) {
    for (const double mtbf : util::ParseDoubleList(mtbfs)) {
      cells.push_back({policy, mtbf, /*survivable=*/true});
    }
  }

  // Scripted correlated events layered onto a cell's fault schedule.
  auto add_correlated = [&](sim::FaultConfig& faults) {
    const auto& tors = topo.vertices_at_level(1);
    if (tors.empty()) return;
    sim::AppendRackPowerEvent(topo, tors.front(), 0.25 * horizon, mttr,
                              &faults.scripted);
    sim::AppendTorLossEvent(tors.size() > 1 ? tors[1] : tors.front(),
                            0.5 * horizon, mttr, &faults.scripted);
    sim::AppendPlannedDrain(topo.machines().front(), 0.75 * horizon, mttr,
                            &faults.scripted);
  };

  // Every cell replays the same workload bytes (same generator seed) under
  // its own fault schedule, so columns differ only by the fault plane.
  auto make_config = [&](const Cell& cell) {
    sim::SimConfig config;
    config.abstraction = workload::Abstraction::kSvc;
    config.epsilon = common.epsilon();
    config.allocator = &allocator;
    config.seed = common.seed() + 1;
    config.max_seconds = 4 * horizon;
    config.admission.survivability = cell.survivable;
    config.faults.machine_mtbf_seconds = cell.mtbf;
    config.faults.link_mtbf_seconds =
        link_mtbf_factor > 0 ? link_mtbf_factor * cell.mtbf : 0;
    config.faults.mttr_seconds = mttr;
    config.faults.horizon_seconds = horizon;
    config.faults.seed = common.seed() + 2;
    config.faults.policy = cell.policy;
    if (correlated) add_correlated(config.faults);
    return config;
  };
  auto cell_task = [&](const Cell& cell) {
    return [&, cell] {
      workload::WorkloadGenerator gen(common.WorkloadConfig(),
                                      common.seed());
      auto jobs = gen.GenerateOnline(load, topo.total_slots());
      sim::Engine engine(topo, make_config(cell));
      return engine.RunOnline(std::move(jobs));
    };
  };
  std::vector<std::function<sim::OnlineResult()>> tasks;
  for (const Cell& cell : cells) tasks.push_back(cell_task(cell));
  sim::SweepRunner runner(common.threads());
  const std::vector<sim::OnlineResult> results = runner.Run(std::move(tasks));

  util::Table table({"policy", "surv", "mtbf", "faults", "recovered",
                     "switched", "evicted", "rej rate", "steady outage",
                     "failure outage", "p50 us", "p99 us"});
  std::vector<bench::BenchRecord> records;
  bool steady_ok = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const sim::OnlineResult& r = results[i];
    const sim::OutageStats steady = r.steady_outage();
    const double steady_rate = steady.OutageRate();
    const double failure_rate = r.failure_outage.OutageRate();
    const double p50 = Percentile(r.recovery_latency_us, 0.50);
    const double p99 = Percentile(r.recovery_latency_us, 0.99);
    const double faults_per_sec =
        r.simulated_seconds > 0 ? r.faults_injected / r.simulated_seconds
                                : 0.0;
    // Reserved-vs-used protection: the share of backup bandwidth actually
    // held (worst link, sampled at arrivals) against the fraction of
    // affected tenants whose recovery came from a backup activation.
    const double backup_share_mean = Mean(r.backup_share_samples);
    const double backup_share_max = Max(r.backup_share_samples);
    const double backup_used_fraction =
        r.tenants_affected > 0
            ? static_cast<double>(r.tenants_switched) / r.tenants_affected
            : 0.0;
    if (steady_rate > common.epsilon()) steady_ok = false;
    table.AddRow({core::ToString(cell.policy), cell.survivable ? "on" : "off",
                  util::Table::Num(cell.mtbf, 0),
                  std::to_string(r.faults_injected),
                  std::to_string(r.tenants_recovered),
                  std::to_string(r.tenants_switched),
                  std::to_string(r.tenants_evicted),
                  util::Table::Num(r.RejectionRate(), 4),
                  util::Table::Num(steady_rate, 5),
                  util::Table::Num(failure_rate, 5),
                  util::Table::Num(p50, 1), util::Table::Num(p99, 1)});
    // Legacy cell names are unchanged; the survivable-reallocate family is
    // distinguished from the plain one by prefix (switchover implies
    // survivable admission already).
    const std::string policy_tag =
        cell.survivable && cell.policy == core::RecoveryPolicy::kReallocate
            ? std::string("survivable_reallocate")
            : std::string(core::ToString(cell.policy));
    const std::string name = std::string("fault_") + policy_tag + "_mtbf" +
                             util::Table::Num(cell.mtbf, 0);
    records.push_back({name, r.faults_injected, 0.0, 0.0,
                       {{"faults_per_sec", faults_per_sec},
                        {"steady_outage_rate", steady_rate},
                        {"failure_outage_rate", failure_rate},
                        {"recovery_p50_us", p50},
                        {"recovery_p99_us", p99},
                        {"rejection_rate", r.RejectionRate()},
                        {"tenants_recovered",
                         static_cast<double>(r.tenants_recovered)},
                        {"tenants_evicted",
                         static_cast<double>(r.tenants_evicted)},
                        {"switchovers",
                         static_cast<double>(r.tenants_switched)},
                        {"planned_drains",
                         static_cast<double>(r.planned_drains)},
                        {"tenants_migrated",
                         static_cast<double>(r.tenants_migrated)},
                        {"backup_share_mean", backup_share_mean},
                        {"backup_share_max", backup_share_max},
                        {"backup_used_fraction", backup_used_fraction}}});
  }
  bench::EmitTable("Fault recovery: failure churn vs recovery policy", table,
                   csv);

  // --- Deterministic switchover drill ---
  //
  // sigma = 0 jobs: every flow offers exactly mu, and since a permutation
  // pairing sends at most min(m, N-m) flows across any link cut (each
  // destination receives exactly one flow), the offered load per direction
  // never exceeds the hose reservation.  One scripted machine failure is
  // covered by the pre-reserved backup groups, so the run must finish with
  // steady-epoch outage EXACTLY 0, every affected tenant switched over,
  // and no evictions.
  bool drill_ok = true;
  {
    std::vector<workload::JobSpec> jobs;
    for (int i = 0; i < 8; ++i) {
      workload::JobSpec job;
      job.id = i + 1;
      job.size = 4;
      job.compute_time = 3000;
      job.rate_mean = 100;
      job.rate_stddev = 0;
      job.flow_mbits = 100.0 * 2000;
      job.arrival_time = 0;
      jobs.push_back(job);
    }
    // Probe pass: admissions are deterministic, so the engine reproduces
    // these placements — pick a machine that actually hosts a VM as the
    // fault target.
    topology::VertexId target = topology::kNoVertex;
    {
      core::NetworkManager probe(topo, common.epsilon());
      core::AdmissionOptions options;
      options.survivability = true;
      probe.set_admission_options(options);
      for (const workload::JobSpec& job : jobs) {
        auto placed = probe.Admit(
            workload::MakeRequest(job, workload::Abstraction::kSvc),
            allocator);
        if (placed && target == topology::kNoVertex) {
          target = placed->vm_machine[0];
        }
      }
    }
    if (target == topology::kNoVertex) {
      std::fprintf(stderr, "drill: no job admitted on an empty fabric\n");
      drill_ok = false;
    } else {
      sim::SimConfig config;
      config.abstraction = workload::Abstraction::kSvc;
      config.epsilon = common.epsilon();
      config.allocator = &allocator;
      config.seed = common.seed() + 1;
      config.max_seconds = 4000;
      config.admission.survivability = true;
      config.faults.policy = core::RecoveryPolicy::kSwitchover;
      config.faults.scripted.push_back(
          {500.0, target, core::FaultKind::kMachine, /*fail=*/true});
      config.faults.scripted.push_back(
          {500.0 + mttr, target, core::FaultKind::kMachine, /*fail=*/false});
      sim::Engine engine(topo, config);
      const sim::OnlineResult r = engine.RunOnline(jobs);
      const double steady_rate = r.steady_outage().OutageRate();
      drill_ok = steady_rate == 0.0 && r.tenants_switched > 0 &&
                 r.tenants_evicted == 0 &&
                 r.tenants_switched == r.tenants_affected;
      std::printf(
          "drill: machine %d failed, %lld affected, %lld switched over, "
          "%lld evicted, steady outage %.6g (%s)\n",
          target, static_cast<long long>(r.tenants_affected),
          static_cast<long long>(r.tenants_switched),
          static_cast<long long>(r.tenants_evicted), steady_rate,
          drill_ok ? "ok" : "FAIL");
      records.push_back(
          {"fault_drill_switchover", r.tenants_affected, 0.0, 0.0,
           {{"steady_outage_rate", steady_rate},
            {"failure_outage_rate", r.failure_outage.OutageRate()},
            {"switchovers", static_cast<double>(r.tenants_switched)},
            {"tenants_evicted", static_cast<double>(r.tenants_evicted)},
            {"backup_share_max", Max(r.backup_share_samples)}}});
    }
  }

  // --- Bit-identical replay across thread counts ---
  //
  // The first survivable-switchover cell re-run through the sharded
  // admission pipeline (4 workers x 4 shards) must reproduce the serial
  // decision and sample streams byte for byte.
  bool replay_ok = true;
  if (check) {
    Cell probe_cell{core::RecoveryPolicy::kSwitchover,
                    util::ParseDoubleList(mtbfs).front(),
                    /*survivable=*/true};
    auto run_with = [&](int workers, int shards) {
      workload::WorkloadGenerator gen(common.WorkloadConfig(),
                                      common.seed());
      auto jobs = gen.GenerateOnline(load, topo.total_slots());
      sim::SimConfig config = make_config(probe_cell);
      config.admission_workers = workers;
      config.admission_shards = shards;
      sim::Engine engine(topo, config);
      return engine.RunOnline(std::move(jobs));
    };
    const sim::OnlineResult serial = run_with(0, 0);
    const sim::OnlineResult piped = run_with(4, 4);
    replay_ok =
        serial.accepted == piped.accepted &&
        serial.rejected == piped.rejected &&
        serial.faults_injected == piped.faults_injected &&
        serial.tenants_switched == piped.tenants_switched &&
        serial.tenants_evicted == piped.tenants_evicted &&
        serial.outage.outage_link_seconds ==
            piped.outage.outage_link_seconds &&
        serial.outage.busy_link_seconds == piped.outage.busy_link_seconds &&
        serial.max_occupancy_samples == piped.max_occupancy_samples &&
        serial.backup_share_samples == piped.backup_share_samples;
    std::printf("replay: serial vs 4x4 pipeline %s\n",
                replay_ok ? "bit-identical" : "DIVERGED");
  }

  util::JsonWriter w;
  w.BeginObject();
  w.Member("hardware_threads", util::ThreadPool::HardwareThreads());
  w.Member("threads", common.threads());
  w.Member("seed", static_cast<int64_t>(common.seed()));
  w.Member("epsilon", common.epsilon());
  w.Member("mttr_seconds", mttr);
  w.Member("horizon_seconds", horizon);
  bench::AddBenchmarksMember(w, records);
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Collect();
  w.Key("metrics");
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& c : snapshot.counters) w.Member(c.name, c.value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& g : snapshot.gauges) w.Member(g.name, g.value);
  w.EndObject();
  w.EndObject();
  w.EndObject();
  if (!bench::WriteFile(out, w.str() + "\n")) return 1;
  std::printf("wrote %s\n", out.c_str());

  if (check && !steady_ok) {
    std::fprintf(stderr,
                 "FAIL: steady-epoch outage rate exceeded epsilon %.4g\n",
                 common.epsilon());
    return 1;
  }
  if (check && !drill_ok) {
    std::fprintf(stderr,
                 "FAIL: switchover drill had steady outage or evictions\n");
    return 1;
  }
  if (check && !replay_ok) {
    std::fprintf(stderr,
                 "FAIL: survivable cell diverged across thread counts\n");
    return 1;
  }
  if (check) {
    std::printf(
        "check: steady-epoch outage within epsilon; drill clean; replay "
        "bit-identical\n");
  }
  return 0;
}
