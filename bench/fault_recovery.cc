// Fault-recovery sweep (robustness experiment, not a paper figure): runs
// the online SVC simulation under seeded failure churn, sweeping the
// machine MTBF against the three recovery policies, and reports for each
// cell the fault/recovery volume, the tenants recovered vs evicted, the
// recovery latency percentiles, and the outage rate split into failure
// and steady epochs.
//
// The headline property: the *steady-epoch* outage rate — the fraction of
// (link, second) pairs over capacity while every element was healthy —
// must stay within the admission bound epsilon regardless of how hard the
// fault plane churns.  Outages during failure epochs are expected (a
// drained link sheds its capacity out from under admitted tenants);
// outages after recovery would mean HandleFault/HandleRecovery corrupted
// ledger state.  `--check` turns that property into an exit code for CI.
//
// Writes BENCH_FAULT.json (override with --out) in the BENCH_PERF.json
// schema, so two snapshots diff with tools/bench_diff.py.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "sim/fault_injector.h"
#include "sim/sweep_runner.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace svc;

// Quantile of an unsorted sample set (nearest-rank); 0 when empty.
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags(
      "fault_recovery: failure churn vs recovery policy "
      "(writes BENCH_FAULT.json)");
  bench::CommonOptions common(flags);
  double& load = flags.Double("load", 0.7, "datacenter load");
  std::string& mtbfs =
      flags.String("mtbfs", "300,900,2700", "machine MTBF values (seconds)");
  double& link_mtbf_factor = flags.Double(
      "link-mtbf-factor", 3.0,
      "fabric-link MTBF as a multiple of the machine MTBF (0 disables)");
  double& mttr = flags.Double("mttr", 60, "mean time to repair (seconds)");
  double& horizon =
      flags.Double("horizon", 20000, "failure-injection horizon (seconds)");
  bool& check = flags.Bool(
      "check", false,
      "exit non-zero unless every steady-epoch outage rate <= epsilon");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  std::string& out = flags.String("out", "BENCH_FAULT.json", "output path");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());
  const core::Allocator& allocator =
      bench::AllocatorFor(workload::Abstraction::kSvc);

  struct Cell {
    core::RecoveryPolicy policy;
    double mtbf;
  };
  std::vector<Cell> cells;
  for (const core::RecoveryPolicy policy :
       {core::RecoveryPolicy::kReallocate, core::RecoveryPolicy::kPatch,
        core::RecoveryPolicy::kEvict}) {
    for (const double mtbf : util::ParseDoubleList(mtbfs)) {
      cells.push_back({policy, mtbf});
    }
  }

  // Every cell replays the same workload bytes (same generator seed) under
  // its own fault schedule, so columns differ only by the fault plane.
  auto cell_task = [&](const Cell& cell) {
    return [&, cell] {
      workload::WorkloadGenerator gen(common.WorkloadConfig(),
                                      common.seed());
      auto jobs = gen.GenerateOnline(load, topo.total_slots());
      sim::SimConfig config;
      config.abstraction = workload::Abstraction::kSvc;
      config.epsilon = common.epsilon();
      config.allocator = &allocator;
      config.seed = common.seed() + 1;
      config.max_seconds = 4 * horizon;
      config.faults.machine_mtbf_seconds = cell.mtbf;
      config.faults.link_mtbf_seconds =
          link_mtbf_factor > 0 ? link_mtbf_factor * cell.mtbf : 0;
      config.faults.mttr_seconds = mttr;
      config.faults.horizon_seconds = horizon;
      config.faults.seed = common.seed() + 2;
      config.faults.policy = cell.policy;
      sim::Engine engine(topo, config);
      return engine.RunOnline(std::move(jobs));
    };
  };
  std::vector<std::function<sim::OnlineResult()>> tasks;
  for (const Cell& cell : cells) tasks.push_back(cell_task(cell));
  sim::SweepRunner runner(common.threads());
  const std::vector<sim::OnlineResult> results = runner.Run(std::move(tasks));

  util::Table table({"policy", "mtbf", "faults", "recoveries", "recovered",
                     "evicted", "steady outage", "failure outage", "p50 us",
                     "p99 us"});
  std::vector<bench::BenchRecord> records;
  bool steady_ok = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const sim::OnlineResult& r = results[i];
    const sim::OutageStats steady = r.steady_outage();
    const double steady_rate = steady.OutageRate();
    const double failure_rate = r.failure_outage.OutageRate();
    const double p50 = Percentile(r.recovery_latency_us, 0.50);
    const double p99 = Percentile(r.recovery_latency_us, 0.99);
    const double faults_per_sec =
        r.simulated_seconds > 0 ? r.faults_injected / r.simulated_seconds
                                : 0.0;
    if (steady_rate > common.epsilon()) steady_ok = false;
    table.AddRow({core::ToString(cell.policy), util::Table::Num(cell.mtbf, 0),
                  std::to_string(r.faults_injected),
                  std::to_string(r.fault_recoveries),
                  std::to_string(r.tenants_recovered),
                  std::to_string(r.tenants_evicted),
                  util::Table::Num(steady_rate, 5),
                  util::Table::Num(failure_rate, 5),
                  util::Table::Num(p50, 1), util::Table::Num(p99, 1)});
    const std::string name = std::string("fault_") +
                             core::ToString(cell.policy) + "_mtbf" +
                             util::Table::Num(cell.mtbf, 0);
    records.push_back({name, r.faults_injected, 0.0, 0.0,
                       {{"faults_per_sec", faults_per_sec},
                        {"steady_outage_rate", steady_rate},
                        {"failure_outage_rate", failure_rate},
                        {"recovery_p50_us", p50},
                        {"recovery_p99_us", p99},
                        {"tenants_recovered",
                         static_cast<double>(r.tenants_recovered)},
                        {"tenants_evicted",
                         static_cast<double>(r.tenants_evicted)}}});
  }
  bench::EmitTable("Fault recovery: failure churn vs recovery policy", table,
                   csv);

  util::JsonWriter w;
  w.BeginObject();
  w.Member("hardware_threads", util::ThreadPool::HardwareThreads());
  w.Member("threads", common.threads());
  w.Member("seed", static_cast<int64_t>(common.seed()));
  w.Member("epsilon", common.epsilon());
  w.Member("mttr_seconds", mttr);
  w.Member("horizon_seconds", horizon);
  bench::AddBenchmarksMember(w, records);
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Collect();
  w.Key("metrics");
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& c : snapshot.counters) w.Member(c.name, c.value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& g : snapshot.gauges) w.Member(g.name, g.value);
  w.EndObject();
  w.EndObject();
  w.EndObject();
  if (!bench::WriteFile(out, w.str() + "\n")) return 1;
  std::printf("wrote %s\n", out.c_str());

  if (check && !steady_ok) {
    std::fprintf(stderr,
                 "FAIL: steady-epoch outage rate exceeded epsilon %.4g\n",
                 common.epsilon());
    return 1;
  }
  if (check) std::printf("check: steady-epoch outage within epsilon\n");
  return 0;
}
