#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/decision_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/homogeneous_search.h"
#include "util/strings.h"

namespace svc::bench {
namespace {

// Sink of the live ObsScope, attached to every engine RunBatch/RunOnline
// constructs while the scope exists.  Benches are single-ObsScope programs;
// concurrent sweep replicas share the sink (it is internally locked).
obs::TimeSeriesSink* g_active_series = nullptr;
double g_active_series_period = 100.0;

}  // namespace

CommonOptions::CommonOptions(util::FlagSet& flags)
    : racks_(flags.Int("racks", 50, "number of racks")),
      machines_per_rack_(
          flags.Int("machines-per-rack", 20, "machines per rack")),
      slots_(flags.Int("slots", 4, "VM slots per machine")),
      oversubscription_(flags.Double(
          "oversub", 2.0, "network oversubscription factor (paper default 2)")),
      jobs_(flags.Int("jobs", 300,
                      "tenant jobs per simulation (paper uses 500)")),
      mean_job_size_(flags.Double("mean-job-size", 49,
                                  "mean VMs per job (exponential)")),
      max_job_size_(flags.Int("max-job-size", 400, "job size clamp")),
      rate_menu_(flags.String(
          "rate-menu", "50,100,150,200,250",
          "mu_d menu in Mbps.  The paper's menu is 100..500, but with rho "
          "up to 1 that makes ~10% of jobs infeasible on 1 Gbps access "
          "links under EVERY abstraction (95th-pct demand up to 1.32 Gbps), "
          "contradicting the paper's near-zero low-load rejection; the "
          "halved default restores that regime (see EXPERIMENTS.md)")),
      epsilon_(flags.Double("epsilon", 0.05, "SVC risk factor epsilon")),
      seed_(flags.Int("seed", 42, "workload / simulation seed")),
      threads_(flags.Int("threads", 0,
                         "sweep worker threads (0 = all cores, 1 = serial); "
                         "results are identical for every value")),
      metrics_out_(flags.String(
          "metrics-out", "",
          "write a metrics + time-series JSONL snapshot here (enables the "
          "metrics registry for the run)")),
      trace_out_(flags.String(
          "trace-out", "",
          "write a Chrome trace-event JSON file here (open in Perfetto); "
          "enables span/counter tracing for the run")),
      series_period_(flags.Double(
          "series-period", 100.0,
          "simulated seconds between engine time-series samples when "
          "--metrics-out is set")),
      decisions_out_(flags.String(
          "decisions-out", "",
          "write per-admission decision-provenance records here (JSONL; "
          "enables decision logging for the run)")),
      flight_dir_(flags.String(
          "flight-dir", "",
          "arm the flight recorder: postmortem bundles (decision ring + "
          "metrics + trace) are dumped into this directory on faults, "
          "invariant failures, and SLO breaches")),
      flight_admit_slo_us_(flags.Double(
          "flight-admit-slo-us", 0.0,
          "mean admit latency (us) per SLO window that latches a "
          "flight-recorder dump (0 = off; needs --flight-dir)")),
      flight_reject_rate_(flags.Double(
          "flight-reject-rate", 0.0,
          "rejection rate per SLO window that latches a flight-recorder "
          "dump (0 = off; needs --flight-dir)")) {}

topology::ThreeTierConfig CommonOptions::TopologyConfig() const {
  topology::ThreeTierConfig config;
  config.racks = static_cast<int>(racks_);
  config.machines_per_rack = static_cast<int>(machines_per_rack_);
  config.slots_per_machine = static_cast<int>(slots_);
  config.racks_per_agg = static_cast<int>(std::max<int64_t>(1, racks_ / 5));
  config.oversubscription = oversubscription_;
  return config;
}

workload::WorkloadConfig CommonOptions::WorkloadConfig() const {
  workload::WorkloadConfig config;
  config.num_jobs = static_cast<int>(jobs_);
  config.mean_job_size = mean_job_size_;
  config.max_job_size = static_cast<int>(max_job_size_);
  config.rate_means = util::ParseDoubleList(rate_menu_);
  return config;
}

const core::Allocator& AllocatorFor(workload::Abstraction abstraction) {
  static const core::HomogeneousDpAllocator svc_dp;
  static const core::OktopusAllocator oktopus;
  return abstraction == workload::Abstraction::kSvc
             ? static_cast<const core::Allocator&>(svc_dp)
             : oktopus;
}

sim::BatchResult RunBatch(const topology::Topology& topo,
                          const std::vector<workload::JobSpec>& jobs,
                          workload::Abstraction abstraction,
                          const core::Allocator& allocator, double epsilon,
                          uint64_t seed) {
  sim::SimConfig config;
  config.abstraction = abstraction;
  config.allocator = &allocator;
  config.epsilon = epsilon;
  config.seed = seed;
  config.sample_occupancy = false;
  config.series = g_active_series;
  config.series_period = g_active_series_period;
  sim::Engine engine(topo, config);
  return engine.RunBatch(jobs);
}

sim::OnlineResult RunOnline(const topology::Topology& topo,
                            std::vector<workload::JobSpec> jobs,
                            workload::Abstraction abstraction,
                            const core::Allocator& allocator, double epsilon,
                            uint64_t seed) {
  sim::SimConfig config;
  config.abstraction = abstraction;
  config.allocator = &allocator;
  config.epsilon = epsilon;
  config.seed = seed;
  config.series = g_active_series;
  config.series_period = g_active_series_period;
  sim::Engine engine(topo, config);
  return engine.RunOnline(std::move(jobs));
}

namespace {
ObsOptions ToObsOptions(const CommonOptions& options) {
  ObsOptions obs;
  obs.metrics_out = options.metrics_out();
  obs.trace_out = options.trace_out();
  obs.series_period = options.series_period();
  obs.decisions_out = options.decisions_out();
  obs.flight_dir = options.flight_dir();
  obs.flight_admit_slo_us = options.flight_admit_slo_us();
  obs.flight_reject_rate = options.flight_reject_rate();
  return obs;
}
}  // namespace

ObsScope::ObsScope(const CommonOptions& options)
    : ObsScope(ToObsOptions(options)) {}

ObsScope::ObsScope(const ObsOptions& options)
    : metrics_out_(options.metrics_out),
      trace_out_(options.trace_out),
      decisions_out_(options.decisions_out),
      flight_(!options.flight_dir.empty()) {
  if (!metrics_out_.empty()) {
    obs::SetMetricsEnabled(true);
    g_active_series = &sink_;
    g_active_series_period = options.series_period;
  }
  if (!trace_out_.empty()) obs::SetTraceEnabled(true);
  if (!decisions_out_.empty()) obs::SetDecisionsEnabled(true);
  if (flight_) {
    obs::FlightRecorderConfig flight;
    flight.dir = options.flight_dir;
    flight.admit_latency_slo_us = options.flight_admit_slo_us;
    flight.rejection_rate_slo = options.flight_reject_rate;
    obs::FlightRecorder::Global().Configure(flight);
  }
}

ObsScope::~ObsScope() {
  if (!metrics_out_.empty()) {
    g_active_series = nullptr;
    std::string out = sink_.ToJsonl();
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
    out += obs::Registry::Global().Collect().ToJsonl();
    WriteFile(metrics_out_, out);
  }
  if (!trace_out_.empty()) {
    WriteFile(trace_out_, obs::SerializeChromeTrace());
  }
  if (!decisions_out_.empty()) {
    std::string out;
    for (const obs::DecisionRecord& rec : obs::CollectDecisions()) {
      obs::AppendDecisionJson(out, rec);
      out.push_back('\n');
    }
    WriteFile(decisions_out_, out);
  }
  if (flight_) {
    // Flush an SLO breach latched in the run's tail, then disarm so a later
    // scope (or test) starts from a clean recorder.
    obs::FlightRecorder::Global().MaybeTriggerPending();
    obs::FlightRecorder::Global().Reset();
  }
}

void ApplyCommonOverrides(const CommonOptions& options,
                          sim::Scenario* scenario) {
  const topology::ThreeTierConfig topo = options.TopologyConfig();
  scenario->topology.racks = topo.racks;
  scenario->topology.machines_per_rack = topo.machines_per_rack;
  scenario->topology.slots_per_machine = topo.slots_per_machine;
  scenario->topology.racks_per_agg = topo.racks_per_agg;
  scenario->topology.oversubscription = topo.oversubscription;
  const workload::WorkloadConfig wconfig = options.WorkloadConfig();
  scenario->workload.num_jobs = wconfig.num_jobs;
  scenario->workload.mean_job_size = wconfig.mean_job_size;
  scenario->workload.max_job_size = wconfig.max_job_size;
  scenario->workload.rate_means = wconfig.rate_means;
  scenario->seed = options.seed();
}

sim::ScenarioRunResult RunScenarioOrDie(const sim::Scenario& scenario,
                                        const CommonOptions& options) {
  return RunScenarioOrDie(scenario, options.threads());
}

sim::ScenarioRunResult RunScenarioOrDie(const sim::Scenario& scenario,
                                        int threads) {
  sim::ScenarioRunOptions run;
  run.threads = threads;
  run.series = g_active_series;
  run.series_period = g_active_series_period;
  util::Result<sim::ScenarioRunResult> result =
      sim::RunScenario(scenario, run);
  if (!result) {
    std::fprintf(stderr, "scenario '%s': %s\n", scenario.name.c_str(),
                 result.status().ToText().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

std::vector<double> RunCells(int threads,
                             std::vector<std::function<double()>> cells) {
  sim::SweepRunner runner(threads);
  return runner.Run(std::move(cells));
}

void EmitTable(const std::string& title, const util::Table& table, bool csv) {
  std::printf("=== %s ===\n%s\n", title.c_str(), table.ToText().c_str());
  if (csv) std::printf("--- csv ---\n%s\n", table.ToCsv().c_str());
}

void AddBenchmarksMember(util::JsonWriter& w,
                         const std::vector<BenchRecord>& records) {
  w.Key("benchmarks");
  w.BeginArray();
  for (const BenchRecord& record : records) {
    w.BeginObject();
    w.Member("name", record.name);
    w.Member("iterations", record.iterations);
    w.Member("real_ns_per_iter", record.real_ns_per_iter);
    w.Member("cpu_ns_per_iter", record.cpu_ns_per_iter);
    for (const auto& [key, value] : record.counters) w.Member(key, value);
    w.EndObject();
  }
  w.EndArray();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace svc::bench
