// Ablation (DESIGN.md): hard-cap vs token-bucket enforcement of the
// deterministic reservations (mean-VC / percentile-VC).
//
// A token bucket lets rate-limited VMs burst above their reservation on
// saved credit, which (a) shortens volatile jobs' running times and (b)
// re-introduces transient over-capacity traffic the reservation math had
// excluded — visible as a small nonzero outage rate.  SVC is unaffected
// (its flows are never rate limited).
//
// Thin shim over the "ablation_enforcement" registry scenario
// (sim/scenario.h): the five cells are variants with per-variant
// enforcement overrides, no sweep axis.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "ablation_enforcement: hard-cap vs token-bucket rate limiting");
  bench::CommonOptions common(flags);
  double& burst = flags.Double("burst-seconds", 10,
                               "token bucket depth in seconds of B");
  double& rho = flags.Double("rho", 0.8, "deviation coefficient");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("ablation_enforcement");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.workload.fixed_deviation = rho;
  scenario.enforcement.burst_seconds = burst;
  scenario.admission.epsilon = common.epsilon();
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  const struct {
    const char* cell;
    const char* abstraction;
    const char* enforcement;
  } kRows[] = {
      {"mean-VC/hard_cap", "mean-VC", "hard-cap"},
      {"mean-VC/token_bucket", "mean-VC", "token-bucket"},
      {"percentile-VC/hard_cap", "percentile-VC", "hard-cap"},
      {"percentile-VC/token_bucket", "percentile-VC", "token-bucket"},
      {"SVC/hard_cap", "SVC", "n/a (no limiting)"},
  };
  util::Table table({"abstraction", "enforcement", "mean running time (s)",
                     "makespan (s)", "outage rate"});
  for (const auto& row : kRows) {
    const sim::BatchResult& cell = sim::FindCell(result, row.cell, -1)->batch;
    table.AddRow({row.abstraction, row.enforcement,
                  util::Table::Num(cell.MeanRunningTime(), 1),
                  util::Table::Num(cell.total_completion_time, 0),
                  util::Table::Num(cell.outage.OutageRate(), 5)});
  }
  bench::EmitTable("Ablation: reservation enforcement discipline (rho = " +
                       util::Table::Num(rho, 1) + ")",
                   table, csv);
  return 0;
}
