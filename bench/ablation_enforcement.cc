// Ablation (DESIGN.md): hard-cap vs token-bucket enforcement of the
// deterministic reservations (mean-VC / percentile-VC).
//
// A token bucket lets rate-limited VMs burst above their reservation on
// saved credit, which (a) shortens volatile jobs' running times and (b)
// re-introduces transient over-capacity traffic the reservation math had
// excluded — visible as a small nonzero outage rate.  SVC is unaffected
// (its flows are never rate limited).
#include "bench_common.h"

#include "svc/homogeneous_search.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "ablation_enforcement: hard-cap vs token-bucket rate limiting");
  bench::CommonOptions common(flags);
  double& burst = flags.Double("burst-seconds", 10,
                               "token bucket depth in seconds of B");
  double& rho = flags.Double("rho", 0.8, "deviation coefficient");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());
  workload::WorkloadConfig wconfig = common.WorkloadConfig();
  wconfig.fixed_deviation = rho;
  const core::OktopusAllocator vc_alloc;
  const core::HomogeneousDpAllocator svc_alloc;

  const struct {
    workload::Abstraction abstraction;
    const core::Allocator* alloc;
    sim::Enforcement enforcement;
    const char* label;
  } kRuns[] = {
      {workload::Abstraction::kMeanVc, &vc_alloc, sim::Enforcement::kHardCap,
       "hard-cap"},
      {workload::Abstraction::kMeanVc, &vc_alloc,
       sim::Enforcement::kTokenBucket, "token-bucket"},
      {workload::Abstraction::kPercentileVc, &vc_alloc,
       sim::Enforcement::kHardCap, "hard-cap"},
      {workload::Abstraction::kPercentileVc, &vc_alloc,
       sim::Enforcement::kTokenBucket, "token-bucket"},
      {workload::Abstraction::kSvc, &svc_alloc, sim::Enforcement::kHardCap,
       "n/a (no limiting)"},
  };

  std::vector<std::function<sim::BatchResult()>> cells;
  for (const auto& spec : kRuns) {
    cells.push_back([&spec, &wconfig, &common, &topo, &burst] {
      workload::WorkloadGenerator gen(wconfig, common.seed());
      sim::SimConfig config;
      config.abstraction = spec.abstraction;
      config.allocator = spec.alloc;
      config.epsilon = common.epsilon();
      config.seed = common.seed() + 1;
      config.enforcement = spec.enforcement;
      config.burst_seconds = burst;
      sim::Engine engine(topo, config);
      return engine.RunBatch(gen.GenerateBatch());
    });
  }
  sim::SweepRunner runner(common.threads());
  const auto results = runner.Run(std::move(cells));

  util::Table table({"abstraction", "enforcement", "mean running time (s)",
                     "makespan (s)", "outage rate"});
  for (size_t i = 0; i < std::size(kRuns); ++i) {
    const sim::BatchResult& result = results[i];
    table.AddRow({workload::ToString(kRuns[i].abstraction), kRuns[i].label,
                  util::Table::Num(result.MeanRunningTime(), 1),
                  util::Table::Num(result.total_completion_time, 0),
                  util::Table::Num(result.outage.OutageRate(), 5)});
  }
  bench::EmitTable("Ablation: reservation enforcement discipline (rho = " +
                       util::Table::Num(rho, 1) + ")",
                   table, csv);
  return 0;
}
