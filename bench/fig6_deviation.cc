// Fig. 6: average running time per job vs deviation coefficient rho
// (sigma_d = rho * mu_d) in the batched scenario.
//
// Paper shape: percentile-VC flat and lowest; mean-VC worst, growing with
// rho; SVC between them, closer to percentile-VC; smaller epsilon lowers
// SVC's running time.
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig6_deviation: per-job running time vs deviation coefficient "
      "(Fig. 6)");
  bench::CommonOptions common(flags);
  std::string& rhos =
      flags.String("rhos", "0.1,0.3,0.5,0.7,0.9", "deviation coefficients");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());
  util::Table table({"rho", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (double rho : util::ParseDoubleList(rhos)) {
    workload::WorkloadConfig wconfig = common.WorkloadConfig();
    wconfig.fixed_deviation = rho;
    workload::WorkloadGenerator gen(wconfig, common.seed());
    const auto jobs = gen.GenerateBatch();
    auto mean_running = [&](workload::Abstraction abstraction,
                            double epsilon) {
      return bench::RunBatch(topo, jobs, abstraction,
                             bench::AllocatorFor(abstraction), epsilon,
                             common.seed() + 1)
          .MeanRunningTime();
    };
    table.AddRow(
        {util::Table::Num(rho, 1),
         util::Table::Num(mean_running(workload::Abstraction::kMeanVc, 0.05),
                          1),
         util::Table::Num(
             mean_running(workload::Abstraction::kPercentileVc, 0.05), 1),
         util::Table::Num(mean_running(workload::Abstraction::kSvc, 0.05), 1),
         util::Table::Num(mean_running(workload::Abstraction::kSvc, 0.02),
                          1)});
  }
  bench::EmitTable(
      "Fig. 6: average running time per job (s) vs deviation coefficient",
      table, csv);
  return 0;
}
