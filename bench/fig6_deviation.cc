// Fig. 6: average running time per job vs deviation coefficient rho
// (sigma_d = rho * mu_d) in the batched scenario.
//
// Paper shape: percentile-VC flat and lowest; mean-VC worst, growing with
// rho; SVC between them, closer to percentile-VC; smaller epsilon lowers
// SVC's running time.
#include "bench_common.h"

#include <deque>

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig6_deviation: per-job running time vs deviation coefficient "
      "(Fig. 6)");
  bench::CommonOptions common(flags);
  std::string& rhos =
      flags.String("rhos", "0.1,0.3,0.5,0.7,0.9", "deviation coefficients");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());

  // One workload per rho, shared read-only by the four abstraction cells.
  struct Point {
    double rho;
    std::vector<workload::JobSpec> jobs;
  };
  std::deque<Point> points;
  for (double rho : util::ParseDoubleList(rhos)) {
    workload::WorkloadConfig wconfig = common.WorkloadConfig();
    wconfig.fixed_deviation = rho;
    workload::WorkloadGenerator gen(wconfig, common.seed());
    points.push_back({rho, gen.GenerateBatch()});
  }

  const struct {
    workload::Abstraction abstraction;
    double epsilon;
  } kConfigs[] = {{workload::Abstraction::kMeanVc, 0.05},
                  {workload::Abstraction::kPercentileVc, 0.05},
                  {workload::Abstraction::kSvc, 0.05},
                  {workload::Abstraction::kSvc, 0.02}};

  std::vector<std::function<double()>> cells;
  for (const Point& point : points) {
    for (const auto& config : kConfigs) {
      cells.push_back([&point, &config, &common, &topo] {
        return bench::RunBatch(topo, point.jobs, config.abstraction,
                               bench::AllocatorFor(config.abstraction),
                               config.epsilon, common.seed() + 1)
            .MeanRunningTime();
      });
    }
  }
  const std::vector<double> running =
      bench::RunCells(common.threads(), std::move(cells));

  util::Table table({"rho", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (size_t p = 0; p < points.size(); ++p) {
    table.AddRow({util::Table::Num(points[p].rho, 1),
                  util::Table::Num(running[4 * p + 0], 1),
                  util::Table::Num(running[4 * p + 1], 1),
                  util::Table::Num(running[4 * p + 2], 1),
                  util::Table::Num(running[4 * p + 3], 1)});
  }
  bench::EmitTable(
      "Fig. 6: average running time per job (s) vs deviation coefficient",
      table, csv);
  return 0;
}
