// Fig. 6: average running time per job vs deviation coefficient rho
// (sigma_d = rho * mu_d) in the batched scenario.
//
// Paper shape: percentile-VC flat and lowest; mean-VC worst, growing with
// rho; SVC between them, closer to percentile-VC; smaller epsilon lowers
// SVC's running time.
//
// Thin shim over the "fig6" registry scenario (sim/scenario.h).
#include "bench_common.h"

#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "fig6_deviation: per-job running time vs deviation coefficient "
      "(Fig. 6)");
  bench::CommonOptions common(flags);
  std::string& rhos =
      flags.String("rhos", "0.1,0.3,0.5,0.7,0.9", "deviation coefficients");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("fig6");
  bench::ApplyCommonOverrides(common, &scenario);
  scenario.sweep.values = util::ParseDoubleList(rhos);
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  util::Table table({"rho", "mean-VC", "percentile-VC", "SVC(e=0.05)",
                     "SVC(e=0.02)"});
  for (size_t p = 0; p < scenario.sweep.values.size(); ++p) {
    const int axis = static_cast<int>(p);
    auto running = [&](const char* label) {
      return sim::FindCell(result, label, axis)->batch.MeanRunningTime();
    };
    table.AddRow({util::Table::Num(scenario.sweep.values[p], 1),
                  util::Table::Num(running("mean-VC"), 1),
                  util::Table::Num(running("percentile-VC"), 1),
                  util::Table::Num(running("SVC(e=0.05)"), 1),
                  util::Table::Num(running("SVC(e=0.02)"), 1)});
  }
  bench::EmitTable(
      "Fig. 6: average running time per job (s) vs deviation coefficient",
      table, csv);
  return 0;
}
