// Section VI-B3 (heterogeneous, "details omitted" in the paper): the
// heterogeneous SVC heuristic vs plain first-fit — max bandwidth-occupancy
// distribution and rejection rate under dynamically arriving jobs.
//
// Paper claim: "heterogeneous SVC algorithm achieves better bandwidth
// occupancy overhead and similar rejection rates compared with the
// first-fit algorithm."
//
// The substring heuristic is O(|V| * Delta * N^4), so this bench defaults
// to a smaller fabric (250 machines) and smaller jobs (mean 10 VMs) than
// the homogeneous benches; the comparison is allocation-level, not scale-
// sensitive (see DESIGN.md).
#include "bench_common.h"

#include "stats/ecdf.h"
#include "svc/first_fit.h"
#include "svc/hetero_heuristic.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "hetero_comparison: heterogeneous SVC heuristic vs first-fit "
      "(Sec. VI-B3)");
  bench::CommonOptions common(flags);
  std::string& loads = flags.String("loads", "0.2,0.6", "load sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  // Scaled-down defaults unless the user overrides on the command line.
  topology::ThreeTierConfig tconfig = common.TopologyConfig();
  if (tconfig.racks == 50 && tconfig.machines_per_rack == 20) {
    tconfig.racks = 25;
    tconfig.machines_per_rack = 10;
    tconfig.racks_per_agg = 5;
  }
  const topology::Topology topo = topology::BuildThreeTier(tconfig);

  workload::WorkloadConfig wconfig = common.WorkloadConfig();
  wconfig.heterogeneous = true;
  if (wconfig.mean_job_size == 49) {
    wconfig.mean_job_size = 10;
    wconfig.max_job_size = 30;
  }
  if (wconfig.num_jobs > 200) wconfig.num_jobs = 200;

  const core::HeteroHeuristicAllocator heuristic;
  const core::FirstFitAllocator first_fit;

  for (double load : util::ParseDoubleList(loads)) {
    auto run = [&](const core::Allocator& alloc) {
      workload::WorkloadGenerator gen(wconfig, common.seed());
      auto jobs = gen.GenerateOnline(load, topo.total_slots());
      return bench::RunOnline(topo, std::move(jobs),
                              workload::Abstraction::kSvc, alloc,
                              common.epsilon(), common.seed() + 1);
    };
    const auto h = run(heuristic);
    const auto f = run(first_fit);
    const stats::EmpiricalCdf h_cdf(h.max_occupancy_samples);
    const stats::EmpiricalCdf f_cdf(f.max_occupancy_samples);

    util::Table table({"cdf", "SVC-heuristic max-occ", "first-fit max-occ"});
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
      table.AddRow({util::Table::Num(p, 2),
                    util::Table::Num(h_cdf.Percentile(p), 4),
                    util::Table::Num(f_cdf.Percentile(p), 4)});
    }
    bench::EmitTable(
        "Hetero: max occupancy quantiles, load " +
            util::Table::Num(100 * load, 0) + "%",
        table, csv);

    util::Table summary({"metric", "SVC-heuristic", "first-fit"});
    summary.AddRow({"rejection %",
                    util::Table::Num(100 * h.RejectionRate(), 2),
                    util::Table::Num(100 * f.RejectionRate(), 2)});
    summary.AddRow({"mean concurrency",
                    util::Table::Num(h.MeanConcurrency(), 2),
                    util::Table::Num(f.MeanConcurrency(), 2)});
    bench::EmitTable("Hetero summary, load " +
                         util::Table::Num(100 * load, 0) + "%",
                     summary, csv);
  }
  return 0;
}
