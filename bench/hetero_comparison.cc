// Section VI-B3 (heterogeneous, "details omitted" in the paper): the
// heterogeneous SVC heuristic vs plain first-fit — max bandwidth-occupancy
// distribution and rejection rate under dynamically arriving jobs.
//
// Paper claim: "heterogeneous SVC algorithm achieves better bandwidth
// occupancy overhead and similar rejection rates compared with the
// first-fit algorithm."
//
// The substring heuristic is O(|V| * Delta * N^4), so the registry
// scenario defaults to a smaller fabric (250 machines) and smaller jobs
// (mean 10 VMs) than the homogeneous benches; the comparison is
// allocation-level, not scale-sensitive (see DESIGN.md).
//
// Thin shim over the "hetero_comparison" registry scenario
// (sim/scenario.h); explicit --racks / --mean-job-size / --jobs overrides
// still win over the scaled-down registry defaults.
#include "bench_common.h"

#include <algorithm>

#include "stats/ecdf.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace svc;
  util::FlagSet flags(
      "hetero_comparison: heterogeneous SVC heuristic vs first-fit "
      "(Sec. VI-B3)");
  bench::CommonOptions common(flags);
  std::string& loads = flags.String("loads", "0.2,0.6", "load sweep");
  bool& csv = flags.Bool("csv", false, "also print CSV");
  flags.Parse(argc, argv);
  bench::ObsScope obs(common);

  sim::Scenario scenario = *sim::FindScenario("hetero_comparison");
  bench::ApplyCommonOverrides(common, &scenario);
  // Keep the registry's scaled-down fabric/jobs unless overridden.
  if (scenario.topology.racks == 50 &&
      scenario.topology.machines_per_rack == 20) {
    scenario.topology.racks = 25;
    scenario.topology.machines_per_rack = 10;
    scenario.topology.racks_per_agg = 5;
  }
  scenario.workload.heterogeneous = true;
  if (scenario.workload.mean_job_size == 49) {
    scenario.workload.mean_job_size = 10;
    scenario.workload.max_job_size = 30;
  }
  scenario.workload.num_jobs = std::min(scenario.workload.num_jobs, 200);
  scenario.admission.epsilon = common.epsilon();
  scenario.sweep.values = util::ParseDoubleList(loads);
  const sim::ScenarioRunResult result =
      bench::RunScenarioOrDie(scenario, common);

  for (size_t p = 0; p < scenario.sweep.values.size(); ++p) {
    const int axis = static_cast<int>(p);
    const double load = scenario.sweep.values[p];
    const sim::OnlineResult& h =
        sim::FindCell(result, "hetero-heuristic", axis)->online_result;
    const sim::OnlineResult& f =
        sim::FindCell(result, "first-fit", axis)->online_result;
    const stats::EmpiricalCdf h_cdf(h.max_occupancy_samples);
    const stats::EmpiricalCdf f_cdf(f.max_occupancy_samples);

    util::Table table({"cdf", "SVC-heuristic max-occ", "first-fit max-occ"});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
      table.AddRow({util::Table::Num(q, 2),
                    util::Table::Num(h_cdf.Percentile(q), 4),
                    util::Table::Num(f_cdf.Percentile(q), 4)});
    }
    bench::EmitTable(
        "Hetero: max occupancy quantiles, load " +
            util::Table::Num(100 * load, 0) + "%",
        table, csv);

    util::Table summary({"metric", "SVC-heuristic", "first-fit"});
    summary.AddRow({"rejection %",
                    util::Table::Num(100 * h.RejectionRate(), 2),
                    util::Table::Num(100 * f.RejectionRate(), 2)});
    summary.AddRow({"mean concurrency",
                    util::Table::Num(h.MeanConcurrency(), 2),
                    util::Table::Num(f.MeanConcurrency(), 2)});
    bench::EmitTable("Hetero summary, load " +
                         util::Table::Num(100 * load, 0) + "%",
                     summary, csv);
  }
  return 0;
}
