// Performance suite for the hot-path overhaul, one section per layer:
//
//   sweep    — a grid of replicated batch simulations run serially vs on
//              the work-stealing pool (sim::SweepRunner).  Asserts the
//              parallel results are bit-identical to the serial ones and
//              reports the wall-clock speedup.
//   step     — simulator Step() throughput with a steady workload (zero
//              demand variance: the incremental fast path reuses the
//              previous max-min solve every tick) vs a volatile one (fresh
//              draws every tick force a full solve).
//   allocate — HomogeneousSearchAllocator::Allocate() calls/sec against a
//              pre-loaded fabric, plus heap allocations per call after
//              warm-up (must be zero: thread-local DP arena + recycled
//              placement buffers; alloc_counter.cc counts operator new).
//              Also timed: the level-parallel variant (placements must be
//              bit-identical to serial) and both heterogeneous allocators
//              on a smaller fabric sized to their complexity.
//   admission — AdmitBatch throughput through core::AdmissionPipeline, one
//              worker (the serial baseline, record admission_throughput_1w)
//              vs --pipeline-workers (record admission_throughput), over a
//              fill/release churn workload.  Verdicts and placements must
//              be bit-identical across worker counts (deterministic commit
//              discipline); conflict/retry/fallback counts ride along as
//              record extras.
//   sharded  — AdmitBatch throughput with --admit-shards commit shards on a
//              ~100k-machine fabric pre-loaded with 10^5 live tenants
//              (record admission_sharded, with the shard count and the
//              touched-shard histogram as extras).  CI runs it at 1 and 4
//              shards and gates the ratio with bench_diff
//              --require-speedup admission_sharded:1.5.
//
// Writes BENCH_PERF.json (override with --out) and prints a summary.  The
// JSON carries the git SHA and thread counts so two snapshots diffed with
// tools/bench_diff.py identify exactly what ran where.
// Designed to finish in well under two minutes at the default sizes.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alloc_counter.h"
#include "bench_common.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"
#include "svc/admission_pipeline.h"
#include "svc/hetero_exact.h"
#include "svc/hetero_heuristic.h"
#include "svc/homogeneous_search.h"
#include "svc/manager.h"
#include "svc/scratch_arena.h"
#include "topology/builders.h"
#include "util/affinity.h"
#include "util/cpu_topology.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace {

using namespace svc;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Commit the binary's tree was built from, for snapshot provenance in
// BENCH_PERF.json.  Best-effort: "unknown" outside a git checkout.
std::string GitSha() {
  FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (!pipe) return "unknown";
  char buf[64] = {};
  const bool got = fgets(buf, sizeof(buf), pipe) != nullptr;
  pclose(pipe);
  if (!got) return "unknown";
  std::string sha(buf);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

bool SamePlacement(const core::Placement& a, const core::Placement& b) {
  return a.subtree_root == b.subtree_root &&
         a.max_occupancy == b.max_occupancy && a.vm_machine == b.vm_machine;
}

bool SameJobs(const std::vector<sim::JobRecord>& a,
              const std::vector<sim::JobRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].arrival_time != b[i].arrival_time ||
        a[i].start_time != b[i].start_time ||
        a[i].finish_time != b[i].finish_time) {
      return false;
    }
  }
  return true;
}

// Field-by-field bitwise equality: the parallel sweep must reproduce the
// serial results exactly, not approximately.
bool SameBatchResult(const sim::BatchResult& a, const sim::BatchResult& b) {
  return a.total_completion_time == b.total_completion_time &&
         a.unallocatable_jobs == b.unallocatable_jobs &&
         a.simulated_seconds == b.simulated_seconds &&
         a.outage.outage_link_seconds == b.outage.outage_link_seconds &&
         a.outage.busy_link_seconds == b.outage.busy_link_seconds &&
         a.placement_levels == b.placement_levels && SameJobs(a.jobs, b.jobs);
}

// Serves pre-planned placements by request id: the admission regime where
// the placement decision is externalized (a warmed placement cache or an
// out-of-band planner) and the fabric layer's validate-and-commit plane is
// the whole cost — the regime the sharded-commit bench measures.  The
// selection ignores the books entirely, so both monotone declarations hold
// trivially (a constant choice cannot be un-chosen by added load, and an
// id-miss rejection stays a rejection on any books).
class ReplayAllocator final : public core::Allocator {
 public:
  explicit ReplayAllocator(
      const std::unordered_map<int64_t, core::Placement>* plan)
      : plan_(plan) {}

  std::string_view name() const override { return "bench-replay"; }
  bool monotone_rejections() const override { return true; }
  bool monotone_placements() const override { return true; }

  util::Result<core::Placement> Allocate(
      const core::Request& request, const net::LinkLedger& /*ledger*/,
      const core::SlotMap& /*slots*/) const override {
    const auto it = plan_->find(request.id());
    if (it == plan_->end()) {
      return {util::ErrorCode::kCapacity, "no planned placement"};
    }
    return util::Result<core::Placement>(it->second);
  }

 private:
  const std::unordered_map<int64_t, core::Placement>* plan_;
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags(
      "perf_suite: sweep / step / allocate hot-path measurements "
      "(writes BENCH_PERF.json)");
  bench::CommonOptions common(flags);
  int64_t& replicas =
      flags.Int("replicas", 8, "replicated simulations in the sweep grid");
  int64_t& sweep_jobs =
      flags.Int("sweep-jobs", 80, "jobs per sweep replica");
  int64_t& alloc_iters =
      flags.Int("alloc-iters", 2000, "Allocate() calls to time");
  int64_t& admit_iters = flags.Int(
      "admit-iters", 600, "admission requests per pipeline batch round");
  int64_t& pipeline_workers = flags.Int(
      "pipeline-workers", 4, "speculation workers for admission_throughput");
  int64_t& decisions_on = flags.Int(
      "decisions", 1,
      "record decision provenance (obs/decision_log) through the admission "
      "and sharded benches, so their throughput numbers carry the logging "
      "cost the online control plane would pay; 0 measures the "
      "compiled-in-but-disabled baseline");
  int64_t& admit_shards = flags.Int(
      "admit-shards", 4,
      "aggregation-level commit shards for admission_sharded (1 = the "
      "unsharded-commit baseline the CI speedup gate compares against)");
  int64_t& shard_racks = flags.Int(
      "shard-racks", 5120, "racks in the sharded-admission fabric");
  int64_t& shard_aggs = flags.Int(
      "shard-aggs", 16, "aggregation switches (= shardable subtrees)");
  int64_t& shard_tenants = flags.Int(
      "shard-tenants", 100'000,
      "tenants pre-loaded onto the sharded fabric before measuring");
  int64_t& shard_iters = flags.Int(
      "shard-iters", 256, "admission requests per sharded pipeline round");
  std::string& placement_flag = flags.String(
      "placement", "none",
      "worker placement for admission_sharded "
      "(none|compact|scatter|shard_node): pins shard commit workers per "
      "docs/PERFORMANCE.md §7.  The serial baseline always runs unpinned, "
      "so the suite's identity gate doubles as the pinning-on-vs-off "
      "bit-identity check");
  std::string& out = flags.String("out", "BENCH_PERF.json", "output path");
  flags.Parse(argc, argv);
  util::PlacementPolicy placement_policy = util::PlacementPolicy::kNone;
  if (!util::ParsePlacementPolicy(placement_flag, &placement_policy)) {
    std::fprintf(stderr,
                 "perf_suite: unknown --placement '%s' "
                 "(none|compact|scatter|shard_node)\n",
                 placement_flag.c_str());
    return 1;
  }
  // Host topology, for the snapshot header (tools/bench_diff.py warns when
  // diffing snapshots recorded on mismatched topologies) and for the
  // sharded pipeline's placement plan.
  const util::CpuTopology host_topo = util::CpuTopology::Detect();
  bench::ObsScope obs(common);

  // Measurement-workload identity for the snapshot header: the fabric,
  // workload, seed, and epsilon folded into one scenario config hash, so
  // tools/bench_diff.py can warn when two snapshots measured different
  // configurations rather than different code.
  sim::Scenario perf_scenario;
  perf_scenario.name = "perf_suite";
  perf_scenario.description = "perf_suite measurement workload";
  bench::ApplyCommonOverrides(common, &perf_scenario);
  perf_scenario.admission.epsilon = common.epsilon();

  const topology::Topology topo =
      topology::BuildThreeTier(common.TopologyConfig());

  // --- Sweep: serial vs parallel, bit-identical by construction. ---------
  workload::WorkloadConfig sweep_config = common.WorkloadConfig();
  sweep_config.num_jobs = static_cast<int>(sweep_jobs);
  auto replica_task = [&](uint64_t index) {
    return [&, index] {
      const uint64_t seed = sim::ReplicaSeed(common.seed(), index);
      workload::WorkloadGenerator gen(sweep_config, seed);
      return bench::RunBatch(topo, gen.GenerateBatch(),
                             workload::Abstraction::kSvc,
                             bench::AllocatorFor(workload::Abstraction::kSvc),
                             common.epsilon(), seed + 1);
    };
  };
  std::vector<std::function<sim::BatchResult()>> tasks;
  for (int64_t k = 0; k < replicas; ++k) {
    tasks.push_back(replica_task(static_cast<uint64_t>(k)));
  }

  sim::SweepRunner serial(1);
  const double serial_start = Now();
  const auto serial_results = serial.Run(tasks);
  const double serial_seconds = Now() - serial_start;

  sim::SweepRunner parallel(common.threads());
  const double parallel_start = Now();
  const auto parallel_results = parallel.Run(tasks);
  const double parallel_seconds = Now() - parallel_start;

  bool identical = serial_results.size() == parallel_results.size();
  for (size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = SameBatchResult(serial_results[i], parallel_results[i]);
  }
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf(
      "sweep:    %lld replicas  serial %.2fs  parallel %.2fs  (%d threads)  "
      "speedup %.2fx  identical %s\n",
      static_cast<long long>(replicas), serial_seconds, parallel_seconds,
      parallel.num_threads(), speedup, identical ? "yes" : "NO");

  // --- Step: steady (fast path) vs volatile (full solve per tick). -------
  auto step_rate = [&](double deviation, double* steps_out) {
    workload::WorkloadConfig wconfig = common.WorkloadConfig();
    wconfig.num_jobs = static_cast<int>(sweep_jobs);
    wconfig.fixed_deviation = deviation;
    workload::WorkloadGenerator gen(wconfig, common.seed());
    const auto jobs = gen.GenerateBatch();
    const double start = Now();
    const auto result = bench::RunBatch(
        topo, jobs, workload::Abstraction::kSvc,
        bench::AllocatorFor(workload::Abstraction::kSvc), common.epsilon(),
        common.seed() + 1);
    const double wall = Now() - start;
    *steps_out = result.simulated_seconds;  // time_step = 1 s => steps
    return wall > 0 ? result.simulated_seconds / wall : 0.0;
  };
  double steady_steps = 0, volatile_steps = 0;
  // deviation 0: every per-second draw repeats bit-for-bit, so after each
  // admission wave Step() reuses the cached rates and outage counts.
  const double steady_rate = step_rate(0.0, &steady_steps);
  const double volatile_rate = step_rate(0.5, &volatile_steps);
  std::printf(
      "step:     steady %.0f steps/s (%.0f steps)  volatile %.0f steps/s "
      "(%.0f steps)\n",
      steady_rate, steady_steps, volatile_rate, volatile_steps);

  // --- Allocate: calls/sec + heap allocations per call after warm-up. ----
  core::NetworkManager manager(topo, common.epsilon());
  {
    core::HomogeneousDpAllocator loader;
    stats::Rng rng(7);
    int64_t id = 1'000'000;
    while (manager.slots().total_free() > topo.total_slots() * 6 / 10) {
      const int n = static_cast<int>(rng.UniformInt(2, 60));
      const double mu = 100.0 * static_cast<double>(rng.UniformInt(1, 5));
      const core::Request r =
          core::Request::Homogeneous(id++, n, mu, mu * rng.Uniform(0, 1));
      if (!manager.Admit(r, loader).ok()) break;
    }
  }
  const core::HomogeneousDpAllocator alloc;
  const core::Request request = core::Request::Homogeneous(1, 49, 200, 100);
  // Warm-up sizes the thread-local arena and seeds the buffer pool.
  if (auto warm = alloc.Allocate(request, manager.ledger(), manager.slots())) {
    core::RecycleVmBuffer(std::move(warm->vm_machine));
  }
  const int64_t allocs_before = svc::bench::AllocationCount();
  const double alloc_start = Now();
  for (int64_t i = 0; i < alloc_iters; ++i) {
    auto result = alloc.Allocate(request, manager.ledger(), manager.slots());
    if (result.ok()) core::RecycleVmBuffer(std::move(result->vm_machine));
  }
  const double alloc_seconds = Now() - alloc_start;
  const double allocs_per_call =
      alloc_iters > 0 ? static_cast<double>(svc::bench::AllocationCount() -
                                            allocs_before) /
                            alloc_iters
                      : 0.0;
  const double calls_per_sec =
      alloc_seconds > 0 ? alloc_iters / alloc_seconds : 0.0;
  std::printf("allocate: %.0f calls/s  %.3f heap allocations/call\n",
              calls_per_sec, allocs_per_call);

  // Same loop with the observability layer armed.  The metric/trace/decision
  // write path is heap-free by design (static handle caches, stack name
  // buffers, sharded atomics, pre-sized trace ring, fixed per-thread
  // decision rings), so allocs/call must stay zero here too — this is the
  // regression gate for the obs overhead budget.
  const bool metrics_were_on = obs::MetricsEnabled();
  const bool trace_was_on = obs::TraceEnabled();
  const bool decisions_were_on = obs::DecisionsEnabled();
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  obs::SetDecisionsEnabled(true);
  // A few instrumented admissions populate the manager/ledger metrics so
  // the snapshot below has real content; the warm-up Allocate registers
  // the allocator handles and this thread's trace ring.
  {
    core::NetworkManager admit_manager(topo, common.epsilon());
    core::HomogeneousDpAllocator admit_alloc;
    for (int64_t id = 0; id < 32; ++id) {
      const core::Request r =
          core::Request::Homogeneous(2'000'000 + id, 20, 200, 100);
      if (!admit_manager.Admit(r, admit_alloc).ok()) break;
    }
  }
  if (auto warm = alloc.Allocate(request, manager.ledger(), manager.slots())) {
    core::RecycleVmBuffer(std::move(warm->vm_machine));
  }
  const int64_t obs_allocs_before = svc::bench::AllocationCount();
  const double obs_start = Now();
  for (int64_t i = 0; i < alloc_iters; ++i) {
    auto result = alloc.Allocate(request, manager.ledger(), manager.slots());
    if (result.ok()) core::RecycleVmBuffer(std::move(result->vm_machine));
  }
  const double obs_seconds = Now() - obs_start;
  obs::SetMetricsEnabled(metrics_were_on);
  obs::SetTraceEnabled(trace_was_on);
  obs::SetDecisionsEnabled(decisions_were_on);
  const double obs_allocs_per_call =
      alloc_iters > 0 ? static_cast<double>(svc::bench::AllocationCount() -
                                            obs_allocs_before) /
                            alloc_iters
                      : 0.0;
  const double obs_calls_per_sec =
      obs_seconds > 0 ? alloc_iters / obs_seconds : 0.0;
  std::printf(
      "allocate: %.0f calls/s  %.3f heap allocations/call  (obs enabled)\n",
      obs_calls_per_sec, obs_allocs_per_call);

  // --- Allocate, level-parallel: same fabric and request as the serial ---
  // loop; placements must be bit-identical (the suite's second hard gate).
  util::ThreadPool alloc_pool(common.threads());
  core::HomogeneousSearchOptions parallel_options;
  parallel_options.pool = &alloc_pool;
  const core::HomogeneousSearchAllocator parallel_alloc(parallel_options,
                                                        "svc-dp-par");
  bool parallel_identical = true;
  {
    auto serial_ref = alloc.Allocate(request, manager.ledger(), manager.slots());
    auto parallel_ref =
        parallel_alloc.Allocate(request, manager.ledger(), manager.slots());
    parallel_identical = serial_ref.ok() && parallel_ref.ok() &&
                         SamePlacement(*serial_ref, *parallel_ref);
    if (serial_ref.ok()) {
      core::RecycleVmBuffer(std::move(serial_ref->vm_machine));
    }
    if (parallel_ref.ok()) {
      core::RecycleVmBuffer(std::move(parallel_ref->vm_machine));
    }
  }
  const double par_start = Now();
  for (int64_t i = 0; i < alloc_iters; ++i) {
    auto result =
        parallel_alloc.Allocate(request, manager.ledger(), manager.slots());
    if (result.ok()) core::RecycleVmBuffer(std::move(result->vm_machine));
  }
  const double par_seconds = Now() - par_start;
  const double par_calls_per_sec =
      par_seconds > 0 ? alloc_iters / par_seconds : 0.0;
  std::printf(
      "allocate: %.0f calls/s  (level-parallel, %d threads)  identical %s\n",
      par_calls_per_sec, alloc_pool.num_threads(),
      parallel_identical ? "yes" : "NO");

  // --- Hetero allocators: admit throughput on a fabric sized to their ----
  // complexity (the heuristic is O(|V| * Delta * N^4), the exact DP
  // O(|V| * Delta * 3^N); paper-scale fabrics are not where they run).
  topology::ThreeTierConfig hetero_config;
  hetero_config.racks = 10;
  hetero_config.machines_per_rack = 10;
  hetero_config.racks_per_agg = 5;
  const topology::Topology hetero_topo =
      topology::BuildThreeTier(hetero_config);
  core::NetworkManager hetero_manager(hetero_topo, common.epsilon());
  {
    core::HomogeneousDpAllocator loader;
    stats::Rng rng(7);
    int64_t id = 3'000'000;
    while (hetero_manager.slots().total_free() >
           hetero_topo.total_slots() * 6 / 10) {
      const int n = static_cast<int>(rng.UniformInt(2, 12));
      const double mu = 100.0 * static_cast<double>(rng.UniformInt(1, 5));
      const core::Request r =
          core::Request::Homogeneous(id++, n, mu, mu * rng.Uniform(0, 1));
      if (!hetero_manager.Admit(r, loader).ok()) break;
    }
  }
  auto hetero_demands = [](int count) {
    std::vector<stats::Normal> demands;
    demands.reserve(count);
    for (int i = 0; i < count; ++i) {
      const double mean = 80.0 + 15.0 * (i % 5);
      const double stddev = mean / 2.0;
      demands.push_back({mean, stddev * stddev});
    }
    return demands;
  };
  const int64_t hetero_iters = std::max<int64_t>(1, alloc_iters / 10);
  auto hetero_rate = [&](const core::Allocator& hetero_alloc,
                         const core::Request& hetero_request) {
    if (auto warm = hetero_alloc.Allocate(hetero_request,
                                          hetero_manager.ledger(),
                                          hetero_manager.slots())) {
      core::RecycleVmBuffer(std::move(warm->vm_machine));
    }
    const double start = Now();
    for (int64_t i = 0; i < hetero_iters; ++i) {
      auto result = hetero_alloc.Allocate(
          hetero_request, hetero_manager.ledger(), hetero_manager.slots());
      if (result.ok()) core::RecycleVmBuffer(std::move(result->vm_machine));
    }
    const double seconds = Now() - start;
    return seconds > 0 ? hetero_iters / seconds : 0.0;
  };
  const core::HeteroHeuristicAllocator heuristic_alloc;
  const double heuristic_calls_per_sec = hetero_rate(
      heuristic_alloc, core::Request::Heterogeneous(2, hetero_demands(16)));
  const core::HeteroExactAllocator exact_alloc;
  const double exact_calls_per_sec = hetero_rate(
      exact_alloc, core::Request::Heterogeneous(3, hetero_demands(10)));
  std::printf("allocate: %.0f calls/s  (hetero heuristic, n=16)\n",
              heuristic_calls_per_sec);
  std::printf("allocate: %.0f calls/s  (hetero exact, n=10)\n",
              exact_calls_per_sec);

  // --- Admission pipeline: 1 worker (serial Admit loop) vs N-worker ------
  // speculate/validate/commit over an Oktopus-style online workload under
  // admission-control pressure: the fabric is pre-loaded to ~90%, then
  // batches of mixed-size tenants churn against it.  A few admit per round
  // (commits bump the epoch — the conflict path gets exercised); most are
  // rejected, and rejections keep the epoch still, so the speculation
  // workers run the allocator concurrently to real effect — exactly the
  // regime where an online control plane needs admission throughput.
  // Everything admitted is released at the end of its round, so every
  // round (and every worker count) starts from the same books.  The
  // deterministic discipline makes the decision sequence a hard gate: any
  // worker count must reproduce the serial verdicts and placements
  // exactly.
  // With --decisions (the default) the admission and sharded benches run
  // with decision provenance armed, so their throughput records — and the
  // CI speedup gates downstream of them — include the per-outcome logging
  // cost an online control plane would actually pay.
  if (decisions_on != 0) obs::SetDecisionsEnabled(true);
  std::vector<core::Request> admit_requests;
  {
    stats::Rng rng(11);
    admit_requests.reserve(admit_iters);
    for (int64_t i = 0; i < admit_iters; ++i) {
      const int n = static_cast<int>(rng.UniformInt(2, 40));
      const double mu = 100.0 * static_cast<double>(rng.UniformInt(1, 5));
      admit_requests.push_back(core::Request::Homogeneous(
          4'000'000 + i, n, mu, mu * rng.Uniform(0, 1)));
    }
  }
  constexpr int kAdmitRounds = 4;
  struct AdmissionOutcome {
    std::vector<char> verdicts;
    std::vector<topology::VertexId> roots;
    double seconds = 0;
    int64_t admitted = 0;
    core::PipelineStats stats;
  };
  const core::HomogeneousDpAllocator admission_alloc;
  auto run_admission = [&](int workers) {
    AdmissionOutcome result;
    core::NetworkManager admission_manager(topo, common.epsilon());
    {
      // Deterministic pre-load to ~90% occupancy: both worker counts see
      // byte-identical books.  Rejections don't end the fill (a large
      // tenant bouncing off a near-full fabric is expected) — a run of
      // them does, once even small tenants stop fitting.
      stats::Rng rng(7);
      int64_t id = 5'000'000;
      int consecutive_failures = 0;
      while (admission_manager.slots().total_free() >
                 topo.total_slots() / 10 &&
             consecutive_failures < 64) {
        const int n = static_cast<int>(rng.UniformInt(2, 60));
        const double mu = 100.0 * static_cast<double>(rng.UniformInt(1, 5));
        const core::Request r =
            core::Request::Homogeneous(id++, n, mu, mu * rng.Uniform(0, 1));
        if (admission_manager.Admit(r, admission_alloc).ok()) {
          consecutive_failures = 0;
        } else {
          ++consecutive_failures;
        }
      }
    }
    core::PipelineConfig pipeline_config;
    pipeline_config.workers = workers;
    core::AdmissionPipeline pipeline(admission_manager, pipeline_config);
    const double start = Now();
    for (int round = 0; round < kAdmitRounds; ++round) {
      const auto decisions =
          pipeline.AdmitBatch(admit_requests, admission_alloc);
      for (size_t i = 0; i < decisions.size(); ++i) {
        result.verdicts.push_back(decisions[i].ok() ? 1 : 0);
        if (decisions[i].ok()) {
          result.roots.push_back(decisions[i]->subtree_root);
          admission_manager.Release(admit_requests[i].id());
          ++result.admitted;
        }
      }
    }
    result.seconds = Now() - start;
    result.stats = pipeline.stats();
    return result;
  };
  const AdmissionOutcome admit_serial = run_admission(1);
  const AdmissionOutcome admit_parallel =
      run_admission(static_cast<int>(pipeline_workers));
  const bool admission_identical =
      admit_serial.verdicts == admit_parallel.verdicts &&
      admit_serial.roots == admit_parallel.roots;
  const int64_t admit_total = kAdmitRounds * admit_iters;
  const double admit_serial_rate =
      admit_serial.seconds > 0 ? admit_total / admit_serial.seconds : 0.0;
  const double admit_parallel_rate =
      admit_parallel.seconds > 0 ? admit_total / admit_parallel.seconds : 0.0;
  const double admit_speedup =
      admit_parallel.seconds > 0
          ? admit_serial.seconds / admit_parallel.seconds
          : 0.0;
  std::printf(
      "admission: %.0f req/s serial  %.0f req/s (%d workers)  speedup %.2fx  "
      "conflicts %lld retries %lld fallbacks %lld  identical %s\n",
      admit_serial_rate, admit_parallel_rate,
      static_cast<int>(pipeline_workers), admit_speedup,
      static_cast<long long>(admit_parallel.stats.conflicts),
      static_cast<long long>(admit_parallel.stats.retries),
      static_cast<long long>(admit_parallel.stats.fallbacks),
      admission_identical ? "yes" : "NO");

  // --- Sharded fabric commit: million-tenant-scale admission. ------------
  // A ~100k-machine three-tier fabric (root children = --shard-aggs
  // shardable subtrees) is pre-loaded with up to --shard-tenants live
  // tenants, then a planned admission stream drives the pipeline's COMMIT
  // plane: a replay allocator serves pre-computed rack-local placements
  // (speculation is a table lookup), so the measured cost is sequencing,
  // capacity re-validation, row writes, and snapshot re-capture — the
  // layers this PR shards.  Planned admits rotate across the agg quarters
  // (consecutive commits land in different shards for any shard count up
  // to 4), interleaved 1:1 with planless requests the replay allocator
  // rejects (absorbed without touching the books).  Sharding then wins
  // twice: single-shard applies run on per-shard commit workers while the
  // sequencer moves on, and every snapshot re-capture copies only the
  // stale buckets (O(V / shards) instead of O(V) rows per admitted
  // tenant).  At --admit-shards 1 every admit invalidates the whole
  // fabric, so the same stream degenerates to serial re-runs plus
  // full-fabric re-captures.  The CI gate runs this twice — 1 vs 4
  // shards — and requires >= 1.5x on the admission_sharded record via
  // bench_diff.  Decisions must match the serial Admit loop exactly
  // (third hard gate).
  shard_aggs = std::max<int64_t>(4, (shard_aggs / 4) * 4);
  shard_racks = std::max(shard_aggs, (shard_racks / shard_aggs) * shard_aggs);
  topology::ThreeTierConfig sharded_config;
  sharded_config.racks = static_cast<int>(shard_racks);
  sharded_config.machines_per_rack = 20;
  sharded_config.racks_per_agg = static_cast<int>(shard_racks / shard_aggs);
  // Slots and machine-link capacity scale with the requested tenant count:
  // each pre-load pass lands one 2-VM tenant per machine pair (one slot and
  // 50 Mbps of mean per machine), and the planned admits need two free
  // slots plus headroom on every machine.  At the default 10^5 tenants this
  // reproduces the PR-6 shape exactly (4 slots, 1 Gbps); --shard-tenants
  // 1000000 deepens the fabric to ~22 slots/machine instead of growing it
  // wider, so the per-shard row volume — what placement and first-touch
  // re-homing act on — is what scales.
  const int64_t shard_machines =
      shard_racks * sharded_config.machines_per_rack;
  const int preload_passes = static_cast<int>(
      std::max<int64_t>(2, (shard_tenants * 2 + shard_machines - 1) /
                               std::max<int64_t>(1, shard_machines)));
  sharded_config.slots_per_machine = preload_passes + 2;
  sharded_config.machine_link_mbps = 1000.0 * preload_passes / 2.0;
  const topology::Topology sharded_topo =
      topology::BuildThreeTier(sharded_config);
  std::vector<core::Request> shard_requests;
  std::unordered_map<int64_t, core::Placement> shard_plan;
  {
    // Plan admit k into agg (k % 4) * (aggs / 4) + (k / 4) % (aggs / 4):
    // consecutive admits land in different quarters of the agg range, i.e.
    // different shards under ShardMap's contiguous grouping, so a shard is
    // revisited only every 4 admits (8 requests) — farther back than the
    // speculation pipeline's depth, which keeps the shard-freshness fast
    // path live.  Each admit takes 8 VMs on 4 whole-machine slot blocks of
    // one rack (2 free slots per machine after the pre-load), walking the
    // racks of its agg; released between rounds, so the plan never
    // double-books.
    const int aggs = static_cast<int>(shard_aggs);
    const int quarter = aggs / 4;
    const int mpr = sharded_config.machines_per_rack;
    const int admits_per_rack = mpr / 4;
    const auto& machines = sharded_topo.machines();
    std::vector<int> agg_cursor(aggs, 0);
    shard_requests.reserve(shard_iters);
    int admit_k = 0;
    for (int64_t i = 0; i < shard_iters; ++i) {
      const int64_t id = 11'000'000 + i;
      if (i % 2 != 0) {
        // Planless: rejected by the replay allocator, absorbed stale-or-not
        // (monotone rejection) — admission-control pressure between commits.
        shard_requests.push_back(core::Request::Homogeneous(id, 2, 100, 20));
        continue;
      }
      const int agg = (admit_k % 4) * quarter + (admit_k / 4) % quarter;
      const int t = agg_cursor[agg]++;
      const int rack = agg * sharded_config.racks_per_agg +
                       (t / admits_per_rack) % sharded_config.racks_per_agg;
      const int block = t % admits_per_rack;
      core::Placement placement;
      placement.vm_machine.reserve(8);
      for (int m = 0; m < 4; ++m) {
        const topology::VertexId machine =
            machines[static_cast<size_t>(rack) * mpr + block * 4 + m];
        placement.vm_machine.push_back(machine);
        placement.vm_machine.push_back(machine);
      }
      placement.subtree_root = sharded_topo.parent(placement.vm_machine[0]);
      shard_plan.emplace(id, std::move(placement));
      shard_requests.push_back(core::Request::Homogeneous(id, 8, 100, 20));
      ++admit_k;
    }
  }
  const ReplayAllocator replay_alloc(&shard_plan);
  constexpr int kShardRounds = 2;
  struct ShardedOutcome {
    std::vector<char> verdicts;
    std::vector<topology::VertexId> roots;
    double seconds = 0;
    int64_t admitted = 0;
    int64_t preloaded = 0;
    int shards = 0;
    int total_free = 0;
    double max_occupancy = 0;
    core::PipelineStats stats;
    std::vector<int64_t> histogram;
    std::vector<core::AdmissionPipeline::WorkerPlacement> placements;
  };
  auto run_sharded = [&](int workers, int shards,
                         util::PlacementPolicy policy) {
    ShardedOutcome outcome;
    core::NetworkManager sharded_manager(sharded_topo, common.epsilon());
    core::PipelineConfig pipeline_config;
    pipeline_config.workers = workers;
    // A shallow speculation pipeline: lookups are instant, and the depth
    // bounds how far a proposal's snapshot can lag the commit front — it
    // must stay under the plan's 8-request shard-revisit distance for the
    // shard-freshness fast path to hold.
    pipeline_config.queue_capacity = 1;
    pipeline_config.shards = shards;
    pipeline_config.placement = policy;
    pipeline_config.topology = &host_topo;
    core::AdmissionPipeline pipeline(sharded_manager, pipeline_config);
    outcome.shards = shards > 0 ? sharded_manager.num_shards() : 0;
    outcome.placements = pipeline.placement_map();
    // Pre-load: rack-local 2-VM tenants committed directly (no allocator
    // search), two per machine pair per pass — identical books for every
    // (worker, shard) configuration.
    {
      const auto& machines = sharded_topo.machines();
      int64_t id = 10'000'000;
      for (int pass = 0;
           pass < preload_passes && outcome.preloaded < shard_tenants;
           ++pass) {
        for (size_t k = 0;
             k + 1 < machines.size() && outcome.preloaded < shard_tenants;
             k += 2) {
          core::Placement placement;
          placement.vm_machine = {machines[k], machines[k + 1]};
          const core::Request tenant =
              core::Request::Homogeneous(id++, 2, 50, 10);
          if (sharded_manager.AdmitPlacement(tenant, std::move(placement))
                  .ok()) {
            ++outcome.preloaded;
          }
        }
      }
    }
    const double start = Now();
    for (int round = 0; round < kShardRounds; ++round) {
      const auto decisions = pipeline.AdmitBatch(shard_requests, replay_alloc);
      for (size_t i = 0; i < decisions.size(); ++i) {
        outcome.verdicts.push_back(decisions[i].ok() ? 1 : 0);
        if (decisions[i].ok()) {
          outcome.roots.push_back(decisions[i]->subtree_root);
          sharded_manager.Release(shard_requests[i].id());
          ++outcome.admitted;
        }
      }
    }
    outcome.seconds = Now() - start;
    outcome.stats = pipeline.stats();
    outcome.histogram = pipeline.touched_shard_histogram();
    outcome.total_free = sharded_manager.slots().total_free();
    outcome.max_occupancy = sharded_manager.MaxOccupancy();
    return outcome;
  };
  // The serial baseline always runs unpinned: the identity gate below then
  // doubles as the pinning-on-vs-off bit-identity check.
  const ShardedOutcome sharded_serial =
      run_sharded(1, 0, util::PlacementPolicy::kNone);
  // Two speculation workers move the stream; the per-shard commit workers
  // and the O(V / shards) snapshot re-captures are what scales.
  const ShardedOutcome sharded =
      run_sharded(2, static_cast<int>(admit_shards), placement_policy);
  const bool sharded_identical =
      sharded.verdicts == sharded_serial.verdicts &&
      sharded.roots == sharded_serial.roots &&
      sharded.total_free == sharded_serial.total_free &&
      sharded.max_occupancy == sharded_serial.max_occupancy;
  const int64_t sharded_total = kShardRounds * shard_iters;
  const double sharded_rate =
      sharded.seconds > 0 ? sharded_total / sharded.seconds : 0.0;
  std::printf(
      "sharded:  %.0f req/s (%d shards, %d shard workers)  %lld tenants  "
      "%lld machines  dispatched %lld cross-shard %lld conflicts %lld  "
      "identical %s\n",
      sharded_rate, sharded.shards, std::max(0, sharded.shards),
      static_cast<long long>(sharded.preloaded),
      static_cast<long long>(sharded_topo.machines().size()),
      static_cast<long long>(sharded.stats.shard_commits),
      static_cast<long long>(sharded.stats.cross_shard_commits),
      static_cast<long long>(sharded.stats.shard_conflicts),
      sharded_identical ? "yes" : "NO");
  // The resolved placement map, one line per worker: flight-recorder
  // bundles and bench snapshots reference these to explain
  // placement-dependent latency outliers.
  std::printf("placement: %s on %s\n",
              util::PlacementPolicyName(placement_policy),
              host_topo.Summary().c_str());
  for (const core::AdmissionPipeline::WorkerPlacement& p :
       sharded.placements) {
    if (p.cpu >= 0) {
      std::printf("placement: %s %d -> cpu %d (node %d)\n", p.role, p.index,
                  p.cpu, p.node);
    } else {
      std::printf("placement: %s %d -> unpinned\n", p.role, p.index);
    }
  }
  if (decisions_on != 0) {
    obs::SetDecisionsEnabled(false);
    std::printf("decisions: %llu records logged (ring keeps last %zu/thread)\n",
                static_cast<unsigned long long>(obs::DecisionCount()),
                obs::DecisionRingCapacity());
  }

  // --- BENCH_PERF.json ---------------------------------------------------
  util::JsonWriter w;
  w.BeginObject();
  w.Member("git_sha", GitSha());
  w.Key("scenario");
  w.BeginObject();
  w.Member("name", perf_scenario.name);
  w.Member("config_hash", sim::ScenarioConfigHash(perf_scenario));
  w.EndObject();
  w.Member("hardware_threads", util::ThreadPool::HardwareThreads());
  w.Member("threads", common.threads());
  // Topology header: bench_diff warns when two snapshots were taken on
  // machines with different shapes, since placement-sensitive numbers are
  // not comparable across them.
  w.Key("topology");
  w.BeginObject();
  w.Member("packages", static_cast<int64_t>(host_topo.num_packages()));
  w.Member("nodes", static_cast<int64_t>(host_topo.num_nodes()));
  w.Member("cores", static_cast<int64_t>(host_topo.num_cores()));
  w.Member("cpus", static_cast<int64_t>(host_topo.num_cpus()));
  w.Member("detected", host_topo.detected());
  w.Member("summary", host_topo.Summary());
  w.EndObject();
  w.Key("placement");
  w.BeginObject();
  w.Member("policy", std::string(util::PlacementPolicyName(placement_policy)));
  w.Key("workers");
  w.BeginArray();
  for (const core::AdmissionPipeline::WorkerPlacement& p :
       sharded.placements) {
    w.BeginObject();
    w.Member("role", std::string(p.role));
    w.Member("index", static_cast<int64_t>(p.index));
    w.Member("cpu", static_cast<int64_t>(p.cpu));
    w.Member("node", static_cast<int64_t>(p.node));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Member("parallel_alloc_identical", parallel_identical);
  w.Member("admission_identical", admission_identical);
  w.Member("sharded_identical", sharded_identical);
  w.Key("sweep");
  w.BeginObject();
  w.Member("replicas", static_cast<int64_t>(replicas));
  w.Member("jobs_per_replica", static_cast<int64_t>(sweep_jobs));
  w.Member("serial_seconds", serial_seconds);
  w.Member("parallel_seconds", parallel_seconds);
  w.Member("threads", parallel.num_threads());
  w.Member("speedup", speedup);
  w.Member("identical", identical);
  w.EndObject();
  std::vector<bench::BenchRecord> records;
  records.push_back({"step_steady", static_cast<int64_t>(steady_steps),
                     steady_rate > 0 ? 1e9 / steady_rate : 0.0, 0.0,
                     {{"steps_per_sec", steady_rate}}});
  records.push_back({"step_volatile", static_cast<int64_t>(volatile_steps),
                     volatile_rate > 0 ? 1e9 / volatile_rate : 0.0, 0.0,
                     {{"steps_per_sec", volatile_rate}}});
  records.push_back({"allocate_steady", alloc_iters,
                     calls_per_sec > 0 ? 1e9 / calls_per_sec : 0.0, 0.0,
                     {{"calls_per_sec", calls_per_sec},
                      {"allocs_per_call", allocs_per_call}}});
  records.push_back({"allocate_steady_obs", alloc_iters,
                     obs_calls_per_sec > 0 ? 1e9 / obs_calls_per_sec : 0.0,
                     0.0,
                     {{"calls_per_sec", obs_calls_per_sec},
                      {"allocs_per_call", obs_allocs_per_call}}});
  records.push_back({"allocate_steady_parallel", alloc_iters,
                     par_calls_per_sec > 0 ? 1e9 / par_calls_per_sec : 0.0,
                     0.0,
                     {{"calls_per_sec", par_calls_per_sec}}});
  records.push_back({"allocate_hetero_heuristic", hetero_iters,
                     heuristic_calls_per_sec > 0
                         ? 1e9 / heuristic_calls_per_sec
                         : 0.0,
                     0.0,
                     {{"calls_per_sec", heuristic_calls_per_sec}}});
  records.push_back({"allocate_hetero_exact", hetero_iters,
                     exact_calls_per_sec > 0 ? 1e9 / exact_calls_per_sec : 0.0,
                     0.0,
                     {{"calls_per_sec", exact_calls_per_sec}}});
  records.push_back(
      {"admission_throughput_1w", admit_total,
       admit_serial_rate > 0 ? 1e9 / admit_serial_rate : 0.0, 0.0,
       {{"requests_per_sec", admit_serial_rate},
        {"admitted", static_cast<double>(admit_serial.admitted)}}});
  records.push_back(
      {"admission_throughput", admit_total,
       admit_parallel_rate > 0 ? 1e9 / admit_parallel_rate : 0.0, 0.0,
       {{"requests_per_sec", admit_parallel_rate},
        {"speedup", admit_speedup},
        {"workers", static_cast<double>(pipeline_workers)},
        {"admitted", static_cast<double>(admit_parallel.admitted)},
        {"conflicts", static_cast<double>(admit_parallel.stats.conflicts)},
        {"retries", static_cast<double>(admit_parallel.stats.retries)},
        {"fallbacks", static_cast<double>(admit_parallel.stats.fallbacks)}}});
  {
    // Satellite schema note: same BenchRecord shape as every PR 3-5 record —
    // the shard count and touched-shard histogram ride in the extras map, so
    // tools/bench_diff.py diffs admission_sharded across snapshots unchanged.
    bench::BenchRecord sharded_record{
        "admission_sharded", sharded_total,
        sharded_rate > 0 ? 1e9 / sharded_rate : 0.0, 0.0,
        {{"requests_per_sec", sharded_rate},
         {"shards", static_cast<double>(sharded.shards)},
         {"workers", 2.0},
         {"tenants_preloaded", static_cast<double>(sharded.preloaded)},
         {"machines", static_cast<double>(sharded_topo.machines().size())},
         {"admitted", static_cast<double>(sharded.admitted)},
         {"shard_commits", static_cast<double>(sharded.stats.shard_commits)},
         {"cross_shard_commits",
          static_cast<double>(sharded.stats.cross_shard_commits)},
         {"shard_conflicts",
          static_cast<double>(sharded.stats.shard_conflicts)},
         {"fallbacks", static_cast<double>(sharded.stats.fallbacks)}}};
    for (size_t k = 0; k < sharded.histogram.size(); ++k) {
      sharded_record.counters.push_back(
          {"touched_shards_" + std::to_string(k),
           static_cast<double>(sharded.histogram[k])});
    }
    records.push_back(std::move(sharded_record));
  }
  bench::AddBenchmarksMember(w, records);
  // Snapshot of everything the instrumented sections recorded, so perf
  // regressions can be diffed at metric granularity across runs.
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Collect();
  w.Key("metrics");
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& c : snapshot.counters) w.Member(c.name, c.value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& g : snapshot.gauges) w.Member(g.name, g.value);
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& h : snapshot.histograms) {
    w.Key(h.name);
    w.BeginObject();
    w.Member("count", h.count);
    w.Member("sum", h.sum);
    w.Member("max", h.max);
    w.Member("p50", h.p50);
    w.Member("p90", h.p90);
    w.Member("p99", h.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  w.EndObject();
  if (!bench::WriteFile(out, w.str() + "\n")) return 1;
  std::printf("wrote %s\n", out.c_str());

  // Non-zero exit if the parallel sweep, the level-parallel allocator, the
  // multi-worker admission pipeline, or the sharded commit plane diverged
  // from serial — the suite's hard correctness gates.
  return identical && parallel_identical && admission_identical &&
                 sharded_identical
             ? 0
             : 2;
}
